//! Workspace-level fault drills: force every registered fault arm and
//! prove that each one either recovers through the degradation ladder or
//! surfaces as the documented [`HinnError`] — never as a panic — and that
//! with no faults injected the engine is bit-identical across thread
//! budgets.
//!
//! Every test here installs a *process-global* fault plan, so the install
//! guard's lock serializes the whole binary: faults cannot leak between
//! tests. (The bit-identity test installs an *empty* plan for the same
//! reason — it queues with the others instead of racing them.)

use hinn::core::{
    BatchRunner, DatasetHandle, DegradationKind, HinnError, InteractiveSearch, Parallelism,
    ProjectionMode, SearchConfig, SearchOutcome,
};
use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::fault::{FaultMode, FaultPlan};
use hinn::user::HeuristicUser;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn workload() -> (Vec<Vec<f64>>, Vec<f64>) {
    let spec = ProjectedClusterSpec::small_test();
    let mut rng = StdRng::seed_from_u64(42);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();
    (data.points, query)
}

fn config(mode: ProjectionMode) -> SearchConfig {
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        projection_mode: mode,
        ..SearchConfig::default().with_support(15)
    }
}

fn session(points: &[Vec<f64>], query: &[f64], config: SearchConfig) -> SearchOutcome {
    let mut user = HeuristicUser::default();
    InteractiveSearch::try_new(config)
        .expect("valid config")
        .run_with(
            &DatasetHandle::new(points).expect("dataset"),
            query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .map(hinn::core::RunOutput::into_outcome)
        .expect("session must complete")
}

fn assert_bit_identical(a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.neighbors, b.neighbors);
    assert_eq!(a.majors_run, b.majors_run);
    assert_eq!(a.probabilities.len(), b.probabilities.len());
    for (i, (pa, pb)) in a.probabilities.iter().zip(&b.probabilities).enumerate() {
        assert_eq!(
            pa.to_bits(),
            pb.to_bits(),
            "probability {i} differs: {pa} vs {pb}"
        );
    }
}

#[test]
fn forced_eigen_fault_degrades_to_axis_parallel_bit_for_bit() {
    // Ladder rung 1: Jacobi non-convergence drops the PCA candidates, so
    // a fully-faulted Arbitrary session must equal an AxisParallel one
    // down to the last bit, with the fallback recorded per view.
    let (points, query) = workload();
    let plan = Arc::new(FaultPlan::new().with("eigen.converge", FaultMode::Always));
    let (faulted, reference) = {
        let _g = hinn::fault::install(plan.clone());
        (
            session(&points, &query, config(ProjectionMode::Arbitrary)),
            session(&points, &query, config(ProjectionMode::AxisParallel)),
        )
    };
    assert!(plan.fired("eigen.converge") > 0);
    assert_bit_identical(&faulted, &reference);
    assert!(faulted.degradations().count(DegradationKind::EigenFallback) > 0);
    assert_eq!(
        reference
            .degradations()
            .count(DegradationKind::EigenFallback),
        0,
        "the axis-parallel reference never consults the eigensolver"
    );
}

#[test]
fn forced_degenerate_covariance_drops_the_pca_pool() {
    // Ladder rung 2: a degenerate query-cluster covariance abandons the
    // PCA pool entirely — same axis-parallel equivalence, different arm.
    let (points, query) = workload();
    let plan = Arc::new(FaultPlan::new().with("covariance.degenerate", FaultMode::Always));
    let (faulted, reference) = {
        let _g = hinn::fault::install(plan.clone());
        (
            session(&points, &query, config(ProjectionMode::Arbitrary)),
            session(&points, &query, config(ProjectionMode::AxisParallel)),
        )
    };
    assert!(plan.fired("covariance.degenerate") > 0);
    assert_bit_identical(&faulted, &reference);
    assert!(
        faulted
            .degradations()
            .count(DegradationKind::DegenerateCovariance)
            > 0
    );
}

#[test]
fn forced_bandwidth_collapse_floors_and_completes() {
    // Ladder rung 3: zero-spread bandwidth is floored, the view still
    // renders, and the floor is recorded — the session completes.
    let (points, query) = workload();
    let plan = Arc::new(FaultPlan::new().with("kde.bandwidth", FaultMode::Always));
    let outcome = {
        let _g = hinn::fault::install(plan.clone());
        session(&points, &query, config(ProjectionMode::Arbitrary))
    };
    assert!(plan.fired("kde.bandwidth") > 0);
    assert!(
        outcome
            .degradations()
            .count(DegradationKind::BandwidthFloored)
            > 0
    );
    assert_eq!(outcome.probabilities.len(), points.len());
    assert!(!outcome.neighbors.is_empty());
}

#[test]
fn forced_grid_collapse_skips_every_view_and_completes() {
    // Ladder rung 4: an unusable visual profile skips the minor view
    // instead of killing the session; with *every* view skipped the
    // session still terminates with a structurally valid outcome.
    let (points, query) = workload();
    let plan = Arc::new(FaultPlan::new().with("kde.grid", FaultMode::Always));
    let outcome = {
        let _g = hinn::fault::install(plan.clone());
        session(&points, &query, config(ProjectionMode::Arbitrary))
    };
    assert!(plan.fired("kde.grid") > 0);
    let skipped = outcome
        .degradations()
        .count(DegradationKind::SkippedMinorView);
    assert!(skipped > 0);
    assert_eq!(
        outcome.transcript.total_views(),
        0,
        "every view was skipped, none reached the user"
    );
    assert_eq!(outcome.probabilities.len(), points.len());
}

#[test]
fn forced_deadline_surfaces_as_typed_error() {
    let (points, query) = workload();
    let plan = Arc::new(FaultPlan::new().with("search.deadline", FaultMode::Always));
    let err = {
        let _g = hinn::fault::install(plan.clone());
        let cfg = config(ProjectionMode::Arbitrary).with_deadline(Duration::from_secs(3600));
        let mut user = HeuristicUser::default();
        InteractiveSearch::try_new(cfg)
            .expect("valid config")
            .run_with(
                &DatasetHandle::new(&points).expect("dataset"),
                &query,
                &mut user,
                hinn::core::RunOptions::default(),
            )
            .map(hinn::core::RunOutput::into_outcome)
            .expect_err("forced deadline must abort the session")
    };
    assert!(plan.fired("search.deadline") >= 1);
    match err {
        HinnError::Deadline { phase, budget, .. } => {
            assert_eq!(phase, "search.minor");
            assert_eq!(budget, Duration::from_secs(3600));
        }
        other => panic!("expected Deadline, got {other:?}"),
    }
}

#[test]
fn no_panic_escapes_the_batch_runner_under_any_fault_mix() {
    // The top of the ladder: with every registered point firing on every
    // hit, each query must come back as a typed report — the forced
    // in-session panics are caught at the batch boundary and retried.
    let (points, _) = workload();
    let queries: Vec<Vec<f64>> = (0..3).map(|i| points[i * 11].clone()).collect();
    let plan = Arc::new(FaultPlan::forcing_all());
    let reports = {
        let _g = hinn::fault::install(plan.clone());
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the forced panics
        let reports = BatchRunner::new(
            &DatasetHandle::new(&points).expect("dataset"),
            config(ProjectionMode::Arbitrary),
        )
        .with_threads(2)
        .run(&queries, || Box::new(HeuristicUser::default()));
        std::panic::set_hook(prev_hook);
        reports
    };
    assert_eq!(reports.len(), queries.len());
    assert!(plan.fired("search.panic") >= queries.len() as u64);
    for r in &reports {
        assert!(r.is_failed());
        assert!(r.retried(), "every failure gets its one degraded retry");
        assert!(matches!(r.error(), Some(HinnError::SessionPanicked { .. })));
    }
}

#[test]
fn env_forced_smoke_runs_under_hinn_faults() {
    // CI re-runs this binary with `HINN_FAULTS=all`: the plan is built
    // from the environment (the production wiring) and the batch
    // boundary must hold under it. Without the variable this is a no-op
    // — the drills above force each arm explicitly.
    let Some(plan) = FaultPlan::from_env() else {
        return;
    };
    let plan = Arc::new(plan);
    let (points, _) = workload();
    let queries = vec![points[0].clone()];
    let _g = hinn::fault::install(plan);
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let reports = BatchRunner::new(
        &DatasetHandle::new(&points).expect("dataset"),
        config(ProjectionMode::Arbitrary),
    )
    .with_threads(1)
    .run(&queries, || Box::new(HeuristicUser::default()));
    std::panic::set_hook(prev_hook);
    assert_eq!(reports.len(), 1, "a typed report, not a crash");
}

#[test]
fn unfaulted_sessions_are_bit_identical_across_thread_budgets() {
    // The acceptance bar for the whole refactor: with no faults armed,
    // the fallible engine computes the same bits for every thread budget.
    // An *empty* plan is installed so this test serializes with the
    // drills above instead of observing their plans.
    let (points, query) = workload();
    let quiet = Arc::new(FaultPlan::new());
    let _g = hinn::fault::install(quiet);
    for mode in [ProjectionMode::Arbitrary, ProjectionMode::AxisParallel] {
        let narrow = session(
            &points,
            &query,
            config(mode).with_parallelism(Parallelism::fixed(1)),
        );
        let wide = session(
            &points,
            &query,
            config(mode).with_parallelism(Parallelism::fixed(4)),
        );
        assert_bit_identical(&narrow, &wide);
        assert!(narrow.degradations().is_empty(), "healthy run, no ladder");
    }
}
