//! Streaming ingestion end-to-end over the wire: `ingest` / `delete` /
//! `epoch` / `rebase` verbs against a live server, with the epoch stamped
//! on every `view` reply and every refusal.
//!
//! The load-bearing claim is the serve layer's pinning rule observed
//! through the TCP front-end: a session opened before an ingest keeps
//! answering from the epoch it pinned — bit-identically to an in-process
//! reference run on the pre-ingest data, even across a suspend → ingest →
//! reconnect bounce — while `epoch` and fresh sessions see the moved
//! dataset immediately, and `rebase` is the explicit bridge between the
//! two.

use hinn::net::{NetClient, NetServer, NetServerConfig, Reply, Request, ShedPolicy};
use hinn::prelude::*;
use hinn::user::UserModel;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The serve-soak fixture: 8-D planted cluster plus background noise.
fn planted() -> Vec<Vec<f64>> {
    let mut rng = XorShift(0xDA3E39CB94B95BDB);
    let unif = |rng: &mut XorShift| (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
    let d = 8;
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for _ in 0..30 {
        pts.push(
            (0..d)
                .map(|_| 50.0 + (unif(&mut rng) - 0.5) * 2.0)
                .collect(),
        );
    }
    for _ in 0..170 {
        pts.push((0..d).map(|_| unif(&mut rng) * 100.0).collect());
    }
    pts
}

fn search_config() -> SearchConfig {
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(20)
    }
}

type WireBits = (Vec<usize>, Vec<u64>, usize);

/// Drive one in-process session over the same data, returning the
/// response script and the wire-comparable outcome bits.
fn record_reference(points: &[Vec<f64>], query: &[f64]) -> (Vec<UserResponse>, WireBits) {
    let manager = SessionManager::new(
        ServeConfig::new(search_config()).with_max_sessions(4),
        DatasetHandle::new(points).expect("dataset"),
    )
    .expect("reference manager");
    let mut user = HeuristicUser::default();
    let mut script = Vec::new();
    let (id, mut step) = manager.open(query).expect("reference open");
    loop {
        match step {
            Step::Done(outcome) => {
                let bits = (
                    outcome.neighbors.clone(),
                    outcome
                        .neighbors
                        .iter()
                        .map(|&i| outcome.probabilities[i].to_bits())
                        .collect(),
                    outcome.majors_run,
                );
                return (script, bits);
            }
            Step::NeedResponse(view) => {
                let response = user.respond(view.profile(), view.context());
                script.push(response.clone());
                step = manager.submit(id, response).expect("reference submit");
            }
        }
    }
}

fn expect_view(reply: Reply) -> hinn::net::ViewSummary {
    match reply {
        Reply::View(view) => view,
        other => panic!("expected a view, got {other:?}"),
    }
}

#[test]
fn ingest_and_delete_stream_over_the_wire_without_disturbing_open_sessions() {
    let points = planted();
    let query = points[0].clone();
    let (script, want) = record_reference(&points, &query);
    assert!(script.len() >= 2, "fixture needs at least two views");

    let serve = ServeConfig::new(search_config())
        .with_max_resident(2)
        .with_warm_capacity(8)
        .with_max_sessions(8);
    let config = NetServerConfig::new(serve).with_shed(ShedPolicy::disabled());
    let server =
        NetServer::bind(config, DatasetHandle::new(&points).expect("dataset")).expect("bind");
    let addr = server.addr();

    let mut client = NetClient::new(addr);
    let e0 = client.epoch().expect("epoch");
    assert_eq!(e0.epoch, points.len() as u64, "epoch counts row-ops");

    // Open: the first view is stamped with the pinned epoch.
    let view = expect_view(
        client
            .call_with_retry(&Request::Open {
                tenant: "alice".to_string(),
                query: query.clone(),
            })
            .expect("open"),
    );
    let session = view.session;
    assert_eq!(view.epoch, Some(e0.epoch), "open view must carry the epoch");

    // Ingest while the session is live: the dataset moves...
    let rows = planted()[..5].to_vec();
    let moved = client.ingest("alice", &rows).expect("ingest");
    assert_eq!(moved.epoch, e0.epoch + 5);
    assert_ne!(moved.fingerprint, e0.fingerprint);
    assert_eq!(client.epoch().expect("epoch").epoch, moved.epoch);

    // ...but the open session keeps its pin, visible on every view reply.
    let mut reply = client.view(session).expect("view");
    let mut next = 0usize;
    // Suspend mid-session and bounce the connection: the warm restore
    // must also come back on the pinned epoch, not the moved one.
    let mut suspended = false;
    let done = loop {
        match reply {
            Reply::Done(done) => break done,
            Reply::View(view) => {
                assert_eq!(
                    view.epoch,
                    Some(e0.epoch),
                    "view {next} answered from the wrong epoch"
                );
                if next == 1 && !suspended {
                    suspended = true;
                    client
                        .call_with_retry(&Request::Suspend { session })
                        .expect("suspend");
                    client.disconnect();
                    client.delete_rows("alice", &[150, 151]).expect("delete");
                    reply = client.view(session).expect("resync view");
                    continue;
                }
                let response = script.get(next).expect("script exhausted").clone();
                next += 1;
                reply = client
                    .call_with_retry(&Request::Submit {
                        session,
                        major: view.major,
                        minor: view.minor,
                        response,
                    })
                    .expect("submit");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    };
    assert!(
        suspended,
        "fixture never exercised the suspend+ingest bounce"
    );
    let got = (
        done.neighbors.clone(),
        done.probabilities.iter().map(|p| p.to_bits()).collect(),
        done.majors,
    );
    assert_eq!(got, want, "streaming under the session changed its answer");

    // The deletes above advanced the epoch too; a fresh session pins it.
    let now = client.epoch().expect("epoch");
    assert_eq!(now.epoch, moved.epoch + 2);
    let view = expect_view(
        client
            .call_with_retry(&Request::Open {
                tenant: "alice".to_string(),
                query: query.clone(),
            })
            .expect("open"),
    );
    assert_eq!(
        view.epoch,
        Some(now.epoch),
        "fresh session pins the new epoch"
    );

    // Rebase is a no-op for an up-to-date session — and still a view.
    let rebased = expect_view(client.rebase(view.session).expect("rebase"));
    assert_eq!(rebased.epoch, Some(now.epoch));

    // Refusals carry the current epoch as well: deleting an unknown id.
    let err = client
        .delete_rows("alice", &[1_000_000])
        .expect_err("unknown id must refuse");
    match err {
        hinn::net::ClientError::Server(wire) => {
            assert_eq!(
                wire.epoch,
                Some(now.epoch),
                "refusal missing the epoch stamp"
            );
        }
        other => panic!("expected a server refusal, got {other:?}"),
    }
    assert_eq!(
        client.epoch().expect("epoch").epoch,
        now.epoch,
        "a refused delete must not advance the epoch"
    );

    server.shutdown();
}

/// A session opened before an ingest can be carried onto the moved
/// dataset explicitly: `rebase` re-pins it and subsequent views are
/// stamped with the new epoch.
#[test]
fn rebase_over_the_wire_moves_a_session_onto_the_current_epoch() {
    let points = planted();
    let query = points[0].clone();
    let (script, _) = record_reference(&points, &query);

    let serve = ServeConfig::new(search_config()).with_max_sessions(8);
    let config = NetServerConfig::new(serve).with_shed(ShedPolicy::disabled());
    let server =
        NetServer::bind(config, DatasetHandle::new(&points).expect("dataset")).expect("bind");
    let addr = server.addr();

    let mut client = NetClient::new(addr);
    let e0 = client.epoch().expect("epoch").epoch;
    let view = expect_view(
        client
            .call_with_retry(&Request::Open {
                tenant: "bob".to_string(),
                query: query.clone(),
            })
            .expect("open"),
    );
    let session = view.session;
    assert_eq!(view.epoch, Some(e0));

    let moved = client.ingest("bob", &planted()[..3]).expect("ingest").epoch;
    assert_eq!(
        expect_view(client.view(session).expect("view")).epoch,
        Some(e0),
        "pre-rebase views answer from the pin"
    );

    let rebased = expect_view(client.rebase(session).expect("rebase"));
    assert_eq!(rebased.epoch, Some(moved), "rebase must re-pin the session");

    // The rebased session still drives to completion over the wire.
    let mut reply = client.view(session).expect("view");
    let mut next = 0usize;
    loop {
        match reply {
            Reply::Done(_) => break,
            Reply::View(view) => {
                assert_eq!(view.epoch, Some(moved));
                // The rebased session may ask for more views than the
                // reference script; reuse its last response if so.
                let response = script[next.min(script.len() - 1)].clone();
                next += 1;
                reply = client
                    .call_with_retry(&Request::Submit {
                        session,
                        major: view.major,
                        minor: view.minor,
                        response,
                    })
                    .expect("submit");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    server.shutdown();
}
