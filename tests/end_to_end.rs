//! Cross-crate integration tests: the full interactive pipeline from data
//! generation through search, diagnosis, and evaluation.

use hinn::core::{DatasetHandle, InteractiveSearch, ProjectionMode, SearchConfig};
use hinn::data::projected::{
    generate_projected_clusters_detailed, Orientation, ProjectedClusterSpec,
};
use hinn::data::uniform::uniform_hypercube;
use hinn::kde::polygon::HalfPlane;
use hinn::metrics::PrecisionRecall;
use hinn::user::{HeuristicUser, OracleUser, ScriptedUser, UserResponse};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_spec() -> ProjectedClusterSpec {
    ProjectedClusterSpec {
        n_points: 800,
        dim: 10,
        n_clusters: 3,
        cluster_dim: 4,
        ..ProjectedClusterSpec::small_test()
    }
}

#[test]
fn heuristic_session_recovers_planted_cluster() {
    let mut rng = StdRng::seed_from_u64(3);
    let (data, _truth) = generate_projected_clusters_detailed(&small_spec(), &mut rng);
    let members = data.cluster_members(0);
    let query = data.points[members[0]].clone();

    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(
        SearchConfig::default()
            .with_support(20)
            .with_mode(ProjectionMode::AxisParallel),
    )
    .run_with(
        &DatasetHandle::new(&data.points).expect("dataset"),
        &query,
        &mut user,
        hinn::core::RunOptions::default(),
    )
    .expect("interactive session")
    .into_outcome();

    let set = outcome
        .natural_neighbors()
        .unwrap_or_else(|| outcome.neighbors.clone());
    let pr = PrecisionRecall::compute(&set, &members);
    assert!(
        pr.precision > 0.6,
        "precision too low: {} (set size {})",
        pr.precision,
        set.len()
    );
    // Cluster members must decisively outrank the background.
    let mean_member: f64 = members
        .iter()
        .map(|&i| outcome.probabilities[i])
        .sum::<f64>()
        / members.len() as f64;
    let bg: Vec<usize> = (0..data.len()).filter(|i| !members.contains(i)).collect();
    let mean_bg: f64 = bg.iter().map(|&i| outcome.probabilities[i]).sum::<f64>() / bg.len() as f64;
    assert!(
        mean_member > mean_bg + 0.25,
        "member P {mean_member:.2} vs background {mean_bg:.2}"
    );
}

#[test]
fn uniform_data_is_diagnosed_not_meaningful() {
    let mut rng = StdRng::seed_from_u64(5);
    let data = uniform_hypercube(800, 12, 100.0, &mut rng);
    let query: Vec<f64> = (0..12).map(|_| rng.gen_range(20.0..80.0)).collect();

    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(SearchConfig::default().with_support(15))
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    assert!(
        !outcome.diagnosis.is_meaningful(),
        "uniform data must not be meaningful: {:?}",
        outcome.diagnosis
    );
    assert!(outcome.natural_neighbors().is_none());
    // Dismissal should dominate the transcript.
    let total = outcome.transcript.total_views();
    let dismissed = outcome.transcript.total_dismissed();
    assert!(
        dismissed * 2 > total,
        "expected mostly dismissed views: {dismissed}/{total}"
    );
}

#[test]
fn oracle_user_is_an_upper_bound_for_the_heuristic() {
    let mut rng = StdRng::seed_from_u64(7);
    let (data, _truth) = generate_projected_clusters_detailed(&small_spec(), &mut rng);
    let members = data.cluster_members(1);
    let query = data.points[members[0]].clone();
    let config = SearchConfig::default()
        .with_support(20)
        .with_mode(ProjectionMode::AxisParallel);

    let run = |user: &mut dyn hinn::user::UserModel| {
        let outcome = InteractiveSearch::new(config.clone())
            .run_with(
                &DatasetHandle::new(&data.points).expect("dataset"),
                &query,
                user,
                hinn::core::RunOptions::default(),
            )
            .expect("interactive session")
            .into_outcome();
        let set = outcome
            .natural_neighbors()
            .unwrap_or_else(|| outcome.neighbors.clone());
        PrecisionRecall::compute(&set, &members).f1()
    };
    let mut oracle = OracleUser::new(members.iter().copied());
    let oracle_f1 = run(&mut oracle);
    let mut heuristic = HeuristicUser::default();
    let heuristic_f1 = run(&mut heuristic);
    assert!(
        oracle_f1 + 0.15 >= heuristic_f1,
        "oracle ({oracle_f1:.2}) should not be far below heuristic ({heuristic_f1:.2})"
    );
    assert!(oracle_f1 > 0.5, "oracle should do well: {oracle_f1:.2}");
}

#[test]
fn scripted_all_discard_returns_not_meaningful_and_zero_probabilities() {
    let mut rng = StdRng::seed_from_u64(9);
    let (data, _truth) = generate_projected_clusters_detailed(&small_spec(), &mut rng);
    let query = data.points[0].clone();
    let mut user = ScriptedUser::new([]);
    let config = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(15)
    };
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    assert!(!outcome.diagnosis.is_meaningful());
    assert!(outcome.probabilities.iter().all(|&p| p == 0.0));
    // Fallback ranking still returns the requested number of neighbors.
    assert_eq!(outcome.neighbors.len(), outcome.effective_support);
}

#[test]
fn polygon_responses_flow_through_the_search() {
    let mut rng = StdRng::seed_from_u64(11);
    let (data, _truth) = generate_projected_clusters_detailed(&small_spec(), &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();
    // A half-plane that keeps everything: every view picks all points, so
    // every point survives with identical counts → no discrimination.
    let keep_all = UserResponse::Polygon(vec![HalfPlane::new(1.0, 0.0, 1e9)]);
    let mut user =
        ScriptedUser::new(std::iter::repeat_n(keep_all, 100)).with_fallback(UserResponse::Discard);
    let config = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(15)
    };
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    // Picking everything every time gives every point the same count; the
    // variance of the null is 0 → probabilities all zero → not meaningful.
    assert!(!outcome.diagnosis.is_meaningful());
}

#[test]
fn arbitrary_mode_handles_oblique_clusters() {
    let spec = ProjectedClusterSpec {
        n_points: 1200,
        dim: 10,
        n_clusters: 2,
        cluster_dim: 4,
        orientation: Orientation::Arbitrary,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(13);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let members = data.cluster_members(0);
    let query = data.points[members[0]].clone();
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(
        SearchConfig::default()
            .with_support(80)
            .with_mode(ProjectionMode::Arbitrary),
    )
    .run_with(
        &DatasetHandle::new(&data.points).expect("dataset"),
        &query,
        &mut user,
        hinn::core::RunOptions::default(),
    )
    .expect("interactive session")
    .into_outcome();
    let set = outcome
        .natural_neighbors()
        .unwrap_or_else(|| outcome.neighbors.clone());
    let pr = PrecisionRecall::compute(&set, &members);
    assert!(
        pr.precision > 0.5,
        "oblique cluster precision too low: {:.2}",
        pr.precision
    );
}

#[test]
fn transcript_is_complete_and_consistent() {
    let mut rng = StdRng::seed_from_u64(17);
    let (data, _truth) = generate_projected_clusters_detailed(&small_spec(), &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();
    let config = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 2,
        record_profiles: true,
        ..SearchConfig::default().with_support(15)
    };
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();

    assert_eq!(outcome.transcript.majors.len(), outcome.majors_run);
    for (mi, major) in outcome.transcript.majors.iter().enumerate() {
        assert!(major.n_points_after <= major.n_points_before);
        // d = 10 → 5 minor iterations.
        assert_eq!(major.minors.len(), 5);
        for (vi, minor) in major.minors.iter().enumerate() {
            assert_eq!(minor.major, mi);
            assert_eq!(minor.minor, vi);
            assert_eq!(minor.projection.dim(), 2);
            let profile = minor.profile.as_ref().expect("recorded");
            assert_eq!(profile.points.len(), major.n_points_before);
        }
        // The d/2 projections of a major iteration are mutually orthogonal.
        for a in 0..major.minors.len() {
            for b in (a + 1)..major.minors.len() {
                for ea in major.minors[a].projection.basis() {
                    for eb in major.minors[b].projection.basis() {
                        assert!(
                            hinn::linalg::vector::dot(ea, eb).abs() < 1e-6,
                            "projections {a} and {b} not orthogonal"
                        );
                    }
                }
            }
        }
    }
}
