//! Shared helpers of the integration-test harness.
//!
//! Each test binary declares `mod common;` and uses a subset of these
//! helpers, so unused items in any one binary are expected.
#![allow(dead_code)]

pub mod recall;
