//! The recall harness: measure any [`CandidateSource`] against the exact
//! linear baseline (ISSUE 6's first-class test deliverable).
//!
//! The metric itself ([`hinn::index::recall::recall_at_k`]) lives in
//! `hinn-index` so the `index_bench` binary shares the exact same
//! definition; this module adds what only tests need — seeded dataset
//! fixtures and the source-vs-baseline sweep.

use hinn::core::{CandidateSource, Parallelism};
use hinn::index::recall::recall_at_k;

/// Deterministic xorshift64 uniform generator in `[0, 1)` (the
/// harness-wide generator, same as `parallel_equivalence.rs`).
pub fn xorshift(seed: u64) -> impl FnMut() -> f64 {
    let mut state = seed | 1;
    move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Uniform point cloud over `[-50, 50]^d` — the worst case for any
/// locality-exploiting index (no cluster structure to navigate).
pub fn uniform_cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut unif = xorshift(seed);
    (0..n)
        .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
        .collect()
}

/// Gaussian-mixture cloud: `n_clusters` centers uniform in `[-50, 50]^d`,
/// each point a unit-σ Gaussian (Box–Muller) around a round-robin center
/// scaled by `sigma` — the clustered regime the paper's workloads model.
pub fn gaussian_mixture(
    n: usize,
    d: usize,
    n_clusters: usize,
    sigma: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    let mut unif = xorshift(seed);
    let centers: Vec<Vec<f64>> = (0..n_clusters)
        .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
        .collect();
    let mut gauss = move || {
        // Box–Muller; u1 ∈ (0, 1] to keep the log finite.
        let u1 = 1.0 - unif();
        let u2 = unif();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    (0..n)
        .map(|i| {
            let c = &centers[i % n_clusters];
            (0..d).map(|j| c[j] + sigma * gauss()).collect()
        })
        .collect()
}

/// The exact Euclidean top-`k` baseline (closest first) every approximate
/// source is measured against.
pub fn exact_top_k(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<usize> {
    CandidateSource::Full.top_k(Parallelism::serial(), points, query, k)
}

/// Mean recall@k of `source` against the exact baseline over the queries
/// at `query_ids` (each queried by its own point — the paper's
/// query-by-example setting).
pub fn mean_recall(
    source: &CandidateSource,
    points: &[Vec<f64>],
    query_ids: &[usize],
    k: usize,
) -> f64 {
    assert!(!query_ids.is_empty(), "recall needs at least one query");
    let par = Parallelism::serial();
    let sum: f64 = query_ids
        .iter()
        .map(|&qi| {
            let exact = exact_top_k(points, &points[qi], k);
            let approx = source.top_k(par, points, &points[qi], k);
            recall_at_k(&exact, &approx, k)
        })
        .sum();
    sum / query_ids.len() as f64
}

/// Evenly spread query ids over the dataset.
pub fn spread_queries(n: usize, n_queries: usize) -> Vec<usize> {
    let step = (n / n_queries.max(1)).max(1);
    (0..n).step_by(step).take(n_queries).collect()
}
