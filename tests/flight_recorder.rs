//! Flight-recorder acceptance (ISSUE 7): timed span trees, the Perfetto
//! export, and the no-observer-effect contract for the new machinery.
//!
//! `tests/obs_invariance.rs` pins "recorder on/off changes nothing" for
//! plain recorders; this suite extends the claim to the trace-mode
//! recorder (which reads a monotonic clock at every span edge), to the
//! environment-driven file export (including a *failing* export), and to
//! a `SessionManager` evict/restore cycle. It also pins the span-tree
//! *structure* — paths, parentage, counts, never times — to a golden
//! file. To regenerate after an intentional instrumentation change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test flight_recorder
//! ```

use hinn::core::{
    CandidateSource, DatasetHandle, InteractiveSearch, Parallelism, RunOptions, SearchConfig,
    SearchOutcome,
};
use hinn::obs::diff::{parse_json, JsonValue};
use hinn::obs::TelemetryReport;
use hinn::par::SERIAL_CUTOFF;
use hinn::serve::{ServeConfig, SessionManager, Step};
use hinn::user::{HeuristicUser, ScriptedUser, UserModel, UserResponse};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Thread budgets under test (pinned, independent of `HINN_THREADS`).
const BUDGETS: [usize; 2] = [1, 4];

/// The `hinn-obs` facade is process-global; serialize the tests in this
/// binary so one test's session never records into another's shards.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
        .collect()
}

fn script() -> ScriptedUser {
    ScriptedUser::new([
        UserResponse::Threshold(1e-7),
        UserResponse::Discard,
        UserResponse::Threshold(5e-7),
    ])
    .with_fallback(UserResponse::Threshold(1e-7))
}

fn config(par: Parallelism) -> SearchConfig {
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default()
            .with_support(25)
            .with_parallelism(par)
    }
}

fn run(config: SearchConfig, points: &[Vec<f64>], options: RunOptions) -> hinn::core::RunOutput {
    let mut user = script();
    InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(points).expect("dataset"),
            &points[0],
            &mut user,
            options,
        )
        .expect("interactive session")
}

fn assert_bits_equal(a: &SearchOutcome, b: &SearchOutcome, label: &str) {
    assert_eq!(a.neighbors, b.neighbors, "{label}: neighbor sets differ");
    assert_eq!(a.majors_run, b.majors_run, "{label}: majors_run differs");
    let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&a.probabilities),
        bits(&b.probabilities),
        "{label}: probabilities not bit-identical"
    );
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("trace_tree.txt")
}

/// The span-tree *structure* of a traced session — paths, nesting, and
/// counts, rendered by [`TelemetryReport::span_tree_text`] — is pinned to
/// a golden file. Wall times are deliberately absent: structure is
/// deterministic (fixed dataset, script, and thread budget), times never
/// are.
#[test]
fn trace_tree_structure_matches_golden() {
    let _guard = exclusive();
    let points = cloud(SERIAL_CUTOFF + 130, 6, 0xF11E);
    let out = run(config(Parallelism::fixed(4)), &points, RunOptions::traced());
    let report = out.telemetry.as_ref().expect("traced run yields telemetry");
    let rendered = report.span_tree_text();

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &rendered).expect("write golden trace tree");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden trace tree {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test flight_recorder`",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "span-tree structure drifted from the golden file; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The Perfetto export of a traced session parses as JSON, carries one
/// complete event per recorded span, and the session root's inclusive
/// time is ≥95% covered by its named children — the flight recorder's
/// coverage acceptance bar.
#[test]
fn perfetto_export_is_valid_and_covers_the_session() {
    let _guard = exclusive();
    let points = cloud(SERIAL_CUTOFF + 130, 6, 0xF11E_0002);
    let out = run(config(Parallelism::fixed(4)), &points, RunOptions::traced());
    let report = out.telemetry.as_ref().expect("telemetry");

    let trace = report.trace.as_ref().expect("traced run records events");
    assert!(!trace.events.is_empty(), "no trace events recorded");

    // The export must parse as JSON (with the workspace's own parser —
    // the same one `obs_diff` trusts) and carry every recorded event.
    let json = report.to_chrome_trace();
    let value = parse_json(&json).expect("chrome trace is valid JSON");
    let events = match value.get("traceEvents") {
        Some(JsonValue::Arr(events)) => events,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    };
    assert_eq!(events.len(), trace.events.len());
    for e in events {
        for key in ["name", "ph", "ts", "dur", "pid", "tid"] {
            assert!(e.get(key).is_some(), "event missing {key:?}: {e:?}");
        }
    }

    // ≥95% of the session root's inclusive wall time sits under named
    // child spans (seed / major / finish) — no giant unaccounted gap.
    let coverage = report
        .span_coverage("search.session")
        .expect("session root span");
    assert!(
        coverage >= 0.95,
        "session span coverage {coverage:.3} below the 95% bar:\n{}",
        report.flame_text()
    );

    // The flame summary renders the same tree.
    let flame = report.flame_text();
    assert!(flame.contains("search.session/search.major"), "{flame}");
}

/// Trace-mode recorders and the environment-driven export must be
/// invisible in results — including when the export *fails* (unwritable
/// path), which must cost a stderr warning, never a panic or a changed
/// bit. Covered for both candidate sources.
#[test]
fn trace_and_export_toggles_are_invisible_to_results() {
    let _guard = exclusive();
    let points = cloud(SERIAL_CUTOFF + 130, 6, 0xF11E_0003);
    let export_dir = std::env::temp_dir().join("hinn_flight_recorder_test");
    std::fs::create_dir_all(&export_dir).expect("mkdir export dir");
    let good_trace = export_dir.join("trace.json");
    let bad_trace = "/nonexistent-dir-hinn-flight/trace.json";

    for (label, source) in [
        ("full", CandidateSource::Full),
        ("hnsw", CandidateSource::hnsw(SERIAL_CUTOFF + 40)),
    ] {
        let cfg = || config(Parallelism::fixed(4)).with_candidate_source(source.clone());
        let plain = run(cfg(), &points, RunOptions::default()).into_outcome();

        std::env::set_var("HINN_OBS_TRACE", &good_trace);
        let exported = run(cfg(), &points, RunOptions::traced()).into_outcome();
        std::env::set_var("HINN_OBS_TRACE", bad_trace);
        let export_failed = run(cfg(), &points, RunOptions::traced()).into_outcome();
        std::env::remove_var("HINN_OBS_TRACE");
        let untraced = run(cfg(), &points, RunOptions::traced()).into_outcome();

        assert_bits_equal(&plain, &exported, &format!("{label}: export on"));
        assert_bits_equal(&plain, &export_failed, &format!("{label}: export failing"));
        assert_bits_equal(&plain, &untraced, &format!("{label}: export off"));

        let written = std::fs::read_to_string(&good_trace).expect("trace file written");
        parse_json(&written).expect("exported trace is valid JSON");
        std::fs::remove_file(&good_trace).ok();
    }
}

/// Recorder on/off bit-identity through a `SessionManager` evict/restore
/// cycle, across thread budgets: the serving layer's new timing sketches
/// and black-box rings observe the hot path without perturbing it.
#[test]
fn manager_evict_restore_cycle_is_recorder_invariant() {
    let _guard = exclusive();
    let points = Arc::new(cloud(200, 8, 0xF11E_0004));
    let query = points[0].clone();

    let drive = |recorded: bool, budget: usize| -> SearchOutcome {
        let search = SearchConfig {
            max_major_iterations: 2,
            min_major_iterations: 1,
            ..SearchConfig::default()
                .with_support(20)
                .with_parallelism(Parallelism::fixed(budget))
        };
        let recorder = recorded.then(|| Arc::new(hinn::obs::SessionRecorder::with_trace()));
        let _guard = recorder
            .clone()
            .map(|r| hinn::obs::install(r as Arc<dyn hinn::obs::Recorder>));
        let manager = SessionManager::new(
            ServeConfig::new(search).with_max_resident(1),
            DatasetHandle::new(&points).expect("dataset"),
        )
        .expect("manager");
        let (id, mut step) = manager.open(&query).expect("open");
        let mut user = HeuristicUser::default();
        loop {
            match step {
                Step::Done(outcome) => return *outcome,
                Step::NeedResponse(req) => {
                    // Force a full evict/restore round trip before every
                    // submit: snapshot out, then transparently resume.
                    manager.suspend(id).expect("suspend");
                    let r = user.respond(req.profile(), req.context());
                    step = manager.submit(id, r).expect("submit");
                }
            }
        }
    };

    for budget in BUDGETS {
        let plain = drive(false, budget);
        let recorded = drive(true, budget);
        assert_bits_equal(
            &plain,
            &recorded,
            &format!("manager cycle, {budget} threads"),
        );
    }
}

/// The traced report exposes percentile fields for the latency
/// histograms the batch layer feeds (closing the loop on the sketch →
/// report → JSON path without a serving deployment).
#[test]
fn traced_report_serves_percentiles_in_json() {
    let _guard = exclusive();
    let points = cloud(SERIAL_CUTOFF + 130, 6, 0xF11E_0005);
    let out = run(config(Parallelism::fixed(1)), &points, RunOptions::traced());
    let report: &TelemetryReport = out.telemetry.as_ref().expect("telemetry");
    let json = report.to_json();
    let value = parse_json(&json).expect("report JSON parses");
    let hists = match value.get("histograms") {
        Some(JsonValue::Obj(fields)) => fields,
        other => panic!("histograms missing: {other:?}"),
    };
    assert!(!hists.is_empty(), "no histograms in a traced session");
    for (name, h) in hists {
        for key in ["count", "p50", "p90", "p99"] {
            assert!(h.get(key).is_some(), "{name}: missing {key:?} in {json}");
        }
    }
}
