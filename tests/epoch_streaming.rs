//! Streaming-epoch determinism: the contract that makes incremental
//! ingest/delete safe to serve from.
//!
//! Three claims, each at the integration level (facade API, real search
//! sessions, thread budgets {1, 4}):
//!
//! 1. **chunking invariance** — a dataset grown row-by-row and the same
//!    dataset ingested in one batch are the *same epoch*: identical
//!    chained fingerprint, identical epoch counter, and bit-identical
//!    search outcomes (probabilities compared via `f64::to_bits`,
//!    telemetry counter maps included);
//! 2. **rank-1 statistics** — the incrementally maintained global
//!    mean/covariance/axis variances stay within the documented tolerance
//!    of an exact recompute over the alive rows, across a stream long
//!    enough to cross several exact-recompute checkpoints;
//! 3. **typed consistency** — a session snapshot carries its pinned
//!    epoch through text serialization, so resuming against moved data
//!    is the typed `HinnError::EpochMismatch` (never a silent answer
//!    from the wrong dataset), while resuming on the pinned snapshot or
//!    explicitly rebasing both work.

use hinn::core::{
    DatasetHandle, HinnError, InteractiveSearch, Parallelism, RunOptions, SearchConfig,
    SearchOutcome, SessionEngine, SessionSnapshot, Step,
};
use hinn::par::SERIAL_CUTOFF;
use hinn::user::{HeuristicUser, UserModel};

/// Deterministic xorshift point cloud sized so worker threads really
/// spawn (above `SERIAL_CUTOFF` the parallel paths stop running inline).
fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
        .collect()
}

fn config(par: Parallelism) -> SearchConfig {
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default()
            .with_support(25)
            .with_parallelism(par)
    }
}

/// Bit-exact outcome summary: neighbor ids, probability bits, majors.
fn bits(o: &SearchOutcome) -> (Vec<usize>, Vec<u64>, usize) {
    (
        o.neighbors.clone(),
        o.probabilities.iter().map(|p| p.to_bits()).collect(),
        o.majors_run,
    )
}

/// Grow one handle in one `append` + one `delete`, the other in drips of
/// uneven chunk sizes — then check they are indistinguishable: same
/// fingerprint, same epoch counter, and bit-identical traced sessions.
#[test]
fn chunked_and_batched_ingest_replay_bit_identically() {
    let base = cloud(SERIAL_CUTOFF + 60, 6, 0xE90C);
    let extra = cloud(48, 6, 0xA11CE);
    let doomed: Vec<usize> = (0..20).chain([40, 41, 55]).collect();
    let query = base[30].clone();

    let all: Vec<Vec<f64>> = base.iter().chain(extra.iter()).cloned().collect();
    let batched = DatasetHandle::new(&all).expect("batched handle");
    batched.delete(&doomed).expect("batched delete");

    let chunked = DatasetHandle::empty(6).expect("empty handle");
    for chunk in base.chunks(7) {
        chunked.append(chunk).expect("chunked append");
    }
    for chunk in extra.chunks(13) {
        chunked.append(chunk).expect("chunked append");
    }
    for id in &doomed {
        chunked.delete(&[*id]).expect("chunked delete");
    }

    // Same epoch in every observable way: the chain hashes row-ops, not
    // batch boundaries.
    let (sb, sc) = (batched.snapshot(), chunked.snapshot());
    assert_eq!(
        sb.fingerprint(),
        sc.fingerprint(),
        "fingerprint chain diverged"
    );
    assert_eq!(sb.epoch(), sc.epoch(), "epoch counters diverged");
    assert_eq!(sb.len(), sc.len());

    for budget in [1usize, 4] {
        let run = |data: &DatasetHandle| {
            let mut user = HeuristicUser::default();
            InteractiveSearch::new(config(Parallelism::fixed(budget)))
                .run_with(data, &query, &mut user, RunOptions::traced())
                .expect("interactive session")
        };
        let a = run(&batched);
        let b = run(&chunked);
        let (ta, tb) = (
            a.telemetry.clone().expect("traced"),
            b.telemetry.clone().expect("traced"),
        );
        assert_eq!(
            bits(&a.into_outcome()),
            bits(&b.into_outcome()),
            "outcomes diverged at {budget} threads"
        );
        assert_eq!(
            ta.counters, tb.counters,
            "telemetry counters diverged at {budget} threads"
        );
    }
}

/// A long interleaved append/delete stream — several exact-recompute
/// checkpoints deep — keeps the rank-1 global statistics within the
/// documented tolerance of a from-scratch recompute (mean 1e-9,
/// covariance and axis variances 1e-6, both relative).
#[test]
fn rank1_statistics_track_exact_recompute_through_a_long_stream() {
    let d = 6;
    let handle = DatasetHandle::new(&cloud(400, d, 0x57A7)).expect("handle");
    for round in 0u64..6 {
        let first = (round * 30) as usize;
        let doomed: Vec<usize> = (first..first + 25).collect();
        handle.delete(&doomed).expect("delete");
        handle
            .append(&cloud(35, d, 0x57A7 ^ (round + 1)))
            .expect("append");
    }

    let snap = handle.snapshot();
    let alive = snap.rows();
    let exact_mean = hinn::linalg::stats::mean_vector(&alive);
    let exact_cov = hinn::linalg::covariance_matrix(&alive);

    let stats = snap.stats();
    assert_eq!(stats.count(), snap.len());
    for (a, b) in stats.mean().iter().zip(&exact_mean) {
        assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "mean: {a} vs {b}");
    }
    let cov = stats.covariance();
    for i in 0..d {
        for j in 0..d {
            let (a, b) = (cov[(i, j)], exact_cov[(i, j)]);
            assert!(
                (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                "covariance ({i},{j}): {a} vs {b}"
            );
        }
    }
    for (i, v) in stats.coordinate_variances().iter().enumerate() {
        let want = exact_cov[(i, i)];
        assert!(
            (v - want).abs() <= 1e-6 * (1.0 + want.abs()),
            "axis variance {i}: {v} vs {want}"
        );
    }
}

/// The typed consistency rule survives text serialization: snapshot a
/// session, move the dataset, and the resume refusal names both epochs;
/// the pinned snapshot still resumes bit-identically, and an explicit
/// rebase carries the session onto the new epoch.
#[test]
fn epoch_mismatch_round_trips_through_session_snapshot() {
    let points = cloud(SERIAL_CUTOFF + 42, 6, 0x5EED);
    let query = points[0].clone();
    let handle = DatasetHandle::new(&points).expect("handle");
    let pinned = handle.snapshot();

    let cfg = || config(Parallelism::fixed(1));
    let (mut engine, mut step) = SessionEngine::start(cfg(), &handle, &query).expect("start");
    let mut user = HeuristicUser::default();
    // Answer one view so the snapshot has real loop state.
    if let Step::NeedResponse(req) = step {
        let r = user.respond(req.profile(), req.context());
        step = engine.submit(r).expect("submit");
    }
    assert!(
        matches!(step, Step::NeedResponse(_)),
        "fixture session too short"
    );
    let text = engine.snapshot().expect("snapshot").to_string();
    drop(engine);
    let snap = SessionSnapshot::from_text(text).expect("parse snapshot");

    // Move the dataset under the suspended session.
    handle.append(&cloud(10, 6, 0xD00D)).expect("append");
    let moved = handle.snapshot();

    let refusal = SessionEngine::resume(cfg(), &handle, &snap).map(|_| ());
    match refusal.expect_err("resume against a moved dataset must refuse") {
        HinnError::EpochMismatch { pinned: p, offered } => {
            assert_eq!(p, pinned.epoch());
            assert_eq!(offered, moved.epoch());
        }
        other => panic!("wrong refusal: {other}"),
    }

    // The pinned epoch still resumes, and runs to completion.
    let (mut engine, mut step) =
        SessionEngine::resume_at(cfg(), pinned.clone(), &snap).expect("resume_at pinned");
    assert_eq!(engine.dataset_epoch().map(|(e, _)| e), Some(pinned.epoch()));
    loop {
        match step {
            Step::Done(outcome) => {
                assert!(!outcome.neighbors.is_empty());
                break;
            }
            Step::NeedResponse(req) => {
                let r = user.respond(req.profile(), req.context());
                step = engine.submit(r).expect("submit");
            }
        }
    }

    // Opting into the move is explicit — and lands on the new epoch.
    let (engine, step) =
        SessionEngine::resume_rebased(cfg(), pinned, moved.clone(), &snap).expect("rebase");
    assert_eq!(engine.dataset_epoch().map(|(e, _)| e), Some(moved.epoch()));
    assert!(matches!(step, Step::NeedResponse(_)));
}
