//! Suspend/resume equivalence: a session that is snapshotted to text and
//! restored — at *every* suspension point, onto different thread budgets
//! and cache policies — finishes with a byte-identical transcript and
//! outcome to the session that was never interrupted.
//!
//! This is the serving layer's core correctness claim: eviction to the
//! warm tier and transparent restore are invisible to results. The engine
//! makes it checkable because the snapshot carries *all* loop state and
//! the pending view is a pure function of that state.

use hinn::core::{
    DatasetHandle, Parallelism, SearchConfig, SearchOutcome, SessionEngine, SessionSnapshot, Step,
};
use hinn::par::SERIAL_CUTOFF;
use hinn::user::{HeuristicUser, UserModel};

/// Deterministic xorshift point cloud sized so worker threads really
/// spawn (above `SERIAL_CUTOFF` the parallel paths stop running inline).
fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
        .collect()
}

fn config(par: Parallelism) -> SearchConfig {
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default()
            .with_support(25)
            .with_parallelism(par)
    }
}

/// Render everything response-visible about a transcript, bit-exactly
/// (`{:?}` on an f64 prints its shortest round-trip form, so equal text
/// means equal bits).
fn transcript_text(o: &SearchOutcome) -> String {
    let mut out = String::new();
    for (mi, major) in o.transcript.majors.iter().enumerate() {
        out.push_str(&format!(
            "major {mi}: {} -> {} overlap {:?}\n",
            major.n_points_before, major.n_points_after, major.overlap_with_previous
        ));
        for r in &major.minors {
            out.push_str(&format!(
                "  minor {}.{} response {:?} picked {} qpr {:?} ratios {:?}\n",
                r.major, r.minor, r.response, r.n_picked, r.query_peak_ratio, r.variance_ratios
            ));
        }
    }
    out.push_str(&format!(
        "neighbors {:?}\nprobabilities {:?}\nmajors_run {}\n",
        o.neighbors, o.probabilities, o.majors_run
    ));
    out
}

/// Run a session to completion with no interruption.
fn uninterrupted(data: &DatasetHandle, query: &[f64], par: Parallelism) -> SearchOutcome {
    let (mut engine, mut step) = SessionEngine::start(config(par), data, query).expect("start");
    let mut user = HeuristicUser::default();
    loop {
        match step {
            Step::Done(outcome) => return *outcome,
            Step::NeedResponse(req) => {
                let r = user.respond(req.profile(), req.context());
                step = engine.submit(r).expect("submit");
            }
        }
    }
}

/// Run the same session, but at every suspension point serialize the
/// engine to text, drop it, and resume from the parsed text under
/// `resume_par` — exercising snapshot/restore at every view and proving
/// thread budget and cache policy are resume-time free choices.
fn interrupted_at_every_view(
    data: &DatasetHandle,
    query: &[f64],
    start_par: Parallelism,
    resume_par: Parallelism,
) -> (SearchOutcome, usize) {
    let (mut engine, mut step) =
        SessionEngine::start(config(start_par), data, query).expect("start");
    let mut user = HeuristicUser::default();
    let mut resumes = 0;
    loop {
        match step {
            Step::Done(outcome) => return (*outcome, resumes),
            Step::NeedResponse(req) => {
                // Suspend: serialize, destroy the engine, round-trip the
                // text, restore on a different budget with caching off.
                let text = engine.snapshot().expect("snapshot").to_string();
                drop(engine);
                let snap = SessionSnapshot::from_text(text).expect("parse snapshot");
                let restored =
                    SessionEngine::resume(config(resume_par).without_cache(), data, &snap)
                        .expect("resume");
                engine = restored.0;
                resumes += 1;
                // The recomputed pending view must be the very view we
                // were answering.
                let again = match &restored.1 {
                    Step::NeedResponse(r) => r,
                    Step::Done(_) => panic!("resume finished a suspended session"),
                };
                assert_eq!(req.context().major, again.context().major);
                assert_eq!(req.context().minor, again.context().minor);
                assert_eq!(req.context().original_ids, again.context().original_ids);
                let r = user.respond(again.profile(), again.context());
                step = engine.submit(r).expect("submit");
            }
        }
    }
}

#[test]
fn resume_at_every_view_is_byte_identical_across_budgets() {
    let points = cloud(SERIAL_CUTOFF + 42, 6, 0x5EED);
    let query = points[0].clone();
    let data = DatasetHandle::new(&points).expect("dataset");
    let reference = uninterrupted(&data, &query, Parallelism::fixed(1));
    let want = transcript_text(&reference);
    for (start_t, resume_t) in [(1, 4), (4, 1), (4, 4)] {
        let (outcome, resumes) = interrupted_at_every_view(
            &data,
            &query,
            Parallelism::fixed(start_t),
            Parallelism::fixed(resume_t),
        );
        assert!(resumes > 0, "the session never suspended");
        assert_eq!(
            transcript_text(&outcome),
            want,
            "transcript diverged (start {start_t} threads, resume {resume_t} threads, \
             {resumes} resumes)"
        );
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(&reference.probabilities),
            bits(&outcome.probabilities),
            "probabilities not bit-identical (start {start_t}, resume {resume_t})"
        );
        assert_eq!(reference.neighbors, outcome.neighbors);
    }
}

#[test]
fn snapshots_of_identical_sessions_are_identical_text() {
    let points = cloud(SERIAL_CUTOFF + 42, 6, 0x5EED);
    let query = points[0].clone();
    let snap = |threads: usize| {
        let (mut engine, mut step) = SessionEngine::start(
            config(Parallelism::fixed(threads)),
            &DatasetHandle::new(&points).expect("dataset"),
            &query,
        )
        .expect("start");
        let mut user = HeuristicUser::default();
        // Advance three views in, then serialize.
        for _ in 0..3 {
            let req = match &step {
                Step::NeedResponse(req) => req.clone(),
                Step::Done(_) => panic!("session too short for the fixture"),
            };
            let r = user.respond(req.profile(), req.context());
            step = engine.submit(r).expect("submit");
        }
        engine.snapshot().expect("snapshot").to_string()
    };
    // Same session, different thread budgets: the serialized state is the
    // same text, byte for byte (parallelism is excluded from the config
    // fingerprint precisely because it cannot affect state).
    assert_eq!(snap(1), snap(4));
}
