//! Integration tests for reproducibility (seeded determinism across the
//! whole pipeline) and dataset I/O round-trips.

use hinn::core::{DatasetHandle, InteractiveSearch, ProjectionMode, SearchConfig};
use hinn::data::csv::{load_csv, save_csv};
use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::user::HeuristicUser;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_once(seed: u64) -> (Vec<usize>, Vec<f64>) {
    let spec = ProjectedClusterSpec {
        n_points: 600,
        dim: 8,
        n_clusters: 2,
        cluster_dim: 4,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(
        SearchConfig::default()
            .with_support(15)
            .with_mode(ProjectionMode::AxisParallel),
    )
    .run_with(
        &DatasetHandle::new(&data.points).expect("dataset"),
        &query,
        &mut user,
        hinn::core::RunOptions::default(),
    )
    .expect("interactive session")
    .into_outcome();
    (outcome.neighbors, outcome.probabilities)
}

#[test]
fn whole_pipeline_is_deterministic_under_a_seed() {
    let (n1, p1) = run_once(42);
    let (n2, p2) = run_once(42);
    assert_eq!(n1, n2, "neighbor ranking must be reproducible");
    assert_eq!(p1, p2, "probabilities must be reproducible");
}

#[test]
fn different_seeds_differ() {
    let (_, p1) = run_once(42);
    let (_, p2) = run_once(43);
    assert_ne!(p1, p2, "different data must give different probabilities");
}

#[test]
fn dataset_roundtrips_through_csv_and_search_agrees() {
    let spec = ProjectedClusterSpec {
        n_points: 300,
        dim: 6,
        n_clusters: 2,
        cluster_dim: 3,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(77);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);

    let mut path = std::env::temp_dir();
    path.push(format!("hinn_it_roundtrip_{}.csv", std::process::id()));
    save_csv(&data, &path).expect("save");
    let loaded = load_csv("reloaded", &path).expect("load");
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.points, data.points);
    assert_eq!(loaded.labels, data.labels);

    // Identical data → identical search outcome.
    let query = data.points[data.cluster_members(0)[0]].clone();
    let config = SearchConfig {
        max_major_iterations: 1,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(10)
    };
    let mut u1 = HeuristicUser::default();
    let r1 = InteractiveSearch::new(config.clone())
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut u1,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    let mut u2 = HeuristicUser::default();
    let r2 = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&loaded.points).expect("dataset"),
            &query,
            &mut u2,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    assert_eq!(r1.neighbors, r2.neighbors);
}
