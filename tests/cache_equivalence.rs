//! Cache equivalence: the session-level memoization caches must never
//! change a single bit of any search result.
//!
//! The caches (`hinn-cache` via `hinn_core::SessionCache`) memoize exact
//! outputs of pure functions keyed by the full input bits, so a hit
//! returns the same bytes a fresh computation would produce. These tests
//! pin that contract at the integration level, comparing complete
//! sessions via `f64::to_bits`:
//!
//! - **disabled vs cold vs warm**: a run with caching off, a first run on
//!   a fresh cache, and repeated runs on the warmed cache all agree, for
//!   every thread budget in {1, 4} and LRU capacities {0, 2, default}
//!   (capacity 0 exercises the silent-bypass path, capacity 2 forces
//!   evictions mid-session);
//! - **telemetry determinism**: traced runs at different thread budgets
//!   produce identical counter maps — including the `cache.hit` /
//!   `cache.miss` / `cache.evict` counters, because cache probes happen
//!   on the driver thread in deterministic order;
//! - **cache activity**: warm runs actually hit, disabled runs never
//!   touch the cache, and a tiny capacity actually evicts.

use hinn::core::{
    CachePolicy, DatasetHandle, InteractiveSearch, Parallelism, SearchConfig, SearchOutcome,
    SessionCache,
};
use hinn::obs::TelemetryReport;
use hinn::par::SERIAL_CUTOFF;
use hinn::user::{ScriptedUser, UserResponse};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Thread budgets under test (pinned, independent of the environment).
const BUDGETS: [usize; 2] = [1, 4];

/// Serialize the tests in this binary: the `hinn-obs` facade is a global,
/// and the traced runs here must not overlap each other's counters.
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Deterministic xorshift point cloud (same generator as the PR 1 and
/// PR 2 equivalence harnesses).
fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
        .collect()
}

fn bits_of(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Fixed response script: the user's behavior is pinned, so any
/// divergence must come from the caching layer.
fn script() -> ScriptedUser {
    ScriptedUser::new([
        UserResponse::Threshold(1e-7),
        UserResponse::Discard,
        UserResponse::Threshold(5e-7),
    ])
    .with_fallback(UserResponse::Threshold(1e-7))
}

fn config(par: Parallelism) -> SearchConfig {
    // Default Arbitrary projection mode so the PCA/eigen path (and its
    // projection/coords/gamma cache keys) is exercised too.
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default()
            .with_support(25)
            .with_parallelism(par)
    }
}

fn workload() -> Vec<Vec<f64>> {
    cloud(SERIAL_CUTOFF + 130, 6, 0xCAC4E)
}

/// Run once on `engine`'s own (possibly shared) cache, untraced.
fn run_with(engine: &InteractiveSearch, points: &[Vec<f64>]) -> SearchOutcome {
    let mut user = script();
    engine
        .run_with(
            &DatasetHandle::new(points).expect("dataset"),
            &points[0],
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome()
}

fn run_traced_with(
    engine: &InteractiveSearch,
    points: &[Vec<f64>],
) -> (SearchOutcome, TelemetryReport) {
    let mut user = script();
    let out = engine
        .run_with(
            &DatasetHandle::new(points).expect("dataset"),
            &points[0],
            &mut user,
            hinn::core::RunOptions::traced(),
        )
        .expect("interactive session");
    let telemetry = out.telemetry.clone().expect("traced run yields telemetry");
    (out.into_outcome(), telemetry)
}

/// Bit-level outcome comparison (the same discipline as the PR 1/PR 2
/// equivalence suites): neighbor sets, probabilities, and the numeric
/// transcript fields all compared via `to_bits`.
fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome, label: &str) {
    assert_eq!(a.neighbors, b.neighbors, "{label}: neighbor sets differ");
    assert_eq!(a.majors_run, b.majors_run, "{label}: majors_run differs");
    assert_eq!(
        bits_of(&a.probabilities),
        bits_of(&b.probabilities),
        "{label}: probabilities not bit-identical"
    );
    assert_eq!(
        a.transcript.majors.len(),
        b.transcript.majors.len(),
        "{label}: major count differs"
    );
    for (ma, mb) in a.transcript.majors.iter().zip(&b.transcript.majors) {
        assert_eq!(ma.n_points_before, mb.n_points_before, "{label}");
        assert_eq!(ma.n_points_after, mb.n_points_after, "{label}");
        assert_eq!(
            ma.overlap_with_previous, mb.overlap_with_previous,
            "{label}"
        );
        assert_eq!(ma.minors.len(), mb.minors.len(), "{label}: minor count");
        for (ra, rb) in ma.minors.iter().zip(&mb.minors) {
            assert_eq!(ra.n_picked, rb.n_picked, "{label}: n_picked differs");
            assert_eq!(ra.response, rb.response, "{label}: response differs");
            assert_eq!(
                ra.query_peak_ratio.to_bits(),
                rb.query_peak_ratio.to_bits(),
                "{label}: query_peak_ratio not bit-identical"
            );
            assert_eq!(
                bits_of(&ra.variance_ratios),
                bits_of(&rb.variance_ratios),
                "{label}: variance_ratios not bit-identical"
            );
        }
    }
    // Degradation events replay identically from a projection cache hit.
    let da: Vec<_> = a
        .transcript
        .degradations
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    let db: Vec<_> = b
        .transcript
        .degradations
        .iter()
        .map(|e| format!("{e:?}"))
        .collect();
    assert_eq!(da, db, "{label}: degradation logs differ");
}

/// The tentpole acceptance claim: disabled vs cold vs warm (twice), for
/// every thread budget × LRU capacity, bit-for-bit identical sessions.
#[test]
fn cold_warm_and_disabled_sessions_bit_identical() {
    let _guard = exclusive();
    let points = workload();
    for t in BUDGETS {
        let par = Parallelism::fixed(t);
        let baseline = run_with(
            &InteractiveSearch::new(config(par).without_cache()),
            &points,
        );
        for (cap_label, policy) in [
            ("capacity 0", CachePolicy::with_uniform_capacity(0)),
            ("capacity 2", CachePolicy::with_uniform_capacity(2)),
            ("default capacity", CachePolicy::default()),
        ] {
            let engine = InteractiveSearch::new(config(par).with_cache_policy(policy));
            let cold = run_with(&engine, &points);
            assert_outcomes_bit_identical(
                &baseline,
                &cold,
                &format!("{t} threads, {cap_label}, cold"),
            );
            // Two more sessions on the now-warm shared cache.
            for round in 1..=2 {
                let warm = run_with(&engine, &points);
                assert_outcomes_bit_identical(
                    &baseline,
                    &warm,
                    &format!("{t} threads, {cap_label}, warm round {round}"),
                );
            }
        }
    }
}

/// A pre-warmed cache handed to a *different* engine (the batch-serving
/// topology: one cache, many sessions) changes nothing either.
#[test]
fn shared_cache_across_engines_is_transparent() {
    let _guard = exclusive();
    let points = workload();
    let par = Parallelism::fixed(4);
    let baseline = run_with(&InteractiveSearch::new(config(par)), &points);

    let warmer = InteractiveSearch::new(config(par));
    let _ = run_with(&warmer, &points);
    let shared: Arc<SessionCache> = warmer.session_cache().clone();
    assert!(!shared.is_empty(), "warm-up must have populated the cache");

    let served = InteractiveSearch::new(config(par)).with_session_cache(shared);
    let warm = run_with(&served, &points);
    assert_outcomes_bit_identical(&baseline, &warm, "pre-warmed cache, fresh engine");
}

/// Traced sessions at different thread budgets produce *identical*
/// counter maps — the `cache.*` counters included, because every cache
/// probe happens on the driver thread in deterministic order.
#[test]
fn telemetry_counters_identical_across_budgets_including_cache() {
    let _guard = exclusive();
    let points = workload();
    let mut reference: Option<(TelemetryReport, TelemetryReport)> = None;
    for t in BUDGETS {
        let engine = InteractiveSearch::new(config(Parallelism::fixed(t)));
        let (_, cold) = run_traced_with(&engine, &points);
        let (_, warm) = run_traced_with(&engine, &points);
        match &reference {
            None => reference = Some((cold, warm)),
            Some((ref_cold, ref_warm)) => {
                // The `par.*` counters describe the scheduler (chunk and
                // worker bookkeeping) and legitimately vary with the
                // budget; every algorithmic counter — `cache.*` included —
                // must agree exactly.
                for (label, got, want) in [("cold", &cold, ref_cold), ("warm", &warm, ref_warm)] {
                    let strip = |r: &TelemetryReport| {
                        let mut c = r.counters.clone();
                        c.retain(|name, _| !name.starts_with("par."));
                        c
                    };
                    assert_eq!(
                        strip(got),
                        strip(want),
                        "{label} counters differ between budgets 1 and {t}"
                    );
                }
            }
        }
    }
}

/// Cache activity is observable and matches the warmth of the run:
/// disabled runs never touch the cache, warm runs hit more than cold
/// ones, and a tiny capacity evicts.
#[test]
fn cache_counters_reflect_run_warmth() {
    let _guard = exclusive();
    let points = workload();
    let par = Parallelism::fixed(4);

    let disabled = InteractiveSearch::new(config(par).without_cache());
    let (_, off) = run_traced_with(&disabled, &points);
    assert_eq!(
        off.cache_stats().lookups(),
        0,
        "disabled run probed the cache"
    );
    assert_eq!(off.counter("cache.evict"), 0);

    let engine = InteractiveSearch::new(config(par));
    let (_, cold) = run_traced_with(&engine, &points);
    // Even a cold session shares work: the support restarts of every
    // minor iteration reuse the coords/γ caches populated moments before.
    assert!(cold.cache_stats().misses > 0, "cold run never missed?");
    let (_, warm) = run_traced_with(&engine, &points);
    // The warm session is served entirely from the cache: each minor
    // iteration's projection probe hits, so the nested coords/γ/profile
    // computations (and their probes) never run — hits > 0, misses == 0.
    assert!(warm.cache_stats().hits > 0, "warm run never hit the cache");
    assert_eq!(
        warm.cache_stats().misses,
        0,
        "warm run recomputed something (cold {:?}, warm {:?})",
        cold.cache_stats(),
        warm.cache_stats()
    );

    let tiny = InteractiveSearch::new(
        config(par).with_cache_policy(CachePolicy::with_uniform_capacity(2)),
    );
    let (_, squeezed) = run_traced_with(&tiny, &points);
    assert!(
        squeezed.counter("cache.evict") > 0,
        "capacity 2 should evict on this workload:\n{}",
        squeezed.to_text()
    );
}
