//! Integration tests pitting the interactive system against the automated
//! baselines on workloads where the paper predicts a specific ordering.

use hinn::baselines::{knn_indices, projected_knn, Metric, ProjectedNnConfig};
use hinn::core::{DatasetHandle, InteractiveSearch, ProjectionMode, SearchConfig};
use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::metrics::{relative_contrast, PrecisionRecall};
use hinn::user::HeuristicUser;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload() -> (hinn::data::Dataset, Vec<usize>, Vec<f64>) {
    let spec = ProjectedClusterSpec {
        n_points: 1500,
        dim: 16,
        n_clusters: 4,
        cluster_dim: 5,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(7);
    let (mut data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let members = data.cluster_members(0);
    let query = data.points[members[0]].clone();
    // Make the query external (remove its own row) so distance statistics
    // like relative contrast are well-defined (min distance > 0).
    data.points.remove(members[0]);
    data.labels.remove(members[0]);
    let members = data.cluster_members(0);
    (data, members, query)
}

#[test]
fn interactive_beats_full_dimensional_l2_on_subspace_clusters() {
    let (data, members, query) = workload();
    let k = members.len();

    let l2 = knn_indices(&data.points, &query, k, Metric::L2);
    let l2_pr = PrecisionRecall::compute(&l2, &members);

    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(
        SearchConfig::default()
            .with_support(25)
            .with_mode(ProjectionMode::AxisParallel),
    )
    .run_with(
        &DatasetHandle::new(&data.points).expect("dataset"),
        &query,
        &mut user,
        hinn::core::RunOptions::default(),
    )
    .expect("interactive session")
    .into_outcome();
    let set = outcome
        .natural_neighbors()
        .unwrap_or_else(|| outcome.neighbors.clone());
    let inter_pr = PrecisionRecall::compute(&set, &members);

    assert!(
        inter_pr.f1() > l2_pr.f1() + 0.1,
        "interactive F1 {:.2} should clearly beat full-dim L2 {:.2}",
        inter_pr.f1(),
        l2_pr.f1()
    );
}

#[test]
fn projected_nn_sits_between_l2_and_interactive() {
    // The paper positions [15] as the automated middle ground: better than
    // full-dimensional L2 (it finds one discriminating projection), weaker
    // than the multi-projection interactive process.
    let (data, members, query) = workload();
    let k = members.len();

    let l2_hits = knn_indices(&data.points, &query, k, Metric::L2)
        .iter()
        .filter(|i| members.contains(i))
        .count();
    let pnn = projected_knn(
        &data.points,
        &query,
        k,
        &ProjectedNnConfig {
            support: 40,
            proj_dim: 5,
            refine_iters: 3,
        },
    );
    let pnn_hits = pnn.neighbors.iter().filter(|i| members.contains(i)).count();
    assert!(
        pnn_hits > l2_hits,
        "projected NN ({pnn_hits}) should beat full-dim L2 ({l2_hits})"
    );
}

#[test]
fn contrast_is_restored_inside_the_discovered_projection() {
    // §1's stability argument: the full-dimensional distance distribution
    // has low relative contrast, while the projection the interactive
    // system shows the user has much higher contrast around the query.
    let (data, members, query) = workload();
    let full_contrast = relative_contrast(&data.points, &query);

    let mut user = HeuristicUser::default();
    let config = SearchConfig {
        max_major_iterations: 1,
        min_major_iterations: 1,
        record_profiles: true,
        ..SearchConfig::default()
            .with_support(25)
            .with_mode(ProjectionMode::AxisParallel)
    };
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    // Contrast in the first (best-graded) projection, restricted to the
    // query cluster vs everything: distance from the query to all points in
    // the 2-d view.
    let first = &outcome.transcript.majors[0].minors[0];
    let profile = first.profile.as_ref().expect("recorded");
    let proj_points: Vec<Vec<f64>> = profile.points.iter().map(|p| p.to_vec()).collect();
    let proj_contrast = relative_contrast(&proj_points, profile.query.as_ref());

    assert!(
        proj_contrast > 2.0 * full_contrast,
        "projection should restore contrast: {proj_contrast:.2} vs full-dim {full_contrast:.2}"
    );
    let _ = members;
}
