//! Serving-layer soak: hundreds of interleaved sessions squeezed through
//! a small hot tier.
//!
//! 512 sessions are opened and driven in a deterministically-random
//! interleaving with at most 64 concurrently open, while the manager is
//! allowed only 24 resident engines — so sessions constantly bounce
//! between the hot and warm tiers. The test asserts the serving layer's
//! three promises:
//!
//! 1. **bounded residency** — the hot tier never exceeds its cap and the
//!    warm tier never exceeds its LRU capacity, at every step;
//! 2. **transparent restore** — sessions complete through arbitrary
//!    evict/resume cycles, and sessions asking the same query finish with
//!    bit-identical outcomes no matter how they were interleaved;
//! 3. **typed loss** — when the warm tier is too small, losing a session
//!    is a `SessionEvicted` error at its next submit, never a panic or a
//!    wrong answer.
//!
//! The thread budget comes from `HINN_THREADS` (the CI matrix runs 1
//! and 4). Set `HINN_OBS_EXPORT_SOAK=/path/to.json` to export the soak's
//! full telemetry report (the CI `serve` job uploads it as an artifact).

use hinn::obs::SessionRecorder;
use hinn::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const TOTAL_SESSIONS: usize = 512;
const WINDOW: usize = 64;
const MAX_RESIDENT: usize = 24;
const DISTINCT_QUERIES: usize = 8;

/// Deterministic xorshift stream driving the interleaving choices.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// 8-D planted cluster plus background noise.
fn planted() -> Vec<Vec<f64>> {
    let mut rng = XorShift(0xDA3E39CB94B95BDB);
    let unif = |rng: &mut XorShift| (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
    let d = 8;
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for _ in 0..30 {
        pts.push(
            (0..d)
                .map(|_| 50.0 + (unif(&mut rng) - 0.5) * 2.0)
                .collect(),
        );
    }
    for _ in 0..170 {
        pts.push((0..d).map(|_| unif(&mut rng) * 100.0).collect());
    }
    pts
}

fn search_config() -> SearchConfig {
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(20)
    }
}

/// Queries cycled across sessions: near-cluster points perturbed per
/// query index, so the soak exercises distinct-but-related sessions and
/// the shared cache earns cross-session hits.
fn queries(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    (0..DISTINCT_QUERIES)
        .map(|i| {
            let mut q = points[i].clone();
            for x in &mut q {
                *x += i as f64 * 0.125;
            }
            q
        })
        .collect()
}

/// One in-flight session: its manager id, its simulated human, which
/// query it asks, and the view it is currently looking at.
struct Live {
    id: SessionId,
    user: HeuristicUser,
    query_idx: usize,
    view: hinn::serve::ViewRequest,
}

/// A bit-exact summary of an outcome, for cross-session comparison.
fn outcome_bits(o: &SearchOutcome) -> (Vec<usize>, Vec<u64>, usize) {
    (
        o.neighbors.clone(),
        o.probabilities.iter().map(|p| p.to_bits()).collect(),
        o.majors_run,
    )
}

#[test]
fn soak_512_interleaved_sessions_through_a_tiny_hot_tier() {
    let recorder = Arc::new(SessionRecorder::new());
    let _guard = hinn::obs::install(recorder.clone());

    let points = Arc::new(planted());
    let qs = queries(&points);
    let config = ServeConfig::new(search_config())
        .with_max_resident(MAX_RESIDENT)
        .with_warm_capacity(TOTAL_SESSIONS)
        .with_max_sessions(WINDOW);
    let data = DatasetHandle::new(&points).expect("dataset");
    let manager = SessionManager::new(config, data).expect("manager");

    let mut rng = XorShift(0x5EED_CAFE_F00D);
    let mut live: Vec<Live> = Vec::new();
    let mut opened = 0usize;
    let mut finished = 0usize;
    let mut outcomes: HashMap<usize, (Vec<usize>, Vec<u64>, usize)> = HashMap::new();

    while finished < TOTAL_SESSIONS {
        // Interleave: usually step a random live session; top up the
        // window when below it (always when empty).
        let can_open = opened < TOTAL_SESSIONS && live.len() < WINDOW;
        let open_now = can_open && (live.is_empty() || rng.below(4) == 0);
        if open_now {
            let query_idx = opened % DISTINCT_QUERIES;
            let (id, step) = manager.open(&qs[query_idx]).expect("open");
            opened += 1;
            match step {
                Step::NeedResponse(view) => live.push(Live {
                    id,
                    user: HeuristicUser::default(),
                    query_idx,
                    view,
                }),
                Step::Done(_) => panic!("the planted workload never finishes in zero views"),
            }
        } else {
            let slot = rng.below(live.len());
            // Occasionally force-suspend a *different* random session, so
            // explicit disconnects mix with LRU pressure.
            if live.len() > 1 && rng.below(16) == 0 {
                let other = &live[rng.below(live.len())];
                manager.suspend(other.id).expect("suspend");
            }
            let s = &mut live[slot];
            let response = s.user.respond(s.view.profile(), s.view.context());
            match manager.submit(s.id, response).expect("submit") {
                Step::NeedResponse(view) => s.view = view,
                Step::Done(outcome) => {
                    let bits = outcome_bits(&outcome);
                    match outcomes.get(&s.query_idx) {
                        None => {
                            outcomes.insert(s.query_idx, bits);
                        }
                        Some(want) => assert_eq!(
                            want, &bits,
                            "same query, different outcome (query {}) — interleaving or \
                             evict/resume leaked into results",
                            s.query_idx
                        ),
                    }
                    live.swap_remove(slot);
                    finished += 1;
                }
            }
        }
        // Bounded residency, at every single step.
        assert!(
            manager.hot_len() <= MAX_RESIDENT,
            "hot tier exceeded its cap: {}",
            manager.hot_len()
        );
        assert!(
            manager.warm_len() <= TOTAL_SESSIONS,
            "warm tier exceeded its capacity"
        );
        assert!(manager.live_sessions() <= WINDOW, "admission bound broken");
    }

    assert_eq!(opened, TOTAL_SESSIONS);
    assert_eq!(finished, TOTAL_SESSIONS);
    assert_eq!(manager.live_sessions(), 0, "every session left the table");
    assert_eq!(
        outcomes.len(),
        DISTINCT_QUERIES,
        "every query produced an outcome"
    );

    let report = recorder.report();
    assert_eq!(report.counter("session.opened"), TOTAL_SESSIONS as u64);
    assert_eq!(report.counter("session.finished"), TOTAL_SESSIONS as u64);
    assert!(
        report.counter("session.evicted") > 0,
        "the soak never exercised eviction — hot cap too generous?"
    );
    assert!(
        report.counter("session.resumed") > 0,
        "the soak never exercised warm restore"
    );
    assert_eq!(
        report.counter("session.dropped"),
        0,
        "no session may be lost when the warm tier fits everyone"
    );

    // Latency percentiles (ISSUE 7): every submit and every snapshot
    // serialize/restore feeds the quantile sketch, so the soak report
    // carries a full tail-latency story, ordered p50 ≤ p90 ≤ p99 ≤ max.
    for name in [
        "session.submit_ms",
        "snapshot.serialize_ms",
        "snapshot.restore_ms",
    ] {
        let hist = report
            .histograms
            .get(name)
            .unwrap_or_else(|| panic!("histogram {name:?} missing from the soak report"));
        assert!(hist.count > 0, "{name}: no observations");
        let (p50, p90, p99) = (hist.p50(), hist.p90(), hist.p99());
        assert!(
            p50 <= p90 && p90 <= p99 && p99 <= hist.max,
            "{name}: percentiles out of order (p50 {p50}, p90 {p90}, p99 {p99}, max {})",
            hist.max
        );
    }
    assert_eq!(
        Some(report.histograms["session.submit_ms"].count),
        report.find_span("session.step").map(|s| s.count),
        "every submit span must have fed the latency sketch"
    );

    if let Some(path) = std::env::var_os("HINN_OBS_EXPORT_SOAK") {
        std::fs::write(&path, report.to_json()).expect("write HINN_OBS_EXPORT_SOAK JSON");
    }
}

/// With a warm tier far too small for the load, sessions *are* lost — but
/// each loss is a typed, latched `SessionEvicted` error, and the sessions
/// that survive still finish correctly.
#[test]
fn warm_overflow_loses_sessions_loudly_not_wrongly() {
    let points = Arc::new(planted());
    let qs = queries(&points);
    let config = ServeConfig::new(search_config())
        .with_max_resident(2)
        .with_warm_capacity(4)
        .with_max_sessions(64);
    let data = DatasetHandle::new(&points).expect("dataset");
    let manager = SessionManager::new(config, data).expect("manager");

    // Open 32 sessions up front: 2 stay hot, 4 warm, 26 silently fall off
    // the warm LRU (to be discovered lazily).
    let mut sessions: Vec<(SessionId, HeuristicUser, usize)> = (0..32)
        .map(|i| {
            let query_idx = i % DISTINCT_QUERIES;
            let (id, _step) = manager.open(&qs[query_idx]).expect("open");
            (id, HeuristicUser::default(), query_idx)
        })
        .collect();
    assert!(manager.hot_len() <= 2);
    assert!(manager.warm_len() <= 4);

    let mut completed = 0usize;
    let mut evicted = 0usize;
    let mut reference: HashMap<usize, (Vec<usize>, Vec<u64>, usize)> = HashMap::new();
    // Drive the survivors round-robin; the rest must fail loudly.
    while let Some((id, mut user, query_idx)) = sessions.pop() {
        let view = match manager.pending_view(id) {
            Ok(view) => view,
            Err(ServeError::SessionEvicted(e)) => {
                assert_eq!(e, id);
                // Latched: the next probe reports the same loss.
                match manager.submit(id, UserResponse::Discard) {
                    Err(ServeError::SessionEvicted(e2)) => assert_eq!(e2, id),
                    other => panic!("eviction not latched: {other:?}"),
                }
                evicted += 1;
                continue;
            }
            Err(e) => panic!("unexpected serve error: {e}"),
        };
        let mut step = Step::NeedResponse(view);
        let outcome = loop {
            match step {
                Step::Done(outcome) => break *outcome,
                Step::NeedResponse(req) => {
                    let r = user.respond(req.profile(), req.context());
                    step = manager.submit(id, r).expect("driving a hot session");
                }
            }
        };
        let bits = outcome_bits(&outcome);
        match reference.get(&query_idx) {
            None => {
                reference.insert(query_idx, bits);
            }
            Some(want) => assert_eq!(want, &bits, "survivor outcome diverged"),
        }
        completed += 1;
    }
    assert_eq!(completed + evicted, 32, "every session was accounted for");
    assert!(evicted > 0, "the overflow fixture lost nobody");
    assert!(completed >= 6, "hot + warm sessions must all survive");
}
