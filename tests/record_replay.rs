//! Integration test: a recorded interactive session replays to the exact
//! same outcome — the audit/regression feature of `hinn::user::recording`.

use hinn::core::{InteractiveSearch, ProjectionMode, SearchConfig};
use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::user::{session_from_string, session_to_string, HeuristicUser, RecordingUser};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn recorded_session_replays_identically() {
    let spec = ProjectedClusterSpec {
        n_points: 600,
        dim: 8,
        n_clusters: 2,
        cluster_dim: 4,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();
    let config = SearchConfig::default()
        .with_support(15)
        .with_mode(ProjectionMode::AxisParallel);

    // Live session with a recorder around the simulated human.
    let mut recorder = RecordingUser::new(HeuristicUser::default());
    let live = InteractiveSearch::new(config.clone()).run(&data.points, &query, &mut recorder);
    let (_, log) = recorder.into_parts();
    assert_eq!(log.len(), live.transcript.total_views());

    // Serialize → parse → replay.
    let text = session_to_string(&log);
    let mut replay = session_from_string(&text).expect("parse recorded session");
    let replayed = InteractiveSearch::new(config).run(&data.points, &query, &mut replay);

    assert_eq!(replayed.neighbors, live.neighbors);
    assert_eq!(replayed.probabilities, live.probabilities);
    assert_eq!(replayed.majors_run, live.majors_run);
    assert_eq!(
        replayed.diagnosis.is_meaningful(),
        live.diagnosis.is_meaningful()
    );
    // Per-view picks agree too.
    for (a, b) in live
        .transcript
        .iter_minors()
        .zip(replayed.transcript.iter_minors())
    {
        assert_eq!(a.n_picked, b.n_picked);
        assert_eq!(a.response, b.response);
    }
}
