//! Integration test: a recorded interactive session replays to the exact
//! same outcome — the audit/regression feature of `hinn::user::recording`.
//!
//! Also pins that the session-level memoization caches are transparent to
//! the audit trail: replaying a recorded session against a **pre-warmed**
//! cache (the batch-serving topology) yields the same outcome and a
//! byte-identical re-recorded session file.

use hinn::core::{DatasetHandle, InteractiveSearch, ProjectionMode, SearchConfig};
use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::user::{session_from_string, session_to_string, HeuristicUser, RecordingUser};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn recorded_session_replays_identically() {
    let spec = ProjectedClusterSpec {
        n_points: 600,
        dim: 8,
        n_clusters: 2,
        cluster_dim: 4,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();
    let config = SearchConfig::default()
        .with_support(15)
        .with_mode(ProjectionMode::AxisParallel);

    // Live session with a recorder around the simulated human.
    let mut recorder = RecordingUser::new(HeuristicUser::default());
    let live = InteractiveSearch::new(config.clone())
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut recorder,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    let (_, log) = recorder.into_parts();
    assert_eq!(log.len(), live.transcript.total_views());

    // Serialize → parse → replay.
    let text = session_to_string(&log);
    let mut replay = session_from_string(&text).expect("parse recorded session");
    let replayed = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut replay,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();

    assert_eq!(replayed.neighbors, live.neighbors);
    assert_eq!(replayed.probabilities, live.probabilities);
    assert_eq!(replayed.majors_run, live.majors_run);
    assert_eq!(
        replayed.diagnosis.is_meaningful(),
        live.diagnosis.is_meaningful()
    );
    // Per-view picks agree too.
    for (a, b) in live
        .transcript
        .iter_minors()
        .zip(replayed.transcript.iter_minors())
    {
        assert_eq!(a.n_picked, b.n_picked);
        assert_eq!(a.response, b.response);
    }
}

#[test]
fn replay_against_prewarmed_cache_is_byte_stable() {
    let spec = ProjectedClusterSpec {
        n_points: 600,
        dim: 8,
        n_clusters: 2,
        cluster_dim: 4,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(21);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();
    let config = SearchConfig::default()
        .with_support(15)
        .with_mode(ProjectionMode::AxisParallel);

    // Record a live session on a cold engine (caching on by default).
    let engine = InteractiveSearch::new(config.clone());
    let mut recorder = RecordingUser::new(HeuristicUser::default());
    let live = engine
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut recorder,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    let (_, log) = recorder.into_parts();
    let text = session_to_string(&log);

    // Replay the recorded session on a *fresh* engine sharing the warmed
    // cache, re-recording as we go. The cache must neither change the
    // outcome nor perturb a single byte of the audit trail.
    let replay = session_from_string(&text).expect("parse recorded session");
    let served = InteractiveSearch::new(config).with_session_cache(engine.session_cache().clone());
    let mut re_recorder = RecordingUser::new(replay);
    let replayed = served
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut re_recorder,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    let (_, re_log) = re_recorder.into_parts();

    assert_eq!(replayed.neighbors, live.neighbors);
    assert_eq!(
        live.probabilities
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>(),
        replayed
            .probabilities
            .iter()
            .map(|p| p.to_bits())
            .collect::<Vec<_>>(),
        "probabilities not bit-identical under the warmed cache"
    );
    assert_eq!(replayed.majors_run, live.majors_run);
    assert_eq!(
        session_to_string(&re_log),
        text,
        "re-recorded session file must be byte-identical under the cache"
    );
}
