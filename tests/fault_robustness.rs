//! Robustness sweep over pathological geometry — no fault plans, just
//! hostile data. The contract under test:
//!
//! 1. `InteractiveSearch::try_run` is *panic-free*: every input either
//!    completes or returns a typed [`HinnError`].
//! 2. Whatever it does is deterministic across thread budgets: the
//!    outcome (bits of every probability) or the error is identical for
//!    1 and 4 threads.
//!
//! The pathologies named by the failure model: constant dimensions,
//! all-duplicate point sets, fewer points than the support, fewer points
//! than dimensions, and near-singular (collinear) clusters.

use hinn::core::{
    DatasetHandle, HinnError, InteractiveSearch, Parallelism, ProjectionMode, SearchConfig,
    SearchOutcome,
};
use hinn::user::{ScriptedUser, UserResponse};
use proptest::prelude::*;
use std::time::Duration;

fn unif(state: &mut u64) -> f64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministically build one of the five named pathologies.
fn pathological_points(kind: usize, d: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    match kind % 5 {
        // Constant dimensions: the odd axes carry no information at all.
        0 => (0..n)
            .map(|_| {
                (0..d)
                    .map(|j| {
                        if j % 2 == 1 {
                            3.25
                        } else {
                            unif(&mut state) * 10.0
                        }
                    })
                    .collect()
            })
            .collect(),
        // All-duplicate points: zero spread in every direction.
        1 => {
            let p: Vec<f64> = (0..d).map(|_| unif(&mut state) * 10.0).collect();
            vec![p; n]
        }
        // Fewer points than the support (the caller's support is ≥ 8).
        2 => (0..3)
            .map(|_| (0..d).map(|_| unif(&mut state) * 10.0).collect())
            .collect(),
        // Fewer points than dimensions: covariance rank-deficient by
        // construction.
        3 => {
            let d = d.max(4);
            (0..d - 1)
                .map(|_| (0..d).map(|_| unif(&mut state) * 10.0).collect())
                .collect()
        }
        // Near-singular cluster: collinear up to ~1e-9 jitter.
        _ => {
            let dir: Vec<f64> = (0..d).map(|_| unif(&mut state) * 2.0 - 1.0).collect();
            (0..n)
                .map(|_| {
                    let t = unif(&mut state) * 100.0;
                    dir.iter()
                        .map(|v| t * v + (unif(&mut state) - 0.5) * 1e-9)
                        .collect()
                })
                .collect()
        }
    }
}

fn responses(seed: u64, len: usize) -> Vec<UserResponse> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            if unif(&mut state) < 0.4 {
                UserResponse::Discard
            } else {
                UserResponse::Threshold(unif(&mut state) * 10.0 + 1e-6)
            }
        })
        .collect()
}

fn try_session(
    points: &[Vec<f64>],
    query: &[f64],
    mode: ProjectionMode,
    support: usize,
    threads: usize,
    rsp: &[UserResponse],
) -> Result<SearchOutcome, HinnError> {
    let config = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        grid_n: 16,
        projection_mode: mode,
        ..SearchConfig::default()
            .with_support(support)
            .with_parallelism(Parallelism::fixed(threads))
    };
    let mut user = ScriptedUser::new(rsp.to_vec());
    InteractiveSearch::try_new(config)?
        .run_with(
            &DatasetHandle::new(points).expect("dataset"),
            query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .map(hinn::core::RunOutput::into_outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn try_run_is_panic_free_and_budget_deterministic(
        kind in 0usize..5,
        d in 2usize..8,
        n in 4usize..40,
        seed in 1u64..1_000_000,
        support in 8usize..25,
        mode_axis in proptest::bool::ANY,
        qidx in 0usize..64,
    ) {
        let points = pathological_points(kind, d, n, seed);
        let query = points[qidx % points.len()].clone();
        let mode = if mode_axis {
            ProjectionMode::AxisParallel
        } else {
            ProjectionMode::Arbitrary
        };
        let rsp = responses(seed, 24);

        // Contract 1: no panic — reaching the match below proves it for
        // this input; a typed error is an acceptable outcome.
        let narrow = try_session(&points, &query, mode, support, 1, &rsp);
        let wide = try_session(&points, &query, mode, support, 4, &rsp);

        // Contract 2: bit-level determinism across thread budgets.
        match (narrow, wide) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.neighbors, &b.neighbors);
                prop_assert_eq!(a.majors_run, b.majors_run);
                for (pa, pb) in a.probabilities.iter().zip(&b.probabilities) {
                    prop_assert_eq!(pa.to_bits(), pb.to_bits());
                }
                prop_assert_eq!(
                    a.degradations().len(),
                    b.degradations().len(),
                    "the ladder itself must be deterministic"
                );
                // Structural sanity on the pathological outcome.
                prop_assert_eq!(a.probabilities.len(), points.len());
                for p in &a.probabilities {
                    prop_assert!((0.0..=1.0).contains(p), "P out of range: {}", p);
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "budgets disagree on success: 1 thread → {:?}, 4 threads → {:?}",
                a.map(|o| o.neighbors.len()),
                b.map(|o| o.neighbors.len())
            ),
        }
    }
}

#[test]
fn expired_wall_clock_deadline_is_a_typed_error() {
    // A real (un-faulted) deadline: a 1 ns budget has always expired by
    // the first minor-iteration checkpoint.
    let points = pathological_points(0, 6, 60, 7);
    let query = points[0].clone();
    let config = SearchConfig::default()
        .with_support(10)
        .with_deadline(Duration::from_nanos(1));
    let mut user = ScriptedUser::new(responses(7, 12));
    let err = InteractiveSearch::try_new(config)
        .expect("valid config")
        .run_with(
            &DatasetHandle::new(&points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .map(hinn::core::RunOutput::into_outcome)
        .expect_err("a 1 ns deadline cannot be met");
    match err {
        HinnError::Deadline {
            phase,
            elapsed,
            budget,
        } => {
            assert_eq!(phase, "search.minor");
            assert!(elapsed > budget);
            assert_eq!(budget, Duration::from_nanos(1));
        }
        other => panic!("expected Deadline, got {other:?}"),
    }
}
