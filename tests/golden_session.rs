//! Golden end-to-end regression test.
//!
//! One fixed scenario — planted projected clusters, a deterministic
//! heuristic user, the default config — rendered to a text snapshot that
//! lives in the repo (`tests/golden/session.txt`). Any change to the
//! numeric pipeline (projection search, KDE, preference counts,
//! meaningfulness probabilities, diagnosis) shows up as a readable diff
//! against the snapshot rather than a silent behavior drift.
//!
//! Probabilities are printed with 12 significant digits: tight enough to
//! catch real changes, loose enough to survive last-ULP differences in
//! `libm` across platforms. To regenerate after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_session
//! ```

use hinn::core::{
    CandidateSource, DatasetHandle, InteractiveSearch, ProjectionMode, SearchConfig,
    SearchDiagnosis,
};
use hinn::data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn::user::HeuristicUser;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name)
}

/// Render the fixed scenario to its snapshot text. `candidates` selects
/// the session's candidate source ([`CandidateSource::Full`] reproduces
/// the original snapshot; the HNSW variant pins the seeded-subset path).
fn render_session(label: &str, candidates: CandidateSource) -> String {
    let spec = ProjectedClusterSpec {
        n_points: 600,
        dim: 8,
        n_clusters: 2,
        cluster_dim: 4,
        ..ProjectedClusterSpec::small_test()
    };
    let mut rng = StdRng::seed_from_u64(1);
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();

    let config = SearchConfig::default()
        .with_support(20)
        .with_mode(ProjectionMode::AxisParallel)
        .with_candidate_source(candidates);
    let mut user = HeuristicUser::default();
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario: projected-clusters n=600 d=8 seed=1 candidates={label}"
    );
    // Format diagnosis fields at 12 significant digits ourselves; `{:?}`
    // would print full-precision floats and break the ULP tolerance.
    match &outcome.diagnosis {
        SearchDiagnosis::Meaningful {
            natural_k,
            gap,
            top_mean,
        } => {
            let _ = writeln!(
                out,
                "diagnosis: meaningful natural_k={natural_k} gap={gap:.12e} top_mean={top_mean:.12e}"
            );
        }
        SearchDiagnosis::NotMeaningful { best_gap, reason } => {
            let _ = writeln!(
                out,
                "diagnosis: not-meaningful best_gap={best_gap:.12e} reason={reason:?}"
            );
        }
    }
    let _ = writeln!(out, "majors_run: {}", outcome.majors_run);
    let _ = writeln!(out, "effective_support: {}", outcome.effective_support);
    let _ = writeln!(out, "neighbors: {:?}", outcome.neighbors);
    for (m, major) in outcome.transcript.majors.iter().enumerate() {
        let _ = writeln!(
            out,
            "major {m}: before={} after={} overlap={:?}",
            major.n_points_before, major.n_points_after, major.overlap_with_previous
        );
        for minor in &major.minors {
            let _ = writeln!(
                out,
                "  minor {}: picked={} dismissed={} peak_ratio={:.12e}",
                minor.minor,
                minor.n_picked,
                minor.dismissed(),
                minor.query_peak_ratio
            );
        }
    }
    let _ = writeln!(out, "top probabilities:");
    for &i in &outcome.neighbors {
        let _ = writeln!(out, "  {:4}  {:.12e}", i, outcome.probabilities[i]);
    }
    out
}

fn assert_matches_golden(rendered: &str, name: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, rendered).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test golden_session`",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "session output drifted from the golden snapshot; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn session_matches_golden_snapshot() {
    let rendered = render_session("full", CandidateSource::Full);
    assert_matches_golden(&rendered, "session.txt");
}

/// The same scenario seeded through the deterministic HNSW source
/// (ISSUE 6 satellite 4): the session ranks only the graph's top-450
/// candidates, and that entire trajectory is pinned to its own snapshot.
#[test]
fn hnsw_session_matches_golden_snapshot() {
    let rendered = render_session("hnsw-450", CandidateSource::hnsw(450));
    assert_matches_golden(&rendered, "session_hnsw.txt");
}

/// Environment variable directing `child_render_emit` to write its render.
const RENDER_OUT: &str = "HINN_GOLDEN_RENDER_OUT";

/// Hidden child half of the cross-backend test: inert unless the parent
/// set [`RENDER_OUT`]. Runs with whatever `HINN_SIMD` the parent pinned.
#[test]
fn child_render_emit() {
    let Some(path) = std::env::var_os(RENDER_OUT) else {
        return;
    };
    let rendered = render_session("full", CandidateSource::Full);
    std::fs::write(path, rendered).expect("write rendered session");
}

/// The `hinn_linalg::simd` kernel backend is chosen once per process, so
/// holding the f64 pipeline to "bit-identical on every backend" needs one
/// process per backend: spawn this test binary filtered to
/// `child_render_emit` under each `HINN_SIMD` value and require the full
/// session transcripts to be byte-equal — to each other *and* to the
/// committed golden snapshot, so a backend can't drift even in lockstep.
#[test]
fn session_bytes_identical_across_simd_backends() {
    let exe = std::env::current_exe().expect("test binary path");
    let dir = std::env::temp_dir().join(format!("hinn_golden_simd_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir render dir");

    let mut renders: Vec<(&str, String)> = Vec::new();
    for backend in ["scalar", "auto"] {
        let out = dir.join(format!("render_{backend}.txt"));
        let status = std::process::Command::new(&exe)
            .args(["child_render_emit", "--exact", "--test-threads", "1"])
            .env(RENDER_OUT, &out)
            .env(hinn::linalg::simd::SIMD_ENV, backend)
            .status()
            .expect("spawn child test process");
        assert!(status.success(), "child ({backend}) failed: {status}");
        renders.push((
            backend,
            std::fs::read_to_string(&out).expect("child render"),
        ));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let golden = std::fs::read_to_string(golden_path("session.txt")).expect("golden snapshot");
    for (backend, rendered) in &renders {
        assert_eq!(
            rendered, &golden,
            "HINN_SIMD={backend}: session bytes differ from the golden snapshot"
        );
    }
}
