//! Determinism of the HNSW candidate path (ISSUE 6 satellite 1).
//!
//! `hinn-index` promises that a fixed seed yields an *identical* graph —
//! and therefore identical candidate lists and identical sessions — no
//! matter the thread budget or the process. These tests pin that promise
//! at three levels, mirroring `parallel_equivalence.rs`:
//!
//! 1. graph + answers: repeat builds are structurally identical (digest)
//!    and answer queries identically;
//! 2. sessions: complete interactive sessions seeded by
//!    `CandidateSource::Hnsw` render byte-equal transcripts across thread
//!    budgets {1, 2, 4, 7};
//! 3. processes: a child process building the same graph reports the same
//!    structural digest.

mod common;

use common::recall::uniform_cloud;
use hinn::core::{
    CandidateSource, DatasetHandle, InteractiveSearch, Parallelism, SearchConfig, SearchOutcome,
};
use hinn::index::{Hnsw, HnswParams};
use hinn::par::SERIAL_CUTOFF;
use hinn::user::{ScriptedUser, UserResponse};
use std::fmt::Write as _;

/// Thread budgets under test (ISSUE 6: one worker, even split, odd split).
const BUDGETS: [usize; 4] = [1, 2, 4, 7];

/// Fixture shared by the in-process and cross-process graph tests.
fn graph_fixture() -> (Vec<Vec<f64>>, HnswParams) {
    let points = uniform_cloud(1200, 8, 0x1DE5);
    let params = HnswParams::default().with_seed(0xFEED);
    (points, params)
}

#[test]
fn hnsw_candidates_identical_across_thread_budgets() {
    let (points, params) = graph_fixture();
    let graph = Hnsw::build(points.clone(), params);
    let digest = graph.digest();
    let baseline: Vec<Vec<usize>> = [0, 311, 1199]
        .iter()
        .map(|&qi| graph.knn(&points[qi], 25))
        .collect();
    // The graph walk is a pure sequential function — the surrounding
    // pipeline's thread budget cannot touch it. Rebuild + requery under
    // every budget's environment to pin that this stays true end to end.
    for t in BUDGETS {
        let _par = Parallelism::fixed(t); // the budget sessions would use
        let again = Hnsw::build(points.clone(), params);
        assert_eq!(again.digest(), digest, "graph differs at budget {t}");
        for (i, &qi) in [0, 311, 1199].iter().enumerate() {
            assert_eq!(
                again.knn(&points[qi], 25),
                baseline[i],
                "candidates differ at budget {t}, query {qi}"
            );
        }
    }
}

/// Render every numeric field of an outcome through `to_bits`, so string
/// equality is bit equality.
fn render_outcome(outcome: &SearchOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "neighbors: {:?}", outcome.neighbors);
    let _ = writeln!(out, "majors_run: {}", outcome.majors_run);
    let _ = writeln!(out, "effective_support: {}", outcome.effective_support);
    let probs: Vec<u64> = outcome.probabilities.iter().map(|p| p.to_bits()).collect();
    let _ = writeln!(out, "probability_bits: {probs:?}");
    for (m, major) in outcome.transcript.majors.iter().enumerate() {
        let _ = writeln!(
            out,
            "major {m}: before={} after={} overlap={:?}",
            major.n_points_before, major.n_points_after, major.overlap_with_previous
        );
        for minor in &major.minors {
            let _ = writeln!(
                out,
                "  minor {}: picked={} peak_ratio_bits={}",
                minor.minor,
                minor.n_picked,
                minor.query_peak_ratio.to_bits()
            );
        }
    }
    out
}

fn hnsw_session(par: Parallelism, points: &[Vec<f64>]) -> SearchOutcome {
    let config = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default()
            .with_support(25)
            .with_parallelism(par)
            .with_candidate_source(CandidateSource::hnsw(160))
    };
    let mut user = ScriptedUser::new([
        UserResponse::Threshold(1e-7),
        UserResponse::Discard,
        UserResponse::Threshold(5e-7),
    ])
    .with_fallback(UserResponse::Threshold(1e-7));
    InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(points).expect("dataset"),
            &points[0],
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome()
}

/// ISSUE 6 acceptance: full sessions seeded through the HNSW source are
/// byte-equal across every thread budget.
#[test]
fn hnsw_sessions_byte_equal_across_thread_budgets() {
    let points = uniform_cloud(SERIAL_CUTOFF + 130, 6, 0xD00D);
    let serial = render_outcome(&hnsw_session(Parallelism::serial(), &points));
    assert!(
        serial.contains("probability_bits"),
        "render sanity: {serial}"
    );
    for t in BUDGETS {
        let budget = render_outcome(&hnsw_session(Parallelism::fixed(t), &points));
        assert_eq!(
            serial.as_bytes(),
            budget.as_bytes(),
            "HNSW session transcript differs at {t} threads"
        );
    }
}

/// The seeded session really is a *subset* session: every reported
/// neighbor must come from the seeded candidate set.
#[test]
fn hnsw_session_neighbors_come_from_the_seeded_set() {
    let points = uniform_cloud(SERIAL_CUTOFF + 130, 6, 0xD00D);
    let seeded = CandidateSource::hnsw(160).top_k(Parallelism::serial(), &points, &points[0], 160);
    let outcome = hnsw_session(Parallelism::serial(), &points);
    assert!(!outcome.neighbors.is_empty());
    for nb in &outcome.neighbors {
        assert!(
            seeded.contains(nb),
            "neighbor {nb} not in the seeded candidate set"
        );
    }
}

/// Environment variable directing `child_digest_emit` to write its digest.
const DIGEST_OUT: &str = "HINN_INDEX_DIGEST_OUT";

/// Hidden child half of the cross-process test: inert unless the parent
/// set [`DIGEST_OUT`].
#[test]
fn child_digest_emit() {
    let Some(path) = std::env::var_os(DIGEST_OUT) else {
        return;
    };
    let (points, params) = graph_fixture();
    let digest = Hnsw::build(points, params).digest();
    std::fs::write(path, format!("{:032x}", digest.0)).expect("write digest file");
}

/// ISSUE 6: same seed, different process ⇒ same graph. Spawns this test
/// binary filtered to `child_digest_emit` and compares structural digests.
#[test]
fn hnsw_digest_identical_across_processes() {
    let (points, params) = graph_fixture();
    let local = format!("{:032x}", Hnsw::build(points, params).digest().0);

    let exe = std::env::current_exe().expect("test binary path");
    let dir = std::env::temp_dir().join(format!("hinn_index_digest_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir digest dir");
    let out = dir.join("digest.txt");
    let status = std::process::Command::new(exe)
        .args(["child_digest_emit", "--exact", "--test-threads", "1"])
        .env(DIGEST_OUT, &out)
        .status()
        .expect("spawn child test process");
    assert!(status.success(), "child process failed: {status}");
    let remote = std::fs::read_to_string(&out).expect("child digest file");
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(
        local,
        remote.trim(),
        "graph digest differs across processes"
    );
}
