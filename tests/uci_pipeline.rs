//! Integration test of the UCI-style pipeline: simulated dataset →
//! scaling → interactive search → classification, plus the real-file
//! parser path.

use hinn::baselines::{knn_classify, Metric};
use hinn::core::{DatasetHandle, InteractiveSearch, SearchConfig};
use hinn::data::scaling::FeatureScaler;
use hinn::data::uci::{class_subspace_dataset, ClassSpec};
use hinn::data::uci_load::parse_ionosphere;
use hinn::metrics::majority_label;
use hinn::user::HeuristicUser;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_uci_like() -> hinn::data::Dataset {
    let spec = ClassSpec {
        name: "mini-uci".into(),
        class_sizes: vec![120, 80],
        dim: 12,
        signal_dims: 4,
        subclusters: 2,
        signal_sigma: 0.4,
        sigma_spread: 1.0,
        range: 10.0,
        scatter_fraction: 0.05,
    };
    let mut rng = StdRng::seed_from_u64(8);
    class_subspace_dataset(&spec, &mut rng)
}

#[test]
fn interactive_classification_works_on_uci_like_data() {
    let ds = small_uci_like();
    let mut correct = 0;
    let queries = [0usize, 30, 60, 130, 170];
    for &q in &queries {
        let mut user = HeuristicUser::default();
        let outcome = InteractiveSearch::new(SearchConfig::default().with_support(15))
            .run_with(
                &DatasetHandle::new(&ds.points).expect("dataset"),
                &ds.points[q],
                &mut user,
                hinn::core::RunOptions::default(),
            )
            .expect("interactive session")
            .into_outcome();
        let set = outcome
            .natural_neighbors()
            .unwrap_or_else(|| outcome.neighbors.clone());
        let labels: Vec<Option<usize>> = set
            .iter()
            .filter(|&&i| i != q)
            .map(|&i| ds.labels[i])
            .collect();
        if majority_label(&labels) == ds.labels[q] {
            correct += 1;
        }
    }
    assert!(
        correct >= 3,
        "interactive classification should get most queries: {correct}/5"
    );
}

#[test]
fn scaling_preserves_search_structure() {
    // Scale every attribute wildly differently, then undo with a min-max
    // scaler: the search must find the same neighborhoods it would have
    // found on the unscaled data.
    let ds = small_uci_like();
    let mut warped = ds.clone();
    for p in warped.points.iter_mut() {
        for (j, v) in p.iter_mut().enumerate() {
            *v = *v * (10.0_f64.powi(j as i32 % 5)) + j as f64 * 1000.0;
        }
    }
    let scaler = FeatureScaler::min_max(&warped, 10.0);
    let rescaled = scaler.apply_dataset(&warped);

    let q = 10usize;
    let run = |data: &hinn::data::Dataset, query: &[f64]| {
        let mut user = HeuristicUser::default();
        let config = SearchConfig {
            max_major_iterations: 1,
            min_major_iterations: 1,
            ..SearchConfig::default().with_support(15)
        };
        InteractiveSearch::new(config)
            .run_with(
                &DatasetHandle::new(&data.points).expect("dataset"),
                query,
                &mut user,
                hinn::core::RunOptions::default(),
            )
            .expect("interactive session")
            .into_outcome()
            .neighbors
    };
    let original = run(&ds, &ds.points[q].clone());
    let recovered = run(&rescaled, &rescaled.points[q].clone());
    // Not bit-identical (min-max vs original coordinates differ slightly in
    // aspect), but the neighbor sets must overlap heavily.
    let overlap =
        original.iter().filter(|i| recovered.contains(i)).count() as f64 / original.len() as f64;
    assert!(
        overlap >= 0.6,
        "scaled search should find mostly the same neighbors: {overlap:.2}"
    );
    // The warped data *without* rescaling is dominated by the offset dims —
    // full-dim k-NN there disagrees with the original badly more often than
    // the rescaled search does. (Sanity anchor for why scaling exists.)
    let l2_warped = knn_classify(
        &warped.points,
        &warped.labels,
        &warped.points[q],
        5,
        Metric::L2,
        Some(q),
    );
    let _ = l2_warped; // smoke: runs without panicking on wild scales
}

#[test]
fn real_ionosphere_format_feeds_the_search() {
    // Synthesize a tiny file in the *real* UCI ionosphere format, parse it
    // with the real-file parser, and run a search on the result.
    let mut content = String::new();
    let mut state = 0xACEDu64;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..60 {
        let label = if i % 3 == 0 { 'b' } else { 'g' };
        let attrs: Vec<String> = (0..34)
            .map(|j| {
                // 'g' rows cluster in the first four attributes.
                let v = if label == 'g' && j < 4 {
                    0.8 + 0.05 * (unif() - 0.5)
                } else {
                    2.0 * unif() - 1.0
                };
                format!("{v:.5}")
            })
            .collect();
        content.push_str(&attrs.join(","));
        content.push(',');
        content.push(label);
        content.push('\n');
    }
    let ds = parse_ionosphere(&content).expect("parse");
    assert_eq!(ds.len(), 60);
    assert_eq!(ds.dim(), 34);
    let q = ds.cluster_members(0)[0];
    let mut user = HeuristicUser::default();
    let config = SearchConfig {
        max_major_iterations: 1,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(10)
    };
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(&ds.points).expect("dataset"),
            &ds.points[q].clone(),
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();
    assert_eq!(outcome.probabilities.len(), 60);
}
