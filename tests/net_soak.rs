//! Wire soak: hundreds of concurrent client threads against one TCP
//! front-end, proving the network layer adds *zero* semantics.
//!
//! The test records reference sessions fully in-process (a
//! `HeuristicUser` driving a `SessionManager`, responses captured per
//! view), then replays those exact response scripts over the wire from
//! 200 concurrent client threads — twice, under engine thread budgets 1
//! and 4, first with a telemetry recorder installed and then without.
//! Assertions:
//!
//! * **bit identity** — every wire outcome (neighbor ids, probability
//!   bits, majors run) equals the in-process reference, for every
//!   session, thread budget, and recorder state;
//! * **bounded residency** — the hot tier never exceeds its cap plus the
//!   sessions pinned by in-flight submits (the manager's documented
//!   transient: pinned slots cannot be evicted mid-compute), sampled from
//!   the main thread while the fleet runs, and returns to ≤ cap at rest;
//! * **zero lost sessions** — every client gets `done`; refusal counters
//!   stay zero (shedding is disabled and quotas are generous, so any
//!   refusal would be a bug, not backpressure).
//!
//! Set `HINN_OBS_EXPORT_NET=/path/to.json` to export the recorded run's
//! telemetry report (the CI `net` job uploads it as an artifact).

use hinn::net::{NetClient, NetServer, NetServerConfig, RetryPolicy, ShedPolicy};
use hinn::obs::SessionRecorder;
use hinn::prelude::*;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The telemetry recorder is process-global; tests in this binary run on
/// parallel threads by default, so each takes this lock to keep an
/// uninstrumented test from polluting an instrumented one's counters.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

const CLIENT_THREADS: usize = 200;
const DISTINCT_QUERIES: usize = 8;
const MAX_RESIDENT: usize = 24;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The serve-soak fixture: 8-D planted cluster plus background noise.
fn planted() -> Vec<Vec<f64>> {
    let mut rng = XorShift(0xDA3E39CB94B95BDB);
    let unif = |rng: &mut XorShift| (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
    let d = 8;
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for _ in 0..30 {
        pts.push(
            (0..d)
                .map(|_| 50.0 + (unif(&mut rng) - 0.5) * 2.0)
                .collect(),
        );
    }
    for _ in 0..170 {
        pts.push((0..d).map(|_| unif(&mut rng) * 100.0).collect());
    }
    pts
}

fn search_config(threads: usize) -> SearchConfig {
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        parallelism: Parallelism::fixed(threads),
        ..SearchConfig::default().with_support(20)
    }
}

fn queries(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    (0..DISTINCT_QUERIES)
        .map(|i| {
            let mut q = points[i].clone();
            for x in &mut q {
                *x += i as f64 * 0.125;
            }
            q
        })
        .collect()
}

/// What the wire can carry of an outcome, bit-exactly.
type WireBits = (Vec<usize>, Vec<u64>, usize);

fn outcome_wire_bits(o: &SearchOutcome) -> WireBits {
    (
        o.neighbors.clone(),
        o.neighbors
            .iter()
            .map(|&i| o.probabilities[i].to_bits())
            .collect(),
        o.majors_run,
    )
}

/// Drive one in-process session, recording the response script and the
/// outcome bits — the ground truth the wire must reproduce.
fn record_reference(manager: &SessionManager, query: &[f64]) -> (Vec<UserResponse>, WireBits) {
    let mut user = HeuristicUser::default();
    let mut script = Vec::new();
    let (id, mut step) = manager.open(query).expect("reference open");
    loop {
        match step {
            Step::Done(outcome) => return (script, outcome_wire_bits(&outcome)),
            Step::NeedResponse(view) => {
                let response = user.respond(view.profile(), view.context());
                script.push(response.clone());
                step = manager.submit(id, response).expect("reference submit");
            }
        }
    }
}

/// One soak pass: serve `CLIENT_THREADS` sessions over TCP from that many
/// concurrent client threads, asserting every outcome against the
/// reference. Returns (sessions completed, peak hot tier observed).
fn run_wire_fleet(
    threads: usize,
    points: &Arc<Vec<Vec<f64>>>,
    scripts: &Arc<Vec<(Vec<UserResponse>, WireBits)>>,
    qs: &Arc<Vec<Vec<f64>>>,
) -> (usize, usize) {
    let serve = ServeConfig::new(search_config(threads))
        .with_max_resident(MAX_RESIDENT)
        .with_warm_capacity(CLIENT_THREADS + 8)
        .with_max_sessions(CLIENT_THREADS + 8);
    let config = NetServerConfig::new(serve)
        .with_max_connections(CLIENT_THREADS + 8)
        .with_tenant_quota(CLIENT_THREADS)
        .with_shed(ShedPolicy::disabled())
        .with_deadlines(Duration::from_secs(60), Duration::from_secs(60));
    let server =
        NetServer::bind(config, DatasetHandle::new(points).expect("dataset")).expect("bind");
    let addr = server.addr();

    let completed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|i| {
            let scripts = Arc::clone(scripts);
            let qs = Arc::clone(qs);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                let query_idx = i % DISTINCT_QUERIES;
                let (script, want) = &scripts[query_idx];
                let mut client = NetClient::new(addr)
                    .with_deadlines(Duration::from_secs(60), Duration::from_secs(60))
                    .with_retry(RetryPolicy {
                        max_attempts: 6,
                        base_backoff_ms: 5,
                    });
                // Tenants cycle so the governor tracks several names.
                let tenant = format!("tenant{}", i % 4);
                let done = client
                    .run_session(&tenant, &qs[query_idx], script)
                    .unwrap_or_else(|e| panic!("client {i}: {e}"));
                let got: WireBits = (
                    done.neighbors.clone(),
                    done.probabilities.iter().map(|p| p.to_bits()).collect(),
                    done.majors,
                );
                assert_eq!(
                    &got, want,
                    "client {i} (query {query_idx}): wire outcome diverged from in-process"
                );
                completed.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            })
        })
        .collect();

    // Sample bounded residency from the main thread while the fleet runs
    // (exit on all-threads-finished, so a panicking client can't hang the
    // sampler — the joins below surface its panic). The hot tier may
    // transiently exceed its cap by the sessions pinned by in-flight
    // submits (pinned slots are never evicted mid-compute), so the bound
    // is cap + unfinished clients — `completed` is read *before* the
    // tier, and only grows, so the bound is conservative.
    let mut peak_hot = 0usize;
    loop {
        let unfinished = CLIENT_THREADS
            - completed
                .load(std::sync::atomic::Ordering::SeqCst)
                .min(CLIENT_THREADS);
        let hot = server.manager().hot_len();
        peak_hot = peak_hot.max(hot);
        assert!(
            hot <= MAX_RESIDENT + unfinished,
            "hot tier exceeded cap + in-flight pins: {hot} > {MAX_RESIDENT} + {unfinished}"
        );
        if handles.iter().all(|h| h.is_finished()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    for h in handles {
        if let Err(panic) = h.join() {
            std::panic::resume_unwind(panic);
        }
    }
    // At rest — no submits in flight — the cap itself must hold.
    assert!(
        server.manager().hot_len() <= MAX_RESIDENT,
        "hot tier over its cap at rest: {}",
        server.manager().hot_len()
    );
    let report = server.shutdown();
    assert_eq!(report.flushed, 0, "finished sessions left nothing to flush");
    (
        completed.load(std::sync::atomic::Ordering::SeqCst),
        peak_hot,
    )
}

#[test]
fn wire_soak_bit_identical_to_in_process_across_thread_budgets() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let points = Arc::new(planted());
    let qs = Arc::new(queries(&points));

    // Ground truth, fully in-process (no recorder installed yet, so the
    // reference never pollutes the wire run's counters).
    let ref_manager = SessionManager::new(
        ServeConfig::new(search_config(1)).with_max_sessions(DISTINCT_QUERIES + 1),
        DatasetHandle::new(&points).expect("dataset"),
    )
    .expect("reference manager");
    let scripts: Arc<Vec<(Vec<UserResponse>, WireBits)>> = Arc::new(
        qs.iter()
            .map(|q| record_reference(&ref_manager, q))
            .collect(),
    );
    for (script, _) in scripts.iter() {
        assert!(!script.is_empty(), "reference session finished in 0 views");
    }

    // Pass 1 — engine threads: 1, recorder installed (counters audited).
    let recorder = Arc::new(SessionRecorder::new());
    let guard = hinn::obs::install(recorder.clone());
    let (completed, peak_hot) = run_wire_fleet(1, &points, &scripts, &qs);
    assert_eq!(completed, CLIENT_THREADS, "lost sessions in pass 1");
    assert!(peak_hot > 0, "residency sampling saw nothing");
    let report = recorder.report();
    drop(guard);
    assert_eq!(
        report.counter("session.opened"),
        CLIENT_THREADS as u64,
        "every wire open reached the manager exactly once"
    );
    assert_eq!(
        report.counter("session.finished"),
        CLIENT_THREADS as u64,
        "every wire session finished"
    );
    assert_eq!(report.counter("session.dropped"), 0, "zero lost sessions");
    assert_eq!(
        report.counter("net.parse_error") + report.counter("net.frame_error"),
        0,
        "healthy clients never produce wire errors"
    );
    assert_eq!(
        report.counter("net.refused.overload")
            + report.counter("net.refused.quota")
            + report.counter("net.refused.fairness")
            + report.counter("net.shed.l1")
            + report.counter("net.shed.l2")
            + report.counter("net.shed.l3"),
        0,
        "shedding disabled: any refusal or degradation is a bug"
    );
    assert!(
        report.counter("net.conn.accepted") >= CLIENT_THREADS as u64,
        "one connection per client thread"
    );
    assert!(
        report.counter("session.evicted") > 0,
        "200 in-flight sessions over 24 hot slots must bounce through the warm tier"
    );
    if let Some(path) = std::env::var_os("HINN_OBS_EXPORT_NET") {
        std::fs::write(&path, report.to_json()).expect("write HINN_OBS_EXPORT_NET JSON");
    }

    // Pass 2 — engine threads: 4, no recorder. Same bits required: the
    // thread budget and the recorder are both invisible to outcomes
    // served over the wire.
    let (completed, _) = run_wire_fleet(4, &points, &scripts, &qs);
    assert_eq!(completed, CLIENT_THREADS, "lost sessions in pass 2");
}

/// Sessions suspended over the wire survive the server's warm tier and
/// resume bit-identically — the reconnect story: open on one connection,
/// finish from another.
#[test]
fn wire_sessions_survive_suspend_and_reconnect() {
    let _exclusive = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
    let points = Arc::new(planted());
    let qs = queries(&points);

    let ref_manager = SessionManager::new(
        ServeConfig::new(search_config(1)).with_max_sessions(4),
        DatasetHandle::new(&points).expect("dataset"),
    )
    .expect("reference manager");
    let (script, want) = record_reference(&ref_manager, &qs[0]);
    assert!(script.len() >= 2, "fixture needs at least two views");

    let serve = ServeConfig::new(search_config(1))
        .with_max_resident(2)
        .with_warm_capacity(8)
        .with_max_sessions(8);
    let config = NetServerConfig::new(serve).with_shed(ShedPolicy::disabled());
    let server =
        NetServer::bind(config, DatasetHandle::new(&points).expect("dataset")).expect("bind");
    let addr = server.addr();

    let mut client = NetClient::new(addr);
    // Open and answer the first view.
    let reply = client
        .call_with_retry(&hinn::net::Request::Open {
            tenant: "roamer".to_string(),
            query: qs[0].clone(),
        })
        .expect("open");
    let hinn::net::Reply::View(view) = reply else {
        panic!("expected a view, got {reply:?}");
    };
    let session = view.session;
    let reply = client
        .call_with_retry(&hinn::net::Request::Submit {
            session,
            major: view.major,
            minor: view.minor,
            response: script[0].clone(),
        })
        .expect("submit");
    assert!(
        matches!(reply, hinn::net::Reply::View(_)),
        "a ≥2-view session must show another view after one answer"
    );
    // Politely suspend and drop the connection.
    let _ = client
        .call_with_retry(&hinn::net::Request::Suspend { session })
        .expect("suspend");
    drop(client);

    // A brand-new connection resumes exactly where the session left off.
    let mut client = NetClient::new(addr);
    let mut reply = client.view(session).expect("resync view");
    let mut next = 1usize;
    let done = loop {
        match reply {
            hinn::net::Reply::Done(done) => break done,
            hinn::net::Reply::View(view) => {
                let response = script
                    .get(next)
                    .unwrap_or_else(|| panic!("script dry at view {next}"))
                    .clone();
                next += 1;
                reply = client
                    .call_with_retry(&hinn::net::Request::Submit {
                        session: view.session,
                        major: view.major,
                        minor: view.minor,
                        response,
                    })
                    .expect("submit after reconnect");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    };
    let got: WireBits = (
        done.neighbors.clone(),
        done.probabilities.iter().map(|p| p.to_bits()).collect(),
        done.majors,
    );
    assert_eq!(got, want, "suspend/reconnect changed the outcome");
    // The suspended-then-finished session left a clean table.
    let report = server.shutdown();
    assert_eq!(report.flushed, 0);
}
