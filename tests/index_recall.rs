//! Recall of the HNSW candidate source (ISSUE 6 satellite 2).
//!
//! The sublinear graph earns its keep only if it finds what the exact
//! baseline finds: recall@10 ≥ 0.9 on the seeded fixtures — Gaussian
//! mixtures (the clustered regime the paper's workloads model) and
//! uniform clouds (the worst case, no structure to navigate) at N=10k,
//! d ∈ {16, 64}. The exact sources double as harness self-checks (their
//! recall is 1.0 by construction), and a proptest sweep pins the
//! poisoned-point policy: a NaN-bitmap point never appears in any answer.

mod common;

use common::recall::{gaussian_mixture, mean_recall, spread_queries, uniform_cloud};
use hinn::core::CandidateSource;
use hinn::index::{Hnsw, HnswParams};

/// Queries per fixture: enough to average out per-query variance while
/// keeping the debug-profile tier-1 run fast.
const N_QUERIES: usize = 25;
const N: usize = 10_000;
const K: usize = 10;

fn assert_recall_at_least(points: Vec<Vec<f64>>, floor: f64, label: &str) {
    let queries = spread_queries(points.len(), N_QUERIES);
    // Lighter build than the default (the tier-1 suite runs this in the
    // debug profile); the wider search list keeps recall comfortably
    // above the floor.
    let params = HnswParams::default()
        .with_m(12)
        .with_ef_construction(60)
        .with_ef_search(200);
    let source = CandidateSource::Hnsw { params, budget: K };
    let recall = mean_recall(&source, &points, &queries, K);
    assert!(
        recall >= floor,
        "{label}: HNSW recall@{K} = {recall:.3} < {floor}"
    );
}

#[test]
fn recall_gaussian_mixture_d16() {
    assert_recall_at_least(
        gaussian_mixture(N, 16, 8, 4.0, 0xA5EED01),
        0.9,
        "gaussian d=16",
    );
}

#[test]
fn recall_gaussian_mixture_d64() {
    assert_recall_at_least(
        gaussian_mixture(N, 64, 8, 4.0, 0xA5EED02),
        0.9,
        "gaussian d=64",
    );
}

#[test]
fn recall_uniform_d16() {
    assert_recall_at_least(uniform_cloud(N, 16, 0xA5EED03), 0.9, "uniform d=16");
}

#[test]
fn recall_uniform_d64() {
    assert_recall_at_least(uniform_cloud(N, 64, 0xA5EED04), 0.9, "uniform d=64");
}

/// Harness self-check: the exact sources score a perfect 1.0 — if this
/// ever fails, the harness (not an index) is broken.
#[test]
fn exact_sources_score_perfect_recall() {
    let points = gaussian_mixture(2_000, 16, 4, 4.0, 0xA5EED05);
    let queries = spread_queries(points.len(), 10);
    for source in [
        CandidateSource::Linear { budget: K },
        CandidateSource::VaFile { bits: 4, budget: K },
    ] {
        let recall = mean_recall(&source, &points, &queries, K);
        assert_eq!(recall, 1.0, "{source:?} is exact by construction");
    }
}

mod poisoned {
    //! PR-3 poisoned-point policy, extended to the graph: points carrying
    //! a NaN coordinate are never linked and never returned, under
    //! arbitrary NaN placements.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn hnsw_never_returns_a_poisoned_point(
            seed in 0..u64::MAX,
            n_poisoned in 1..40usize,
            k in 1..30usize,
        ) {
            let n = 300;
            let d = 6;
            let mut points = uniform_cloud(n, d, seed | 1);
            // Deterministic scatter of NaN coordinates from the seed.
            let mut state = seed | 1;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as usize
            };
            let mut poisoned_ids = Vec::new();
            for _ in 0..n_poisoned {
                let i = next() % n;
                let j = next() % d;
                points[i][j] = f64::NAN;
                poisoned_ids.push(i);
            }
            let graph = Hnsw::build(points.clone(), HnswParams::default());
            for qi in [0, n / 2, n - 1] {
                if points[qi].iter().any(|v| v.is_nan()) {
                    continue;
                }
                let got = graph.knn(&points[qi], k);
                for id in &got {
                    prop_assert!(
                        !points[*id].iter().any(|v| v.is_nan()),
                        "poisoned point {id} returned for query {qi}"
                    );
                }
                // Healthy points remain findable around the poison.
                prop_assert!(!got.is_empty());
            }
        }
    }
}
