//! Wire-level fault drills: every injected fault yields a typed error or
//! a recorded degradation — never a panic, never a lost or corrupted
//! session.
//!
//! Faults come from the `hinn-fault` registry (`net.torn_frame`,
//! `net.disconnect`, `net.stall`) plus hand-crafted wire damage (bad
//! checksums, oversized headers) written straight onto the socket. The
//! server consults the *global* fault plan from its worker threads, so
//! every test here installs a plan — an empty one when it needs no faults
//! — which makes the `hinn-fault` install lock serialize the whole
//! binary (the documented pattern for multi-threaded fault drills; it
//! also keeps one test's faults out of another's server).
//!
//! The final drill honors `HINN_FAULTS` (the CI smoke): when set, the
//! env-specified plan replaces the default seeded chaos mix.

use hinn::fault::{FaultMode, FaultPlan};
use hinn::net::shed::ShedLevel;
use hinn::net::{
    read_frame, write_frame, NetClient, NetServer, NetServerConfig, Reply, Request, RetryPolicy,
    ShedPolicy, DEFAULT_MAX_FRAME,
};
use hinn::obs::SessionRecorder;
use hinn::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The serve-soak fixture: 8-D planted cluster plus background noise.
fn planted() -> Vec<Vec<f64>> {
    let mut rng = XorShift(0xDA3E39CB94B95BDB);
    let unif = |rng: &mut XorShift| (rng.next() >> 11) as f64 / (1u64 << 53) as f64;
    let d = 8;
    let mut pts: Vec<Vec<f64>> = Vec::new();
    for _ in 0..30 {
        pts.push(
            (0..d)
                .map(|_| 50.0 + (unif(&mut rng) - 0.5) * 2.0)
                .collect(),
        );
    }
    for _ in 0..170 {
        pts.push((0..d).map(|_| unif(&mut rng) * 100.0).collect());
    }
    pts
}

fn search_config() -> SearchConfig {
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default().with_support(20)
    }
}

type WireBits = (Vec<usize>, Vec<u64>, usize);

fn done_bits(done: &hinn::net::DoneSummary) -> WireBits {
    (
        done.neighbors.clone(),
        done.probabilities.iter().map(|p| p.to_bits()).collect(),
        done.majors,
    )
}

/// Drive one in-process session, returning the response script and the
/// wire-comparable outcome bits.
fn record_reference(points: &Arc<Vec<Vec<f64>>>, query: &[f64]) -> (Vec<UserResponse>, WireBits) {
    let manager = SessionManager::new(
        ServeConfig::new(search_config()).with_max_sessions(4),
        DatasetHandle::new(points).expect("dataset"),
    )
    .expect("reference manager");
    let mut user = HeuristicUser::default();
    let mut script = Vec::new();
    let (id, mut step) = manager.open(query).expect("reference open");
    loop {
        match step {
            Step::Done(outcome) => {
                let bits = (
                    outcome.neighbors.clone(),
                    outcome
                        .neighbors
                        .iter()
                        .map(|&i| outcome.probabilities[i].to_bits())
                        .collect(),
                    outcome.majors_run,
                );
                return (script, bits);
            }
            Step::NeedResponse(view) => {
                let response = user.respond(view.profile(), view.context());
                script.push(response.clone());
                step = manager.submit(id, response).expect("reference submit");
            }
        }
    }
}

fn bind(config: NetServerConfig, points: &Arc<Vec<Vec<f64>>>) -> hinn::net::ServerHandle {
    let data = DatasetHandle::new(points).expect("dataset");
    NetServer::bind(config, data).expect("bind")
}

fn default_server(points: &Arc<Vec<Vec<f64>>>) -> hinn::net::ServerHandle {
    bind(
        NetServerConfig::new(ServeConfig::new(search_config()).with_max_sessions(16))
            .with_shed(ShedPolicy::disabled()),
        points,
    )
}

/// A torn frame is a typed, *retryable* transport error: a `Once` tear is
/// transparently absorbed by the bounded retry, and a tear on every reply
/// exhausts the budget as the typed `RetriesExhausted` — never a hang.
#[test]
fn torn_frames_are_retried_and_retry_exhaustion_is_typed() {
    let points = Arc::new(planted());
    let query = points[0].clone();
    let (script, want) = record_reference(&points, &query);

    let plan = Arc::new(FaultPlan::new().with("net.torn_frame", FaultMode::Once));
    let guard = hinn::fault::install(plan.clone());
    let server = default_server(&points);
    let mut client = NetClient::new(server.addr());
    let done = client
        .run_session("torn", &query, &script)
        .expect("one torn frame must be absorbed by the retry budget");
    assert_eq!(
        done_bits(&done),
        want,
        "retry after a torn frame changed the outcome"
    );
    assert_eq!(
        plan.fired("net.torn_frame"),
        1,
        "the tear fired exactly once"
    );
    server.shutdown();
    drop(guard);

    // Now tear every *second* write — each request goes out clean, every
    // reply is torn. The bounded retry must exhaust with a typed error.
    let plan = Arc::new(FaultPlan::new().with("net.torn_frame", FaultMode::Nth(2)));
    let _guard = hinn::fault::install(plan.clone());
    let server = default_server(&points);
    let mut client = NetClient::new(server.addr()).with_retry(RetryPolicy {
        max_attempts: 3,
        base_backoff_ms: 1,
    });
    match client.ping() {
        Err(hinn::net::ClientError::RetriesExhausted { attempts, .. }) => {
            assert_eq!(attempts, 3);
        }
        other => panic!("expected typed retry exhaustion, got {other:?}"),
    }
    assert!(plan.fired("net.torn_frame") >= 3, "every reply was torn");
    server.shutdown();
}

/// The canonical mid-submit disconnect: the response is applied exactly
/// once (cursor guard), the session is flushed to the warm tier with a
/// postmortem, and the reconnecting client resyncs and finishes with the
/// bit-identical outcome.
#[test]
fn disconnect_mid_submit_applies_once_and_the_session_survives() {
    let points = Arc::new(planted());
    let query = points[0].clone();
    let (script, want) = record_reference(&points, &query);
    assert!(script.len() >= 2, "fixture needs a session with ≥ 2 views");

    let plan = Arc::new(FaultPlan::new().with("net.disconnect", FaultMode::Once));
    let _guard = hinn::fault::install(plan.clone());
    let server = default_server(&points);
    let mut client = NetClient::new(server.addr());
    let done = client
        .run_session("ghost", &query, &script)
        .expect("the disconnected submit must resync, not double-apply");
    assert_eq!(
        done_bits(&done),
        want,
        "a disconnect mid-submit corrupted the outcome"
    );
    assert_eq!(plan.fired("net.disconnect"), 1);
    let postmortems = server.manager().take_postmortems();
    assert!(
        postmortems
            .iter()
            .any(|p| p.reason.contains("disconnected mid-submit")),
        "the disconnect left no postmortem; got {:?}",
        postmortems.iter().map(|p| &p.reason).collect::<Vec<_>>()
    );
    server.shutdown();
}

/// A read stalling mid-frame past the socket deadline is an incident on
/// the last session served by that connection — and the session itself
/// survives in the warm tier and finishes bit-identically after the
/// client reconnects.
#[test]
fn stalled_reads_record_incidents_and_sessions_survive() {
    let points = Arc::new(planted());
    let query = points[0].clone();
    let (script, want) = record_reference(&points, &query);

    // Every 4th read stalls: by then the connection has served an open
    // and at least one submit, so `last_session` is set and the stall is
    // attributable.
    let plan = Arc::new(FaultPlan::new().with("net.stall", FaultMode::Nth(4)));
    let _guard = hinn::fault::install(plan.clone());
    let server = default_server(&points);
    let mut client = NetClient::new(server.addr()).with_retry(RetryPolicy {
        max_attempts: 6,
        base_backoff_ms: 1,
    });
    let done = client
        .run_session("slowpoke", &query, &script)
        .expect("stalls force reconnects, not failures");
    assert_eq!(done_bits(&done), want, "stall recovery changed the outcome");
    assert!(plan.fired("net.stall") >= 1, "the stall never fired");
    let postmortems = server.manager().take_postmortems();
    assert!(
        postmortems.iter().any(|p| p.reason.contains("stalled")),
        "no stall incident recorded; got {:?}",
        postmortems.iter().map(|p| &p.reason).collect::<Vec<_>>()
    );
    server.shutdown();
}

/// The shedding ladder: opens degrade L1 → L2 → L3 as occupancy climbs —
/// advertised on every view (`shed=`), counted in `net.shed.*`, and
/// recorded in the session's black box — and only past the last threshold
/// is an open refused, with a retry hint. Degraded sessions still finish.
#[test]
fn shed_ladder_degrades_before_refusing_and_records_every_rung() {
    let plan = Arc::new(FaultPlan::new());
    let _guard = hinn::fault::install(plan);
    let recorder = Arc::new(SessionRecorder::new());
    let obs_guard = hinn::obs::install(recorder.clone());

    let points = Arc::new(planted());
    let policy = ShedPolicy {
        l1_at: 0.25,
        l2_at: 0.50,
        l3_at: 0.75,
        refuse_at: 1.0,
    };
    let server = bind(
        NetServerConfig::new(ServeConfig::new(search_config()).with_max_sessions(4))
            .with_shed(policy),
        &points,
    );
    let mut client = NetClient::new(server.addr());

    // Four opens ride the ladder one rung at a time.
    let mut views = Vec::new();
    for i in 0..4 {
        let reply = client
            .call(&Request::Open {
                tenant: "t".to_string(),
                query: points[i].clone(),
            })
            .expect("open");
        match reply {
            Reply::View(view) => views.push(view),
            other => panic!("expected a view, got {other:?}"),
        }
    }
    let levels: Vec<u8> = views.iter().map(|v| v.shed).collect();
    assert_eq!(
        levels,
        vec![0, 1, 2, 3],
        "opens must climb the ladder in order"
    );
    assert_eq!(server.current_shed_level(), ShedLevel::Refuse);

    // The fifth open is the typed refusal with a retry hint.
    match client.call(&Request::Open {
        tenant: "t".to_string(),
        query: points[4].clone(),
    }) {
        Ok(Reply::Error(e)) => {
            assert_eq!(e.kind, hinn::net::ErrorKind::Overloaded);
            assert!(e.retry_after_ms.is_some(), "refusals carry a retry hint");
        }
        other => panic!("expected a typed overloaded refusal, got {other:?}"),
    }

    // The L3 session still completes (drive it with plain discards).
    let l3 = &views[3];
    let mut cursor = (l3.major, l3.minor);
    let session = l3.session;
    for round in 0.. {
        assert!(round < 100, "degraded session failed to terminate");
        let reply = client
            .call(&Request::Submit {
                session,
                major: cursor.0,
                minor: cursor.1,
                response: UserResponse::Discard,
            })
            .expect("submit");
        match reply {
            Reply::Done(done) => {
                assert!(!done.neighbors.is_empty() || done.majors >= 1);
                break;
            }
            Reply::View(view) => {
                assert_eq!(view.shed, 3, "degradation level sticks to the session");
                cursor = (view.major, view.minor);
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }

    // Every rung left its trace: counters and black-box postmortems.
    let report = recorder.report();
    drop(obs_guard);
    assert_eq!(report.counter("net.shed.l1"), 1);
    assert_eq!(report.counter("net.shed.l2"), 1);
    assert_eq!(report.counter("net.shed.l3"), 1);
    assert_eq!(report.counter("net.refused.overload"), 1);
    let postmortems = server.manager().take_postmortems();
    assert_eq!(
        postmortems
            .iter()
            .filter(|p| p.reason.contains("load shed"))
            .count(),
        3,
        "each degraded open freezes a load-shed record"
    );
    server.shutdown();
}

/// Per-tenant quotas and scarce-zone fairness both refuse with typed,
/// distinguishable replies (`quota` vs `overloaded` + fairness counter).
#[test]
fn quota_and_fairness_refusals_are_typed() {
    let plan = Arc::new(FaultPlan::new());
    let _guard = hinn::fault::install(plan);
    let recorder = Arc::new(SessionRecorder::new());
    let obs_guard = hinn::obs::install(recorder.clone());

    let points = Arc::new(planted());
    // Fairness wakes at 25% of 8 = 2 live sessions; only L1 sheds (a
    // degradation, not a refusal), so refusals here are purely
    // quota/fairness.
    let policy = ShedPolicy {
        l1_at: 0.25,
        l2_at: f64::INFINITY,
        l3_at: f64::INFINITY,
        refuse_at: f64::INFINITY,
    };
    let server = bind(
        NetServerConfig::new(ServeConfig::new(search_config()).with_max_sessions(8))
            .with_tenant_quota(4)
            .with_shed(policy),
        &points,
    );
    let mut client = NetClient::new(server.addr());
    let open = |client: &mut NetClient, tenant: &str, i: usize| {
        client
            .call(&Request::Open {
                tenant: tenant.to_string(),
                query: points[i].clone(),
            })
            .expect("call")
    };

    // Tenant a hoards 3 sessions; b takes 1.
    for i in 0..3 {
        assert!(matches!(open(&mut client, "a", i), Reply::View(_)));
    }
    assert!(matches!(open(&mut client, "b", 3), Reply::View(_)));

    // Scarce zone + a holds 3 > b's 1: a's next open is deferred for
    // fairness (typed overloaded with a hint — retryable backpressure).
    match open(&mut client, "a", 4) {
        Reply::Error(e) => {
            assert_eq!(e.kind, hinn::net::ErrorKind::Overloaded);
            assert!(e.message.contains("fairness"), "message: {}", e.message);
            assert!(e.retry_after_ms.is_some());
        }
        other => panic!("expected a fairness deferral, got {other:?}"),
    }

    // b may climb to its quota of 4 — then the quota refusal is typed
    // `quota`, not `overloaded`.
    for i in 4..7 {
        assert!(matches!(open(&mut client, "b", i), Reply::View(_)));
    }
    match open(&mut client, "b", 7) {
        Reply::Error(e) => {
            assert_eq!(e.kind, hinn::net::ErrorKind::QuotaExceeded);
            assert!(e.retry_after_ms.is_some());
        }
        other => panic!("expected a quota refusal, got {other:?}"),
    }

    let report = recorder.report();
    drop(obs_guard);
    assert_eq!(report.counter("net.refused.fairness"), 1);
    assert_eq!(report.counter("net.refused.quota"), 1);
    assert_eq!(report.counter("net.refused.overload"), 0);
    server.shutdown();
}

/// A checksum-corrupt frame gets the typed `frame` refusal and the
/// connection *survives* (the stream is still aligned); an oversized
/// header gets the typed refusal and then a close (it is not).
#[test]
fn corrupt_and_oversized_frames_are_refused_in_kind() {
    let plan = Arc::new(FaultPlan::new());
    let _guard = hinn::fault::install(plan);
    let points = Arc::new(planted());
    let server = default_server(&points);

    // Corrupt checksum, by hand, straight onto the socket.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("deadline");
    let payload = hinn::net::proto::render_request(&Request::Ping);
    let mut raw = Vec::new();
    raw.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    raw.extend_from_slice(&(hinn::net::frame::checksum(&payload) ^ 1).to_be_bytes());
    raw.extend_from_slice(&payload);
    stream.write_all(&raw).expect("write corrupt frame");
    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("typed reply");
    match hinn::net::proto::parse_reply(&reply).expect("parse") {
        Reply::Error(e) => assert_eq!(e.kind, hinn::net::ErrorKind::Frame),
        other => panic!("expected a frame refusal, got {other:?}"),
    }
    // Same connection, now a clean ping: the stream stayed aligned.
    write_frame(&mut stream, &payload, DEFAULT_MAX_FRAME).expect("write ping");
    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("read pong");
    assert!(matches!(
        hinn::net::proto::parse_reply(&reply).expect("parse"),
        Reply::Pong
    ));

    // Oversized declaration: typed refusal, then the connection closes.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("deadline");
    let mut raw = Vec::new();
    raw.extend_from_slice(&((DEFAULT_MAX_FRAME as u32) + 1).to_be_bytes());
    raw.extend_from_slice(&0u32.to_be_bytes());
    stream.write_all(&raw).expect("write oversized header");
    let reply = read_frame(&mut stream, DEFAULT_MAX_FRAME).expect("typed reply");
    match hinn::net::proto::parse_reply(&reply).expect("parse") {
        Reply::Error(e) => assert_eq!(e.kind, hinn::net::ErrorKind::Frame),
        other => panic!("expected a frame refusal, got {other:?}"),
    }
    match read_frame(&mut stream, DEFAULT_MAX_FRAME) {
        Err(hinn::net::FrameError::Closed) => {}
        other => panic!("a misaligned stream must close, got {other:?}"),
    }
    server.shutdown();
}

/// A duplicate submit (at-least-once delivery) is resynced with the
/// *current* view — applied at most once, no error, session completes.
#[test]
fn duplicate_submits_resync_instead_of_double_applying() {
    let plan = Arc::new(FaultPlan::new());
    let _guard = hinn::fault::install(plan);
    let points = Arc::new(planted());
    let query = points[0].clone();
    let (script, want) = record_reference(&points, &query);
    assert!(script.len() >= 2);

    let server = default_server(&points);
    let mut client = NetClient::new(server.addr());
    let Reply::View(v0) = client
        .call(&Request::Open {
            tenant: "dup".to_string(),
            query: query.clone(),
        })
        .expect("open")
    else {
        panic!("expected the first view")
    };
    let submit0 = Request::Submit {
        session: v0.session,
        major: v0.major,
        minor: v0.minor,
        response: script[0].clone(),
    };
    let Reply::View(v1) = client.call(&submit0).expect("submit") else {
        panic!("expected the second view")
    };
    // The duplicate: same cursor again. Nothing is applied; the reply is
    // the current pending view, bit-for-bit the one we already hold.
    let Reply::View(resync) = client.call(&submit0).expect("duplicate submit") else {
        panic!("expected a resync view")
    };
    assert_eq!((resync.major, resync.minor), (v1.major, v1.minor));
    assert_eq!(resync.session, v1.session);

    // Finish from the resynced cursor; the outcome is untouched.
    let mut reply = Reply::View(resync);
    let mut next = 1usize;
    let done = loop {
        match reply {
            Reply::Done(done) => break done,
            Reply::View(view) => {
                let response = script[next].clone();
                next += 1;
                reply = client
                    .call(&Request::Submit {
                        session: view.session,
                        major: view.major,
                        minor: view.minor,
                        response,
                    })
                    .expect("submit");
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    };
    assert_eq!(
        done_bits(&done),
        want,
        "the duplicate leaked into the outcome"
    );
    server.shutdown();
}

/// Graceful drain: live sessions are flushed to warm snapshots and the
/// accumulated incident postmortems are emitted and counted.
#[test]
fn graceful_drain_flushes_sessions_and_emits_postmortems() {
    let points = Arc::new(planted());
    let query = points[0].clone();
    let (script, _) = record_reference(&points, &query);

    let plan = Arc::new(FaultPlan::new().with("net.disconnect", FaultMode::Once));
    let _guard = hinn::fault::install(plan);
    let server = default_server(&points);

    // Session 1: its first submit hits the injected disconnect — applied,
    // suspended, postmortem recorded. (The postmortems stay with the
    // manager until the drain emits them.)
    let mut client = NetClient::new(server.addr());
    let Reply::View(view) = client
        .call_with_retry(&Request::Open {
            tenant: "drain".to_string(),
            query: query.clone(),
        })
        .expect("open")
    else {
        panic!("expected a view")
    };
    let _ = client.call_with_retry(&Request::Submit {
        session: view.session,
        major: view.major,
        minor: view.minor,
        response: script[0].clone(),
    });

    // Session 2: opened and left hot mid-flight.
    let mut idle = NetClient::new(server.addr());
    assert!(matches!(
        idle.call_with_retry(&Request::Open {
            tenant: "drain".to_string(),
            query: points[1].clone(),
        })
        .expect("open"),
        Reply::View(_)
    ));

    let report = server.shutdown();
    assert!(
        report.flushed >= 1,
        "the hot in-flight session must be flushed to a warm snapshot"
    );
    assert!(
        report.postmortems >= 1,
        "the drain must emit the disconnect postmortem"
    );
}

/// The `HINN_FAULTS` smoke: under a chaos mix of wire faults (or the
/// env-specified plan in CI), every client run ends in a bit-correct
/// outcome or a typed error — zero panics, and with the default mix the
/// outcomes that do complete are bit-identical to in-process runs.
#[test]
fn chaos_smoke_yields_typed_errors_only() {
    let points = Arc::new(planted());
    let query = points[0].clone();
    // Reference first: an env plan ("all") may also arm engine-level
    // faults, which would perturb an in-process run recorded under it.
    let (script, want) = record_reference(&points, &query);

    let env_plan = FaultPlan::from_env();
    let strict = env_plan.is_none();
    let plan = Arc::new(env_plan.unwrap_or_else(|| {
        FaultPlan::new()
            .with("net.torn_frame", FaultMode::Sometimes { p: 0.10, seed: 11 })
            .with("net.disconnect", FaultMode::Sometimes { p: 0.10, seed: 12 })
            .with("net.stall", FaultMode::Sometimes { p: 0.05, seed: 13 })
    }));
    let _guard = hinn::fault::install(plan);

    let server = bind(
        NetServerConfig::new(ServeConfig::new(search_config()).with_max_sessions(64))
            .with_shed(ShedPolicy::disabled())
            .with_tenant_quota(32),
        &points,
    );
    let addr = server.addr();
    let script = Arc::new(script);
    let want = Arc::new(want);
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let script = Arc::clone(&script);
            let want = Arc::clone(&want);
            let query = query.clone();
            std::thread::spawn(move || {
                let mut client = NetClient::new(addr).with_retry(RetryPolicy {
                    max_attempts: 8,
                    base_backoff_ms: 1,
                });
                match client.run_session(&format!("chaos{}", i % 3), &query, &script) {
                    Ok(done) => {
                        assert_eq!(
                            done_bits(&done),
                            *want,
                            "chaos client {i}: wire faults corrupted a completed session"
                        );
                        true
                    }
                    // Any error here is by construction a typed
                    // `ClientError`; reaching this arm *is* the assertion
                    // (a panic in client or server would fail the test).
                    Err(_) => false,
                }
            })
        })
        .collect();
    let mut completed = 0usize;
    for h in handles {
        match h.join() {
            Ok(finished) => completed += usize::from(finished),
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
    if strict {
        assert!(
            completed >= 6,
            "the default chaos mix should let most retrying clients finish ({completed}/12)"
        );
    }
    // The server survived the drills: it still drains cleanly, and every
    // incident it recorded is a structured postmortem.
    for p in server.manager().take_postmortems() {
        assert!(!p.reason.is_empty());
        assert!(p.to_json().starts_with('{'));
    }
    server.shutdown();
}
