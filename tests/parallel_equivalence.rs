//! Bit-exact equivalence of the parallel hot paths with their serial
//! counterparts.
//!
//! The `hinn-par` layer promises more than "statistically the same": every
//! `_with(par, ...)` entry point must produce **bit-identical** `f64`
//! output for every thread budget, because chunk boundaries are a function
//! of the input length alone and partial results fold in chunk order. These
//! tests pin that promise at the integration level — whole grids, whole
//! covariance matrices, whole k-NN answers, and complete interactive
//! sessions — across thread budgets {1, 2, 3, 7} including budgets that do
//! not divide the input size evenly.
//!
//! All inputs are sized above `hinn::par::SERIAL_CUTOFF` so worker threads
//! really spawn (below the cutoff the parallel path runs inline and the
//! test would be vacuous).

use hinn::baselines::{knn_indices, knn_indices_with, Metric, VaFile};
use hinn::core::{DatasetHandle, InteractiveSearch, Parallelism, SearchConfig, SearchOutcome};
use hinn::kde::{estimate_grid, estimate_grid_with, Bandwidth2D, GridSpec};
use hinn::linalg::{covariance_matrix, covariance_matrix_with};
use hinn::par::SERIAL_CUTOFF;
use hinn::user::{HeuristicUser, ScriptedUser, UserModel, UserResponse};

/// Thread budgets under test: one worker, even split, odd splits.
const BUDGETS: [usize; 4] = [1, 2, 3, 7];

/// Deterministic xorshift point cloud, `n` points in `d` dimensions.
fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
        .collect()
}

fn bits_of(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn kde_grid_is_bit_identical_across_budgets() {
    let pts2d: Vec<[f64; 2]> = cloud(SERIAL_CUTOFF + 611, 2, 0xA11CE)
        .into_iter()
        .map(|p| [p[0], p[1]])
        .collect();
    let spec = GridSpec::covering(&pts2d, &[], 0.05, 64);
    let bw = Bandwidth2D::silverman(&pts2d);
    let serial = estimate_grid(&pts2d, bw, spec);
    for t in BUDGETS {
        let par = estimate_grid_with(Parallelism::fixed(t), &pts2d, bw, spec);
        assert_eq!(
            bits_of(serial.values()),
            bits_of(par.values()),
            "KDE grid differs from serial at {t} threads"
        );
    }
}

#[test]
fn covariance_matrix_is_bit_identical_across_budgets() {
    let pts = cloud(SERIAL_CUTOFF + 237, 9, 0xB0B);
    let serial = covariance_matrix(&pts);
    for t in BUDGETS {
        let par = covariance_matrix_with(Parallelism::fixed(t), &pts);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(
                    serial[(i, j)].to_bits(),
                    par[(i, j)].to_bits(),
                    "covariance ({i},{j}) differs from serial at {t} threads"
                );
            }
        }
    }
}

#[test]
fn knn_indices_match_serial_across_budgets() {
    let pts = cloud(SERIAL_CUTOFF + 101, 6, 0xCAFE);
    let query = pts[17].clone();
    for metric in [Metric::L1, Metric::L2, Metric::LInf] {
        for k in [1, 10, 64] {
            let serial = knn_indices(&pts, &query, k, metric);
            for t in BUDGETS {
                let par = knn_indices_with(Parallelism::fixed(t), &pts, &query, k, metric);
                assert_eq!(
                    serial, par,
                    "knn (k={k}, {metric:?}) differs from serial at {t} threads"
                );
            }
        }
    }
}

#[test]
fn vafile_knn_matches_serial_across_budgets() {
    let pts = cloud(SERIAL_CUTOFF + 55, 8, 0xF11E);
    let query = pts[2026].clone();
    let index = VaFile::build(pts, 4);
    for k in [1, 12, 40] {
        let (serial_ids, serial_stats) = index.knn(&query, k);
        for t in BUDGETS {
            let (par_ids, par_stats) = index.knn_with(Parallelism::fixed(t), &query, k);
            assert_eq!(
                serial_ids, par_ids,
                "VA-file neighbors (k={k}) differ from serial at {t} threads"
            );
            assert_eq!(
                serial_stats, par_stats,
                "VA-file refine counts (k={k}) differ from serial at {t} threads"
            );
        }
    }
}

/// Run a complete interactive session under the given budget.
fn session(par: Parallelism, points: &[Vec<f64>], user: &mut dyn UserModel) -> SearchOutcome {
    let config = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default()
            .with_support(25)
            .with_parallelism(par)
    };
    InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(points).expect("dataset"),
            &points[0],
            user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome()
}

fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome, label: &str) {
    assert_eq!(a.neighbors, b.neighbors, "{label}: neighbor sets differ");
    assert_eq!(a.majors_run, b.majors_run, "{label}: majors_run differs");
    assert_eq!(
        bits_of(&a.probabilities),
        bits_of(&b.probabilities),
        "{label}: probabilities not bit-identical"
    );
    for (ma, mb) in a.transcript.majors.iter().zip(&b.transcript.majors) {
        assert_eq!(ma.n_points_before, mb.n_points_before, "{label}");
        assert_eq!(ma.n_points_after, mb.n_points_after, "{label}");
        for (ra, rb) in ma.minors.iter().zip(&mb.minors) {
            assert_eq!(ra.n_picked, rb.n_picked, "{label}: n_picked differs");
            assert_eq!(
                ra.query_peak_ratio.to_bits(),
                rb.query_peak_ratio.to_bits(),
                "{label}: query_peak_ratio not bit-identical"
            );
        }
    }
}

/// The full Fig. 2 loop with a scripted user: the response script is fixed,
/// so any divergence must come from the numeric pipeline (projection → KDE
/// grid → density-connected pick).
#[test]
fn scripted_session_is_bit_identical_across_budgets() {
    let points = cloud(SERIAL_CUTOFF + 130, 6, 0xD00D);
    let script = || {
        ScriptedUser::new([
            UserResponse::Threshold(1e-7),
            UserResponse::Discard,
            UserResponse::Threshold(5e-7),
        ])
        .with_fallback(UserResponse::Threshold(1e-7))
    };
    let mut u = script();
    let serial = session(Parallelism::serial(), &points, &mut u);
    for t in BUDGETS {
        let mut u = script();
        let par = session(Parallelism::fixed(t), &points, &mut u);
        assert_outcomes_bit_identical(&serial, &par, &format!("scripted, {t} threads"));
    }
}

/// The heuristic user reacts to the *values* of each visual profile, so
/// this session diverges at the first non-identical bit anywhere in the
/// loop — the strongest end-to-end determinism check we have.
#[test]
fn heuristic_session_is_bit_identical_across_budgets() {
    let points = cloud(SERIAL_CUTOFF + 42, 6, 0x5EED);
    let mut u = HeuristicUser::default();
    let serial = session(Parallelism::serial(), &points, &mut u);
    for t in BUDGETS {
        let mut u = HeuristicUser::default();
        let par = session(Parallelism::fixed(t), &points, &mut u);
        assert_outcomes_bit_identical(&serial, &par, &format!("heuristic, {t} threads"));
    }
}

mod properties {
    //! Property-test form of the bit-identity claim: *arbitrary* data,
    //! *arbitrary* sizes straddling chunk boundaries, *arbitrary* thread
    //! counts — serial and parallel must still agree to the last bit.

    use super::*;
    use proptest::prelude::*;

    /// Reshape a flat coordinate vector into `d`-dimensional points.
    fn reshape(flat: &[f64], d: usize) -> Vec<Vec<f64>> {
        flat.chunks_exact(d).map(|c| c.to_vec()).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn covariance_bit_identity(
            flat in proptest::collection::vec(
                -100.0..100.0f64,
                5 * SERIAL_CUTOFF..5 * SERIAL_CUTOFF + 900,
            ),
            threads in 2..9usize,
        ) {
            let pts = reshape(&flat, 5);
            let serial = covariance_matrix(&pts);
            let par = covariance_matrix_with(Parallelism::fixed(threads), &pts);
            for i in 0..5 {
                for j in 0..5 {
                    prop_assert_eq!(serial[(i, j)].to_bits(), par[(i, j)].to_bits());
                }
            }
        }

        #[test]
        fn kde_grid_bit_identity(
            flat in proptest::collection::vec(
                -50.0..50.0f64,
                2 * SERIAL_CUTOFF..2 * SERIAL_CUTOFF + 700,
            ),
            threads in 2..9usize,
        ) {
            let pts: Vec<[f64; 2]> = flat.chunks_exact(2).map(|c| [c[0], c[1]]).collect();
            let spec = GridSpec::covering(&pts, &[], 0.1, 33);
            let bw = Bandwidth2D::silverman(&pts);
            let serial = estimate_grid(&pts, bw, spec);
            let par = estimate_grid_with(Parallelism::fixed(threads), &pts, bw, spec);
            prop_assert_eq!(bits_of(serial.values()), bits_of(par.values()));
        }

        #[test]
        fn knn_bit_identity(
            flat in proptest::collection::vec(
                -100.0..100.0f64,
                4 * SERIAL_CUTOFF..4 * SERIAL_CUTOFF + 800,
            ),
            threads in 2..9usize,
            k in 1..60usize,
        ) {
            let pts = reshape(&flat, 4);
            let query = pts[0].clone();
            let serial = knn_indices(&pts, &query, k, Metric::L2);
            let par = knn_indices_with(Parallelism::fixed(threads), &pts, &query, k, Metric::L2);
            prop_assert_eq!(serial, par);
        }
    }
}
