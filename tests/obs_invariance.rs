//! Observability invariance: installing a `hinn-obs` recorder must not
//! change a single bit of any search result.
//!
//! The instrumentation layer only *observes* — it reads clocks, bumps
//! integer counters, and records span timings. These tests pin that
//! contract at the integration level: complete scripted sessions run with
//! the recorder enabled and disabled, across thread budgets {1, 4}, and
//! every numeric output is compared via `f64::to_bits`.
//!
//! The same traced session also serves as the telemetry coverage check
//! (every instrumented pipeline phase must appear in the report with
//! nonzero counters) and as the source of the schema golden file
//! (`tests/golden/telemetry_schema.txt`). To regenerate the golden after
//! an *intentional* instrumentation change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test obs_invariance
//! ```
//!
//! Set `HINN_OBS_EXPORT=/path/to/telemetry.json` to export the traced
//! session's full JSON report (CI uploads this as a workflow artifact).

use hinn::core::{
    CandidateSource, DatasetHandle, InteractiveSearch, Parallelism, SearchConfig, SearchOutcome,
};
use hinn::obs::TelemetryReport;
use hinn::par::SERIAL_CUTOFF;
use hinn::user::{ScriptedUser, UserResponse};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Thread budgets under test (the CI matrix runs the whole suite under
/// `HINN_THREADS` 1 and 4; these are pinned explicitly so the tests do
/// not depend on the environment).
const BUDGETS: [usize; 2] = [1, 4];

/// Serialize the tests in this binary: the `hinn-obs` facade is a global,
/// so a session traced by one test must not overlap an untraced session
/// from another (the untraced one would record into the first's shards —
/// harmless for results, but it would blur the coverage assertions).
fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Deterministic xorshift point cloud, `n` points in `d` dimensions
/// (same generator as the PR 1 equivalence harness).
fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed | 1;
    let mut unif = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
        .collect()
}

fn bits_of(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Fixed response script: the user's behavior is pinned, so any
/// divergence must come from the numeric pipeline.
fn script() -> ScriptedUser {
    ScriptedUser::new([
        UserResponse::Threshold(1e-7),
        UserResponse::Discard,
        UserResponse::Threshold(5e-7),
    ])
    .with_fallback(UserResponse::Threshold(1e-7))
}

fn config(par: Parallelism) -> SearchConfig {
    // Default Arbitrary projection mode so the PCA/eigen path runs too.
    SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 1,
        ..SearchConfig::default()
            .with_support(25)
            .with_parallelism(par)
    }
}

/// [`config`] seeded through the HNSW candidate source, with a budget
/// still above `SERIAL_CUTOFF` so the parallel phases keep spawning (the
/// `par.*` coverage assertions stay meaningful on the seeded subset).
fn hnsw_config(par: Parallelism) -> SearchConfig {
    config(par).with_candidate_source(CandidateSource::hnsw(SERIAL_CUTOFF + 40))
}

fn workload() -> Vec<Vec<f64>> {
    workload_seeded(0xD00D)
}

/// A workload with its own dataset seed. The HNSW-traced tests each use a
/// *unique* seed: the graph artifact registry is process-global, so a
/// dataset reused from an earlier test would be a registry hit and the
/// `index.build` span would never appear — making span coverage (and the
/// schema golden) depend on test execution order.
fn workload_seeded(seed: u64) -> Vec<Vec<f64>> {
    cloud(SERIAL_CUTOFF + 130, 6, seed)
}

fn run_plain_with(config: SearchConfig, points: &[Vec<f64>]) -> SearchOutcome {
    let mut user = script();
    InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(points).expect("dataset"),
            &points[0],
            &mut user,
            hinn::core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome()
}

fn run_traced_with(config: SearchConfig, points: &[Vec<f64>]) -> (SearchOutcome, TelemetryReport) {
    let mut user = script();
    let out = InteractiveSearch::new(config)
        .run_with(
            &DatasetHandle::new(points).expect("dataset"),
            &points[0],
            &mut user,
            hinn::core::RunOptions::traced(),
        )
        .expect("interactive session");
    let telemetry = out.telemetry.clone().expect("traced run yields telemetry");
    (out.into_outcome(), telemetry)
}

fn run_plain(par: Parallelism, points: &[Vec<f64>]) -> SearchOutcome {
    run_plain_with(config(par), points)
}

fn run_traced(par: Parallelism, points: &[Vec<f64>]) -> (SearchOutcome, TelemetryReport) {
    run_traced_with(config(par), points)
}

fn assert_outcomes_bit_identical(a: &SearchOutcome, b: &SearchOutcome, label: &str) {
    assert_eq!(a.neighbors, b.neighbors, "{label}: neighbor sets differ");
    assert_eq!(a.majors_run, b.majors_run, "{label}: majors_run differs");
    assert_eq!(
        bits_of(&a.probabilities),
        bits_of(&b.probabilities),
        "{label}: probabilities not bit-identical"
    );
    for (ma, mb) in a.transcript.majors.iter().zip(&b.transcript.majors) {
        assert_eq!(ma.n_points_before, mb.n_points_before, "{label}");
        assert_eq!(ma.n_points_after, mb.n_points_after, "{label}");
        assert_eq!(
            ma.overlap_with_previous, mb.overlap_with_previous,
            "{label}"
        );
        for (ra, rb) in ma.minors.iter().zip(&mb.minors) {
            assert_eq!(ra.n_picked, rb.n_picked, "{label}: n_picked differs");
            assert_eq!(
                ra.query_peak_ratio.to_bits(),
                rb.query_peak_ratio.to_bits(),
                "{label}: query_peak_ratio not bit-identical"
            );
            assert_eq!(
                bits_of(&ra.variance_ratios),
                bits_of(&rb.variance_ratios),
                "{label}: variance_ratios not bit-identical"
            );
        }
    }
}

/// The tentpole acceptance claim: recorder on vs. off, bit-for-bit equal
/// results, at every thread budget.
#[test]
fn recorder_on_equals_recorder_off_across_budgets() {
    let _guard = exclusive();
    let points = workload();
    for t in BUDGETS {
        let plain = run_plain(Parallelism::fixed(t), &points);
        let (traced, report) = run_traced(Parallelism::fixed(t), &points);
        assert_outcomes_bit_identical(&plain, &traced, &format!("recorder on/off, {t} threads"));
        assert!(
            report.find_span("search.session").is_some(),
            "{t} threads: traced run produced no session span"
        );
        // Phase timings appear only on the traced run; they must never
        // leak into the untraced transcript.
        assert!(plain.transcript.iter_minors().all(|m| m.phases.is_none()));
        assert!(traced.transcript.iter_minors().all(|m| m.phases.is_some()));
    }
}

/// The same on/off claim for the HNSW-seeded path: the index reads a
/// clock during a traced build (`index.build_ms`), and that clock must
/// never leak into the graph or the session (the first run builds the
/// graph cold; the second shares it through the artifact registry — the
/// shared graph is bit-identical to a fresh build, so the outcomes match).
#[test]
fn recorder_toggle_is_invisible_to_hnsw_sessions() {
    let _guard = exclusive();
    let points = workload_seeded(0x0FF0_0001);
    for t in BUDGETS {
        let plain = run_plain_with(hnsw_config(Parallelism::fixed(t)), &points);
        let (traced, report) = run_traced_with(hnsw_config(Parallelism::fixed(t)), &points);
        assert_outcomes_bit_identical(
            &plain,
            &traced,
            &format!("hnsw recorder on/off, {t} threads"),
        );
        assert!(
            report.counter("index.hops") > 0,
            "{t} threads: traced HNSW run recorded no graph hops"
        );
    }
}

/// Cross-budget: the traced sessions must also agree with each other.
#[test]
fn traced_sessions_bit_identical_across_budgets() {
    let _guard = exclusive();
    let points = workload();
    let (serial, _) = run_traced(Parallelism::fixed(1), &points);
    for t in &BUDGETS[1..] {
        let (par, _) = run_traced(Parallelism::fixed(*t), &points);
        assert_outcomes_bit_identical(&serial, &par, &format!("traced, {t} threads"));
    }
}

/// Every instrumented pipeline phase shows up in the report with nonzero
/// work counters: KDE, PCA/eigen, projection scan, density-connection,
/// and the meaningfulness update.
#[test]
fn telemetry_covers_every_instrumented_phase() {
    let _guard = exclusive();
    // Unique dataset seed: the HNSW build must be cold in this test (see
    // `workload_seeded`), or the `index.build` span assertion below would
    // depend on which test ran first.
    let points = workload_seeded(0xC0DE_0001);
    let (_, report) = run_traced_with(hnsw_config(Parallelism::fixed(4)), &points);

    let paths = report.span_paths();
    for phase in [
        "index.build",
        "index.search",
        "kde.estimate_grid",
        "kde.profile",
        "kde.connect",
        "linalg.eigen",
        "linalg.covariance",
        "projection.find",
        "projection.scan",
        "meaning.update",
        "search.session",
        "search.major",
        "search.minor",
    ] {
        assert!(
            paths
                .iter()
                .any(|p| p == phase || p.ends_with(&format!("/{phase}"))),
            "span {phase:?} missing from report; recorded paths: {paths:#?}"
        );
    }

    for counter in [
        "index.hops",
        "index.dist_evals",
        "cache.miss",
        "kde.points_scanned",
        "kde.grid_cells",
        "kde.connect_calls",
        "kde.cells_visited",
        "linalg.eigenpairs",
        "linalg.jacobi_sweeps",
        "linalg.points_scanned",
        "projection.points_scanned",
        "meaning.points",
        "par.chunks",
    ] {
        assert!(
            report.counter(counter) > 0,
            "counter {counter:?} is zero; report:\n{}",
            report.to_text()
        );
    }

    // Session-level gauges and per-iteration histograms.
    assert_eq!(
        report.gauges.get("search.points"),
        Some(&(points.len() as f64))
    );
    assert_eq!(report.gauges.get("search.dims"), Some(&6.0));
    let cand = report
        .histograms
        .get("search.candidates")
        .expect("candidate-set histogram");
    assert!(cand.count > 0 && cand.max <= points.len() as f64);
    // The cold HNSW build records its wall-clock histogram.
    let build = report
        .histograms
        .get("index.build_ms")
        .expect("index build-time histogram");
    assert_eq!(build.count, 1, "exactly one cold graph build");

    // Optional JSON export for the CI telemetry artifact.
    if let Some(path) = std::env::var_os("HINN_OBS_EXPORT") {
        std::fs::write(&path, report.to_json()).expect("write HINN_OBS_EXPORT JSON");
    }
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("telemetry_schema.txt")
}

/// Schema stability: the *structure* of the telemetry report (span tree
/// paths and metric names — never the machine-dependent values) is pinned
/// to a golden file. Renaming or dropping a span/counter is a breaking
/// change for downstream consumers of the JSON export and must show up as
/// a reviewed diff here.
#[test]
fn telemetry_schema_matches_golden() {
    let _guard = exclusive();
    // HNSW-seeded run on its own dataset (cold build — see
    // `workload_seeded`) so the schema covers the `index.*` metrics.
    let points = workload_seeded(0x5C8E_0001);
    let (_, report) = run_traced_with(hnsw_config(Parallelism::fixed(4)), &points);
    let rendered = report.schema();

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &rendered).expect("write golden schema");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden schema {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test obs_invariance`",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "telemetry schema drifted from the golden file; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

/// The JSON export is well-formed enough for line-oriented tooling and
/// carries the schema version marker.
#[test]
fn json_export_carries_schema_version() {
    let _guard = exclusive();
    let points = workload();
    let (_, report) = run_traced(Parallelism::fixed(1), &points);
    let json = report.to_json();
    assert!(json.contains("\"schema_version\": 1"), "{json}");
    assert!(json.contains("\"search.session\""), "{json}");
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces in JSON export"
    );
}
