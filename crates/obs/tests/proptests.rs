//! Property tests of the quantile sketch's documented error bound
//! (ISSUE 7 satellite c).
//!
//! The sketch promises: every reported quantile is within relative error
//! α of the exact lower-nearest-rank value of the stream, and a merge of
//! shard sketches is bit-identical to the sketch of the concatenated
//! stream. These tests drive adversarial stream shapes at the bound —
//! sorted ramps (every bucket in order), constant streams (one bucket
//! holds every rank), bimodal mixtures (a cliff between quantiles), and
//! NaN-free xorshift noise — and arbitrary shard splits for the merge
//! law.

use hinn_obs::QuantileSketch;
use proptest::prelude::*;

/// Exact lower nearest-rank quantile — the convention the sketch uses.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
    sorted[rank]
}

/// Assert the sketch's bound at the ranks the reports render.
fn assert_bound(sketch: &QuantileSketch, values: &[f64]) {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        let got = sketch.quantile(q).expect("non-empty stream");
        let want = exact_quantile(&sorted, q);
        // Relative error α on trackable values; zero-bucket values are
        // exact up to MIN_TRACKABLE.
        let tol = sketch.alpha() * want.abs() + 1e-6;
        assert!(
            (got - want).abs() <= tol,
            "q={q}: sketch {got} vs exact {want} (tol {tol})"
        );
    }
}

/// Deterministic positive noise stream (no NaN, no negatives).
fn xorshift_stream(seed: u64, len: usize) -> Vec<f64> {
    let mut s = seed | 1;
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            // Spread over ~6 decades, like latencies from ns to ms.
            let u = (s >> 11) as f64 / (1u64 << 53) as f64;
            1e-3 * (u * 13.8).exp()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sorted ramp: every observation lands in bucket order, so any
    /// off-by-one in the rank walk shows up immediately.
    #[test]
    fn sorted_ramp_stays_within_alpha(
        start in 0.001f64..10.0,
        step in 0.001f64..5.0,
        len in 2usize..400,
    ) {
        let values: Vec<f64> = (0..len).map(|i| start + step * i as f64).collect();
        let mut sketch = QuantileSketch::default();
        for &v in &values {
            sketch.record(v);
        }
        assert_bound(&sketch, &values);
    }

    /// Constant stream: one bucket holds every rank; every quantile must
    /// report (within α) that constant.
    #[test]
    fn constant_stream_reports_the_constant(
        value in 0.0001f64..1e9,
        len in 1usize..300,
    ) {
        let values = vec![value; len];
        let mut sketch = QuantileSketch::default();
        for &v in &values {
            sketch.record(v);
        }
        assert_bound(&sketch, &values);
    }

    /// Bimodal mixture: a fast mode and a slow mode orders of magnitude
    /// apart. The p50/p99 split across the cliff is where a bucketed
    /// sketch with a broken rank walk misreports worst.
    #[test]
    fn bimodal_mixture_stays_within_alpha(
        fast in 0.01f64..1.0,
        slow_mult in 50.0f64..5000.0,
        n_fast in 1usize..200,
        n_slow in 1usize..200,
    ) {
        let slow = fast * slow_mult;
        let mut values = vec![fast; n_fast];
        values.extend(std::iter::repeat_n(slow, n_slow));
        let mut sketch = QuantileSketch::default();
        for &v in &values {
            sketch.record(v);
        }
        assert_bound(&sketch, &values);
    }

    /// NaN-free xorshift noise over six decades.
    #[test]
    fn xorshift_noise_stays_within_alpha(
        seed in 1u64..u64::MAX,
        len in 1usize..500,
    ) {
        let values = xorshift_stream(seed, len);
        let mut sketch = QuantileSketch::default();
        for &v in &values {
            sketch.record(v);
        }
        assert_bound(&sketch, &values);
    }

    /// Merge law: splitting a stream into shards at an arbitrary cut and
    /// merging the shard sketches equals the sketch of the whole stream —
    /// exactly, so all quantiles agree bit-for-bit (and trivially within
    /// the bound of the concatenated stream).
    #[test]
    fn merged_shards_equal_the_concatenated_stream(
        seed in 1u64..u64::MAX,
        len in 2usize..400,
        cut_frac in 0.0f64..1.0,
    ) {
        let values = xorshift_stream(seed, len);
        let cut = ((len as f64 * cut_frac) as usize).min(len);
        let mut whole = QuantileSketch::default();
        let mut left = QuantileSketch::default();
        let mut right = QuantileSketch::default();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i < cut {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let merged = left.quantile(q);
            let direct = whole.quantile(q);
            prop_assert_eq!(
                merged.map(f64::to_bits),
                direct.map(f64::to_bits),
                "q={} diverged after merge", q
            );
        }
        assert_bound(&left, &values);
    }
}
