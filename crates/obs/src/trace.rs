//! The flight-recorder trace buffer: timed span events with parent links.
//!
//! When a [`SessionRecorder`](crate::SessionRecorder) is created with
//! [`with_trace`](crate::SessionRecorder::with_trace), every span entry
//! records a monotonic start offset from the recorder's epoch and every
//! exit appends a [`TraceEvent`] to the owning thread's buffer. The
//! merged [`TraceData`] is the full timeline of the session —
//! `search.session → search.major → search.minor → {projection, kde,
//! eigen, meaning}` — exportable to the Chrome/Perfetto `trace_events`
//! format (see [`crate::export`]).
//!
//! # Determinism rules
//!
//! Wall-clock values are inherently machine- and run-dependent, so they
//! are carried as **data, never as ordering**:
//!
//! * Each event gets a `seq` number — its occurrence index among events
//!   with the same `(thread, path)` — assigned by program order on the
//!   owning thread, independent of the clock.
//! * [`TraceData::events`] is sorted by the stable key
//!   `(path, seq, tid)`, so two runs of the same deterministic workload
//!   produce event lists that agree on everything except the `*_ns`
//!   fields.
//! * Structure (paths, parentage, counts) is asserted by golden tests
//!   via the aggregated span tree; timings are never golden-tested.

use std::collections::BTreeMap;

/// One completed span occurrence, as recorded by the flight recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Full `/`-joined span path (parent links are encoded in the path).
    pub path: String,
    /// Occurrence index among events with the same `(tid, path)`,
    /// assigned in program order on the owning thread.
    pub seq: u64,
    /// Shard (thread) index in recorder registration order.
    pub tid: u64,
    /// Monotonic start offset from the recorder's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// The merged, deterministically-ordered timeline of a traced session.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceData {
    /// Completed span events sorted by `(path, seq, tid)`.
    pub events: Vec<TraceEvent>,
}

impl TraceData {
    /// Merge per-shard event buffers into the stable order (see module
    /// docs). Called by `SessionRecorder::report`.
    pub(crate) fn from_shards(mut events: Vec<TraceEvent>) -> Self {
        events
            .sort_by(|a, b| (a.path.as_str(), a.seq, a.tid).cmp(&(b.path.as_str(), b.seq, b.tid)));
        Self { events }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Per-shard scratch state of the flight recorder. Lives inside the
/// recorder's thread shard; only touched when trace mode is on.
#[derive(Default)]
pub(crate) struct TraceBuffer {
    /// Start offsets (ns from the recorder epoch) of the currently-open
    /// spans, parallel to the shard's name stack.
    pub(crate) open_starts: Vec<u64>,
    /// Next `seq` per span path on this shard.
    seq: BTreeMap<String, u64>,
    /// Completed events.
    pub(crate) events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// Record a completed span at `path` that started at `start_ns` and
    /// ran for `dur_ns`.
    pub(crate) fn record(&mut self, path: &str, tid: u64, start_ns: u64, dur_ns: u64) {
        let seq = self.seq.entry(path.to_string()).or_insert(0);
        self.events.push(TraceEvent {
            path: path.to_string(),
            seq: *seq,
            tid,
            start_ns,
            dur_ns,
        });
        *seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(path: &str, seq: u64, tid: u64, start: u64) -> TraceEvent {
        TraceEvent {
            path: path.to_string(),
            seq,
            tid,
            start_ns: start,
            dur_ns: 1,
        }
    }

    #[test]
    fn merge_order_ignores_wall_time() {
        // Same structural events, wildly different timestamps: identical
        // merged order.
        let a = TraceData::from_shards(vec![
            ev("s/minor", 1, 0, 999),
            ev("s", 0, 0, 5),
            ev("s/minor", 0, 0, 700),
        ]);
        let b = TraceData::from_shards(vec![
            ev("s/minor", 0, 0, 1),
            ev("s/minor", 1, 0, 2),
            ev("s", 0, 0, 3),
        ]);
        let shape = |d: &TraceData| -> Vec<(String, u64, u64)> {
            d.events
                .iter()
                .map(|e| (e.path.clone(), e.seq, e.tid))
                .collect()
        };
        assert_eq!(shape(&a), shape(&b));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
    }

    #[test]
    fn buffer_assigns_seq_per_path() {
        let mut buf = TraceBuffer::default();
        buf.record("a", 0, 10, 1);
        buf.record("a/b", 0, 11, 1);
        buf.record("a", 0, 20, 1);
        let seqs: Vec<(&str, u64)> = buf
            .events
            .iter()
            .map(|e| (e.path.as_str(), e.seq))
            .collect();
        assert_eq!(seqs, vec![("a", 0), ("a/b", 0), ("a", 1)]);
    }
}
