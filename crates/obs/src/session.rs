//! The thread-sharded session recorder.
//!
//! Every thread that emits an event gets its own *shard* — a small
//! mutex-protected scratch area registered with the recorder on first use.
//! Because a shard is only ever locked by its owning thread (and once more
//! at report time), the lock is uncontended in steady state: recording is
//! effectively lock-free even under the scoped worker threads `hinn-par`
//! spawns inside every hot path.
//!
//! Merging is **deterministic**: shards aggregate into `BTreeMap`s keyed
//! by span path / metric name, so the merged report does not depend on
//! thread scheduling or shard registration order. (Span and counter
//! aggregation is integer addition — associative and commutative — and
//! histogram merge uses only order-independent reductions: sum of counts,
//! min of mins, max of maxes, plus an f64 value sum whose shard order is
//! fixed by registration sequence.)

use crate::report::{Histogram, TelemetryReport};
use crate::trace::{TraceBuffer, TraceData, TraceEvent};
use crate::Recorder;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Aggregated statistics of one span path within one shard.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SpanStat {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
}

/// One thread's private event scratch area.
#[derive(Default)]
struct Shard {
    /// Shard index in recorder registration order (the trace `tid`).
    tid: u64,
    /// Flight-recorder scratch (only touched in trace mode).
    trace: TraceBuffer,
    /// Stack of currently-open span names on the owning thread.
    stack: Vec<&'static str>,
    /// Aggregated spans keyed by `/`-joined path.
    spans: BTreeMap<String, SpanStat>,
    /// Monotonic counters.
    counters: BTreeMap<&'static str, u64>,
    /// Last-write-wins gauges, with a sequence number so the merged value
    /// is the globally last write, not the last shard's write.
    gauges: BTreeMap<&'static str, (u64, f64)>,
    /// Histogram accumulators.
    hists: BTreeMap<&'static str, Histogram>,
}

impl Shard {
    /// The `/`-joined path of the currently-open span stack.
    fn path(&self) -> String {
        self.stack.join("/")
    }
}

/// Distinguishes recorder instances so a long-lived thread's cached shard
/// handle is never mistakenly reused for a *different* recorder.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// Global sequence for gauge writes (see `Shard::gauges`).
static GAUGE_SEQ: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's cached `(generation, shard)` handle.
    static LOCAL_SHARD: RefCell<Option<(u64, Arc<Mutex<Shard>>)>> = const { RefCell::new(None) };
}

/// A [`Recorder`] that collects spans, counters, gauges, and histograms
/// into per-thread shards and merges them into a [`TelemetryReport`].
///
/// See the [crate docs](crate) for a usage example.
pub struct SessionRecorder {
    generation: u64,
    shards: Mutex<Vec<Arc<Mutex<Shard>>>>,
    /// Monotonic epoch all trace timestamps are offsets from.
    epoch: Instant,
    /// Flight-recorder mode: record per-occurrence [`TraceEvent`]s in
    /// addition to the aggregates.
    trace: bool,
}

impl Default for SessionRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionRecorder {
    /// A fresh, empty recorder (aggregates only; no per-event trace).
    pub fn new() -> Self {
        Self {
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            shards: Mutex::new(Vec::new()),
            epoch: Instant::now(),
            trace: false,
        }
    }

    /// A fresh recorder in flight-recorder mode: every span occurrence is
    /// also recorded as a timed [`TraceEvent`], and
    /// [`report`](Self::report) carries a [`TraceData`] timeline
    /// exportable to Chrome/Perfetto (see [`crate::export`]).
    pub fn with_trace() -> Self {
        Self {
            trace: true,
            ..Self::new()
        }
    }

    /// Is this recorder in flight-recorder (trace) mode?
    pub fn is_tracing(&self) -> bool {
        self.trace
    }

    /// Run `f` on the calling thread's shard, creating and registering the
    /// shard on first use.
    fn with_shard(&self, f: impl FnOnce(&mut Shard)) {
        LOCAL_SHARD.with(|tl| {
            let mut tl = tl.borrow_mut();
            let cached = matches!(&*tl, Some((generation, _)) if *generation == self.generation);
            if !cached {
                let mut shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
                let shard = Arc::new(Mutex::new(Shard {
                    tid: shards.len() as u64,
                    ..Shard::default()
                }));
                shards.push(shard.clone());
                drop(shards);
                *tl = Some((self.generation, shard));
            }
            let (_, shard) = tl.as_ref().expect("shard just installed");
            f(&mut shard.lock().unwrap_or_else(|e| e.into_inner()));
        });
    }

    /// Merge every shard into a deterministic snapshot report. The
    /// recorder keeps accumulating afterwards; reporting does not drain.
    pub fn report(&self) -> TelemetryReport {
        let shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
        let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        let mut hists: BTreeMap<String, Histogram> = BTreeMap::new();
        let mut trace_events: Vec<TraceEvent> = Vec::new();
        for shard in shards.iter() {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            if self.trace {
                trace_events.extend(shard.trace.events.iter().cloned());
            }
            for (path, stat) in &shard.spans {
                let s = spans.entry(path.clone()).or_default();
                s.count += stat.count;
                s.total_ns += stat.total_ns;
            }
            for (&name, &v) in &shard.counters {
                *counters.entry(name.to_string()).or_insert(0) += v;
            }
            for (&name, &(seq, v)) in &shard.gauges {
                let slot = gauges.entry(name.to_string()).or_insert((0, 0.0));
                if seq > slot.0 {
                    *slot = (seq, v);
                }
            }
            for (&name, h) in &shard.hists {
                hists.entry(name.to_string()).or_default().merge(h);
            }
        }
        let mut report = TelemetryReport::assemble(
            spans,
            counters,
            gauges.into_iter().map(|(k, (_, v))| (k, v)).collect(),
            hists,
        );
        if self.trace {
            report.trace = Some(TraceData::from_shards(trace_events));
        }
        report
    }
}

impl Recorder for SessionRecorder {
    fn enter_span(&self, name: &'static str) {
        // In trace mode the clock is read outside the shard lock; the
        // offset is pushed in the same program order as the name stack.
        let start_ns = self.trace.then(|| self.epoch.elapsed().as_nanos() as u64);
        self.with_shard(|shard| {
            shard.stack.push(name);
            if let Some(start) = start_ns {
                shard.trace.open_starts.push(start);
            }
        });
    }

    fn exit_span(&self, name: &'static str, nanos: u64) {
        let end_ns = self.trace.then(|| self.epoch.elapsed().as_nanos() as u64);
        self.with_shard(|shard| {
            // Tolerate an unbalanced exit (a guard created just before the
            // recorder was installed, or dropped just after removal).
            if shard.stack.last() != Some(&name) {
                return;
            }
            shard.stack.pop();
            let path = if shard.stack.is_empty() {
                name.to_string()
            } else {
                format!("{}/{}", shard.path(), name)
            };
            let stat = shard.spans.entry(path.clone()).or_default();
            stat.count += 1;
            stat.total_ns += nanos;
            if let (Some(end), Some(start)) = (end_ns, shard.trace.open_starts.pop()) {
                let tid = shard.tid;
                shard
                    .trace
                    .record(&path, tid, start, end.saturating_sub(start));
            }
        });
    }

    fn add(&self, name: &'static str, delta: u64) {
        self.with_shard(|shard| *shard.counters.entry(name).or_insert(0) += delta);
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let seq = GAUGE_SEQ.fetch_add(1, Ordering::Relaxed);
        self.with_shard(|shard| {
            shard.gauges.insert(name, (seq, value));
        });
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.with_shard(|shard| shard.hists.entry(name).or_default().push(value));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive the recorder directly (no global install), so these tests are
    /// independent of any concurrently-installed recorder.
    #[test]
    fn spans_nest_into_paths() {
        let rec = SessionRecorder::new();
        rec.enter_span("outer");
        rec.enter_span("inner");
        rec.exit_span("inner", 5);
        rec.enter_span("inner");
        rec.exit_span("inner", 7);
        rec.exit_span("outer", 100);
        let report = rec.report();
        let outer = report.find_span("outer").expect("outer span");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.total_ns, 100);
        let inner = report.find_span("outer/inner").expect("nested span");
        assert_eq!(inner.count, 2);
        assert_eq!(inner.total_ns, 12);
        assert!(report.find_span("inner").is_none(), "no top-level inner");
    }

    #[test]
    fn unbalanced_exit_is_ignored() {
        let rec = SessionRecorder::new();
        rec.exit_span("never_entered", 99);
        rec.enter_span("a");
        rec.exit_span("b", 1); // mismatched name: ignored, stack intact
        rec.exit_span("a", 2);
        let report = rec.report();
        assert!(report.find_span("never_entered").is_none());
        assert_eq!(report.find_span("a").map(|s| s.total_ns), Some(2));
    }

    #[test]
    fn per_thread_shards_merge_deterministically() {
        let rec = Arc::new(SessionRecorder::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rec = rec.clone();
                scope.spawn(move || {
                    rec.enter_span("work");
                    rec.add("items", 10 + t);
                    rec.observe("latency", t as f64);
                    rec.exit_span("work", t);
                });
            }
        });
        let report = rec.report();
        // Scheduling-independent aggregates.
        assert_eq!(report.counter("items"), 10 + 11 + 12 + 13);
        let work = report.find_span("work").expect("work span");
        assert_eq!(work.count, 4);
        assert_eq!(work.total_ns, 6); // 0 + 1 + 2 + 3
        let h = report.histograms.get("latency").expect("histogram");
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0.0);
        assert_eq!(h.max, 3.0);
        // Two reports from the same shards are identical, and repeated
        // runs would produce the same JSON regardless of thread order.
        assert_eq!(report.to_json(), rec.report().to_json());
    }

    #[test]
    fn merge_order_of_shards_does_not_change_the_report() {
        // Two recorders fed the same events from threads started in
        // opposite orders must render identical reports.
        let run = |reverse: bool| {
            let rec = Arc::new(SessionRecorder::new());
            let mut ids: Vec<u64> = (0..6).collect();
            if reverse {
                ids.reverse();
            }
            std::thread::scope(|scope| {
                for t in ids {
                    let rec = rec.clone();
                    scope.spawn(move || {
                        rec.enter_span("phase");
                        rec.add("n", t);
                        rec.exit_span("phase", 2 * t);
                    });
                }
            });
            rec.report().to_json()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn gauge_last_write_wins_across_shards() {
        let rec = Arc::new(SessionRecorder::new());
        rec.gauge("points.alive", 100.0);
        std::thread::scope(|scope| {
            let rec2 = rec.clone();
            scope.spawn(move || rec2.gauge("points.alive", 40.0));
        });
        // The thread's write happened after the main thread's.
        assert_eq!(rec.report().gauges.get("points.alive"), Some(&40.0));
    }

    #[test]
    fn fresh_recorder_does_not_inherit_old_shards() {
        let a = SessionRecorder::new();
        a.add("x", 1);
        let b = SessionRecorder::new();
        b.add("x", 5);
        assert_eq!(a.report().counter("x"), 1);
        assert_eq!(b.report().counter("x"), 5);
    }
}
