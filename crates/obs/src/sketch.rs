//! A deterministic, mergeable quantile sketch for latency telemetry.
//!
//! This is a DDSketch-style log-bucketed sketch (Masson, Rim & Lee, VLDB
//! 2019), reduced to what the flight recorder needs: non-negative
//! observations (durations in milliseconds, set sizes), integer bucket
//! counts, and an exact merge. A value `v > MIN_TRACKABLE` lands in bucket
//! `ceil(log_γ v)` with `γ = (1 + α)/(1 − α)`; reporting the geometric
//! midpoint `2·γ^i/(γ + 1)` of a bucket guarantees every reported
//! quantile is within **relative error α** of some value actually
//! observed at that rank.
//!
//! # Determinism and merge exactness
//!
//! The sketch is a pure fold over the observed multiset: bucket indices
//! are computed from the value alone, counts are integers, and buckets
//! live in a `BTreeMap`. Therefore
//!
//! * the sketch of a stream is independent of observation order, and
//! * [`QuantileSketch::merge`] is bucket-wise integer addition, so a
//!   merge of shard sketches is **bit-identical** to the sketch of the
//!   concatenated stream — not merely "within bound". (Only the `sum`
//!   field is order-sensitive f64 addition; quantiles never read it.)
//!
//! # Error bound
//!
//! For a sketch with relative accuracy `α` ([`DEFAULT_ALPHA`] = 1%), and
//! any rank `r`, the reported quantile `q̂` satisfies
//! `|q̂ − x_r| ≤ α · x_r` for the true r-th smallest observation
//! `x_r > MIN_TRACKABLE`. Values in `[0, MIN_TRACKABLE]` collapse into a
//! dedicated zero bucket and are reported as `0.0` (absolute error at
//! most `MIN_TRACKABLE` = 1 ns when observations are in milliseconds).
//! Negative and NaN observations are counted in `count` but excluded
//! from the bucket array (they cannot be ranked meaningfully); the
//! workspace only ever records non-negative values.

use std::collections::BTreeMap;

/// Default relative accuracy of the sketch: reported quantiles are within
/// 1% of a value actually observed at that rank.
pub const DEFAULT_ALPHA: f64 = 0.01;

/// Values at or below this threshold are tracked exactly as zero. With
/// millisecond observations this is one nanosecond.
pub const MIN_TRACKABLE: f64 = 1e-6;

/// A deterministic mergeable quantile sketch (see module docs).
#[derive(Clone, Debug, PartialEq)]
pub struct QuantileSketch {
    /// Relative accuracy α the sketch was built with.
    alpha: f64,
    /// Cached `1 / ln γ` where `γ = (1 + α)/(1 − α)`.
    inv_log_gamma: f64,
    /// Log-bucket counts keyed by bucket index `ceil(log_γ v)`.
    buckets: BTreeMap<i32, u64>,
    /// Observations in `[0, MIN_TRACKABLE]`.
    zero_count: u64,
    /// Observations that were negative or NaN (excluded from quantiles).
    untracked: u64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// A fresh sketch with relative accuracy `alpha` (clamped to a sane
    /// open interval so `γ` is finite and > 1).
    pub fn new(alpha: f64) -> Self {
        let alpha = alpha.clamp(1e-4, 0.5);
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        Self {
            alpha,
            inv_log_gamma: 1.0 / gamma.ln(),
            buckets: BTreeMap::new(),
            zero_count: 0,
            untracked: 0,
        }
    }

    /// The relative accuracy α this sketch guarantees.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Total number of recorded observations (including untracked ones).
    pub fn count(&self) -> u64 {
        self.ranked_count() + self.untracked
    }

    /// Observations that participate in quantile queries.
    fn ranked_count(&self) -> u64 {
        self.zero_count + self.buckets.values().sum::<u64>()
    }

    /// Bucket index of a positive trackable value.
    fn bucket_index(&self, value: f64) -> i32 {
        // ceil(log_γ v); clamp to i32 — any finite f64 fits easily.
        (value.ln() * self.inv_log_gamma).ceil() as i32
    }

    /// Representative value of a bucket: the geometric midpoint
    /// `2·γ^i/(γ+1)`, within α of every value the bucket can hold.
    fn bucket_value(&self, index: i32) -> f64 {
        let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
        2.0 * gamma.powi(index) / (gamma + 1.0)
    }

    /// Record one observation.
    pub fn record(&mut self, value: f64) {
        if value.is_nan() || value < 0.0 {
            self.untracked += 1;
        } else if value <= MIN_TRACKABLE {
            self.zero_count += 1;
        } else {
            *self.buckets.entry(self.bucket_index(value)).or_insert(0) += 1;
        }
    }

    /// Merge another sketch into this one. Requires equal `alpha` (all
    /// workspace sketches use [`DEFAULT_ALPHA`]); with equal alphas the
    /// result is bit-identical to a sketch of the concatenated stream.
    pub fn merge(&mut self, other: &QuantileSketch) {
        debug_assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "merging sketches with different alphas loses the error bound"
        );
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.zero_count += other.zero_count;
        self.untracked += other.untracked;
    }

    /// The `q`-quantile (`q` in `[0, 1]`) of the recorded stream, within
    /// relative error α (see module docs). `None` when no trackable
    /// observation has been recorded.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.ranked_count();
        if n == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank in 0..n (nearest-rank on the lower side, the
        // convention DDSketch uses): the ⌊q·(n−1)⌋-th smallest value.
        let rank = (q * (n - 1) as f64).floor() as u64;
        if rank < self.zero_count {
            return Some(0.0);
        }
        let mut seen = self.zero_count;
        for (&idx, &count) in &self.buckets {
            seen += count;
            if seen > rank {
                return Some(self.bucket_value(idx));
            }
        }
        // Unreachable: the loop covers all ranked observations.
        self.buckets
            .keys()
            .next_back()
            .map(|&i| self.bucket_value(i))
    }

    /// Convenience accessors for the percentiles the reports render.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// The 90th percentile, if any trackable observation exists.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// The 99th percentile, if any trackable observation exists.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact lower nearest-rank quantile of a sorted slice.
    fn exact(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).floor() as usize;
        sorted[rank]
    }

    fn assert_within_alpha(sketch: &QuantileSketch, sorted: &[f64], q: f64) {
        let got = sketch.quantile(q).expect("non-empty");
        let want = exact(sorted, q);
        let tol = sketch.alpha() * want.abs() + MIN_TRACKABLE;
        assert!(
            (got - want).abs() <= tol,
            "q={q}: got {got}, exact {want}, tol {tol}"
        );
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::default();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), None);
    }

    #[test]
    fn single_value_round_trips_within_alpha() {
        let mut s = QuantileSketch::default();
        s.record(123.456);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = s.quantile(q).unwrap();
            assert!((got - 123.456).abs() <= DEFAULT_ALPHA * 123.456);
        }
    }

    #[test]
    fn quantiles_track_a_uniform_stream() {
        let mut s = QuantileSketch::default();
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.1).collect();
        for &v in &values {
            s.record(v);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_within_alpha(&s, &values, q);
        }
    }

    #[test]
    fn observation_order_does_not_change_the_sketch() {
        let mut a = QuantileSketch::default();
        let mut b = QuantileSketch::default();
        let values: Vec<f64> = (1..=500).map(|i| (i as f64).sqrt()).collect();
        for &v in &values {
            a.record(v);
        }
        for &v in values.iter().rev() {
            b.record(v);
        }
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.quantile(0.99), b.quantile(0.99));
    }

    #[test]
    fn merge_is_exact() {
        let values: Vec<f64> = (1..=300).map(|i| (i as f64) * 1.7 + 0.3).collect();
        let mut whole = QuantileSketch::default();
        let mut left = QuantileSketch::default();
        let mut right = QuantileSketch::default();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        left.merge(&right);
        assert_eq!(left.buckets, whole.buckets);
        assert_eq!(left.count(), whole.count());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(left.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn zeros_and_untracked_values() {
        let mut s = QuantileSketch::default();
        s.record(0.0);
        s.record(0.0);
        s.record(f64::NAN);
        s.record(-5.0);
        s.record(10.0);
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.0), Some(0.0));
        let p99 = s.quantile(1.0).unwrap();
        assert!((p99 - 10.0).abs() <= DEFAULT_ALPHA * 10.0);
    }

    #[test]
    fn huge_and_tiny_values_stay_bounded() {
        let mut s = QuantileSketch::default();
        let values = [1e-5, 1e-3, 1.0, 1e6, 1e12];
        for &v in &values {
            s.record(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        for q in [0.0, 0.5, 1.0] {
            assert_within_alpha(&s, &sorted, q);
        }
    }
}
