//! Exporters: Chrome/Perfetto `trace_events` JSON, a text flame summary,
//! and the non-fatal environment-driven file export.
//!
//! # Chrome trace format
//!
//! [`TelemetryReport::to_chrome_trace`] renders the flight-recorder
//! timeline as the JSON object format every Chromium-family profiler
//! understands — `chrome://tracing`, <https://ui.perfetto.dev>, and
//! `speedscope` all load it directly. Each completed span becomes one
//! complete ("ph": "X") event with microsecond timestamps relative to
//! the recorder epoch; nesting is inferred by the viewers from time
//! containment per `(pid, tid)` track, which holds by construction
//! because child spans open after and close before their parent on the
//! same thread.
//!
//! # Environment export
//!
//! [`export_env`] writes the report wherever the user asked:
//!
//! * `HINN_OBS_EXPORT=<path>` — the stable telemetry JSON
//!   ([`TelemetryReport::to_json`]).
//! * `HINN_OBS_TRACE=<path>` — the Chrome trace JSON, plus a flame
//!   summary printed to stderr.
//!
//! File-write failures are **non-fatal**: a search must never panic at
//! the I/O boundary (the workspace denies `unwrap`/`expect` in library
//! code), so a failed export emits a `fault.obs_export_failed` counter
//! and a stderr warning, and the search result is returned untouched.

use crate::report::{SpanNode, TelemetryReport};
use crate::trace::TraceData;
use std::fmt::Write as _;

impl TelemetryReport {
    /// The flight-recorder timeline in Chrome/Perfetto `trace_events`
    /// JSON (see module docs). When the report was collected without
    /// trace mode the event list is empty but the output is still a
    /// valid, loadable trace.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
        let mut first = true;
        if let Some(trace) = &self.trace {
            for e in &trace.events {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                // Perfetto wants the leaf name; the full path goes into
                // args so no information is lost.
                let name = e.path.rsplit('/').next().unwrap_or(e.path.as_str());
                let _ = write!(
                    out,
                    "  {{\"name\": \"{}\", \"cat\": \"hinn\", \"ph\": \"X\", \
                     \"ts\": {}.{:03}, \"dur\": {}.{:03}, \"pid\": 1, \"tid\": {}, \
                     \"args\": {{\"path\": \"{}\", \"seq\": {}}}}}",
                    crate::report::json_escape(name),
                    e.start_ns / 1_000,
                    e.start_ns % 1_000,
                    e.dur_ns / 1_000,
                    e.dur_ns % 1_000,
                    e.tid,
                    crate::report::json_escape(&e.path),
                    e.seq
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }

    /// A self-profiling flame summary: inclusive and exclusive wall time
    /// per span path, depth-first. Exclusive time is the span's own time
    /// minus its children's inclusive time (clamped at zero — child
    /// guards time themselves, so rounding can make the sum exceed the
    /// parent by nanoseconds). The `%incl` column is relative to the sum
    /// of root spans.
    pub fn flame_text(&self) -> String {
        let root_total: u64 = self.spans.iter().map(|n| n.total_ns).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>7} {:>8}  path",
            "incl_ms", "excl_ms", "%incl", "count"
        );
        fn walk(out: &mut String, nodes: &[SpanNode], root_total: u64) {
            for n in nodes {
                let child_ns: u64 = n.children.iter().map(|c| c.total_ns).sum();
                let excl = n.total_ns.saturating_sub(child_ns);
                let pct = if root_total == 0 {
                    0.0
                } else {
                    100.0 * n.total_ns as f64 / root_total as f64
                };
                let _ = writeln!(
                    out,
                    "{:>12.3} {:>12.3} {:>6.1}% {:>8}  {}",
                    n.total_ns as f64 / 1e6,
                    excl as f64 / 1e6,
                    pct,
                    n.count,
                    n.path
                );
                walk(out, &n.children, root_total);
            }
        }
        walk(&mut out, &self.spans, root_total);
        out
    }

    /// Fraction of the span at `path` whose inclusive time is covered by
    /// its direct children (1.0 for a leaf-free... a leaf). Used by the
    /// acceptance test: the session root must not hide a giant
    /// unaccounted gap.
    pub fn span_coverage(&self, path: &str) -> Option<f64> {
        let node = self.find_span(path)?;
        if node.total_ns == 0 {
            return Some(1.0);
        }
        let child_ns: u64 = node.children.iter().map(|c| c.total_ns).sum();
        Some((child_ns.min(node.total_ns)) as f64 / node.total_ns as f64)
    }
}

/// The trace's total recorded event count — a convenience for smoke
/// assertions without reaching into the struct.
pub fn event_count(trace: &TraceData) -> usize {
    trace.events.len()
}

/// Write `contents` to `path`, non-fatally: on failure, emit a
/// `fault.obs_export_failed` counter (into whatever recorder is installed
/// at that moment) and a stderr warning. Returns `true` on success.
pub fn write_export(path: &str, contents: &str, what: &str) -> bool {
    match std::fs::write(path, contents) {
        Ok(()) => true,
        Err(err) => {
            crate::counter("fault.obs_export_failed", 1);
            eprintln!("hinn-obs: failed to write {what} to {path:?}: {err} (ignored)");
            false
        }
    }
}

/// Export `report` per the `HINN_OBS_EXPORT` / `HINN_OBS_TRACE`
/// environment variables (see module docs). Failures are non-fatal.
pub fn export_env(report: &TelemetryReport) {
    if let Ok(path) = std::env::var("HINN_OBS_EXPORT") {
        if !path.is_empty() {
            write_export(&path, &report.to_json(), "telemetry JSON");
        }
    }
    if let Ok(path) = std::env::var("HINN_OBS_TRACE") {
        if !path.is_empty() {
            write_export(&path, &report.to_chrome_trace(), "chrome trace");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder as _, SessionRecorder};

    fn traced_report() -> TelemetryReport {
        let rec = SessionRecorder::with_trace();
        rec.enter_span("session");
        rec.enter_span("minor");
        rec.exit_span("minor", 600_000);
        rec.enter_span("minor");
        rec.exit_span("minor", 400_000);
        rec.exit_span("session", 1_000_000);
        rec.report()
    }

    #[test]
    fn chrome_trace_is_balanced_and_has_events() {
        let r = traced_report();
        let json = r.to_chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"path\": \"session/minor\""));
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert_eq!(event_count(r.trace.as_ref().unwrap()), 3);
    }

    #[test]
    fn untraced_report_still_renders_a_valid_trace() {
        let rec = SessionRecorder::new();
        rec.enter_span("a");
        rec.exit_span("a", 10);
        let r = rec.report();
        assert!(r.trace.is_none());
        let json = r.to_chrome_trace();
        assert!(json.contains("\"traceEvents\""));
    }

    #[test]
    fn flame_exclusive_subtracts_children() {
        let r = traced_report();
        let flame = r.flame_text();
        assert!(flame.contains("session/minor"), "{flame}");
        // session: 1.0 ms inclusive, 1.0 − 0.6 − 0.4 = 0.0 ms exclusive.
        let session_line = flame
            .lines()
            .find(|l| l.trim_end().ends_with(" session"))
            .expect("session row");
        assert!(session_line.contains("1.000"), "{session_line}");
        assert!(session_line.contains("0.000"), "{session_line}");
    }

    #[test]
    fn coverage_of_fully_spanned_root_is_one() {
        let r = traced_report();
        let cov = r.span_coverage("session").unwrap();
        assert!((cov - 1.0).abs() < 1e-9, "coverage {cov}");
        assert_eq!(r.span_coverage("missing"), None);
    }

    #[test]
    fn failed_export_is_nonfatal() {
        let ok = write_export(
            "/nonexistent-dir-hinn-obs/test.json",
            "{}",
            "telemetry JSON",
        );
        assert!(!ok, "write into a missing directory must fail");
        // No panic is the contract; the counter lands only if a recorder
        // is installed, which this test deliberately does not require.
    }
}
