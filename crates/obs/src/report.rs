//! The exported telemetry report: a deterministic snapshot of one
//! session's spans, counters, gauges, and histograms, renderable as JSON
//! (machine-readable, schema-stable) or pretty text (human-readable).
//!
//! All collections are `BTreeMap`s and span children are sorted by name,
//! so two reports with the same *structure* always serialize their keys in
//! the same order — the workspace golden test pins the schema (the set of
//! span paths and metric names) without pinning the timing values, which
//! are inherently machine-dependent.

use crate::session::SpanStat;
use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// JSON schema version stamped into every export; bump when the report
/// shape changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// Aggregate of one histogram metric: count/sum/min/max plus a
/// [`QuantileSketch`] so every observed metric reports p50/p90/p99 with
/// the sketch's documented relative error bound
/// ([`crate::sketch::DEFAULT_ALPHA`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Deterministic quantile sketch over the observations.
    pub sketch: QuantileSketch,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sketch: QuantileSketch::default(),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sketch.record(value);
    }

    /// Merge another accumulator into this one. The sketch merge is
    /// exact: the merged histogram's quantiles equal those of a single
    /// histogram fed the concatenated stream.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sketch.merge(&other.sketch);
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile of the observations within the sketch's relative
    /// error bound (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        self.sketch.quantile(q).unwrap_or(0.0)
    }

    /// Median (p50) within the sketch error bound (0 when empty).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile within the sketch error bound (0 when empty).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile within the sketch error bound (0 when empty).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// One node of the merged span tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name (the last path segment).
    pub name: String,
    /// Full `/`-joined path from the root.
    pub path: String,
    /// How many times this span was entered and exited.
    pub count: u64,
    /// Total monotonic nanoseconds across all entries.
    pub total_ns: u64,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

/// Aggregate effectiveness of the session-level memoization caches,
/// derived from the `cache.hit` / `cache.miss` / `cache.evict` counters
/// that `hinn-cache` emits. All zero when no cache was active.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to the compute closure.
    pub misses: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }
}

/// A deterministic snapshot of one session's telemetry (see module docs).
#[derive(Clone, Debug, Default)]
pub struct TelemetryReport {
    /// Root spans (paths with no parent), sorted by name.
    pub spans: Vec<SpanNode>,
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (last write wins).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-occurrence span timeline, present when the recorder ran in
    /// flight-recorder mode ([`crate::SessionRecorder::with_trace`]).
    pub trace: Option<crate::trace::TraceData>,
}

impl TelemetryReport {
    /// Build a report from flat aggregates (used by
    /// [`crate::SessionRecorder::report`]).
    pub(crate) fn assemble(
        spans: BTreeMap<String, SpanStat>,
        counters: BTreeMap<String, u64>,
        gauges: BTreeMap<String, f64>,
        histograms: BTreeMap<String, Histogram>,
    ) -> Self {
        let mut roots: Vec<SpanNode> = Vec::new();
        // BTreeMap iteration is lexicographic, so every parent path sorts
        // before its children and insertion always finds the parent (or
        // synthesizes it for an orphan path recorded on a worker thread).
        for (path, stat) in &spans {
            insert_span(&mut roots, path, *stat);
        }
        Self {
            spans: roots,
            counters,
            gauges,
            histograms,
            trace: None,
        }
    }

    /// The counter's value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The session's cache effectiveness (see [`CacheStats`]).
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counter("cache.hit"),
            misses: self.counter("cache.miss"),
            evictions: self.counter("cache.evict"),
        }
    }

    /// Find a span node by its full `/`-joined path.
    pub fn find_span(&self, path: &str) -> Option<&SpanNode> {
        let mut nodes = &self.spans;
        let mut found: Option<&SpanNode> = None;
        for segment in path.split('/') {
            found = nodes.iter().find(|n| n.name == segment);
            nodes = match found {
                Some(node) => &node.children,
                None => return None,
            };
        }
        found
    }

    /// Every span path in the report, depth-first, children in name order.
    pub fn span_paths(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(nodes: &[SpanNode], out: &mut Vec<String>) {
            for n in nodes {
                out.push(n.path.clone());
                walk(&n.children, out);
            }
        }
        walk(&self.spans, &mut out);
        out
    }

    /// The report's *schema*: every span path and metric name, one per
    /// line, values elided. Timing values are machine-dependent, so golden
    /// tests pin this structure instead of the raw export.
    pub fn schema(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "schema_version: {SCHEMA_VERSION}");
        for path in self.span_paths() {
            let _ = writeln!(out, "span: {path}");
        }
        for name in self.counters.keys() {
            let _ = writeln!(out, "counter: {name}");
        }
        for name in self.gauges.keys() {
            let _ = writeln!(out, "gauge: {name}");
        }
        for name in self.histograms.keys() {
            let _ = writeln!(out, "histogram: {name}");
        }
        out
    }

    /// The span tree's *structure* — paths, parentage (as indentation),
    /// and entry counts, but no wall times — one node per line. This is
    /// what the workspace golden `tests/golden/trace_tree.txt` pins:
    /// structure is deterministic for a deterministic workload, timings
    /// never are.
    pub fn span_tree_text(&self) -> String {
        let mut out = String::new();
        fn walk(out: &mut String, nodes: &[SpanNode], depth: usize) {
            for n in nodes {
                let _ = writeln!(
                    out,
                    "{:indent$}{} x{}",
                    "",
                    n.name,
                    n.count,
                    indent = depth * 2
                );
                walk(out, &n.children, depth + 1);
            }
        }
        walk(&mut out, &self.spans, 0);
        out
    }

    /// Machine-readable JSON export (stable key order; see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        out.push_str("  \"spans\": [");
        for (i, node) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('\n');
            json_span(&mut out, node, 2);
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        json_map(&mut out, "counters", &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str(",\n");
        json_map(&mut out, "gauges", &self.gauges, |out, v| {
            let _ = write!(out, "{}", json_f64(*v));
        });
        out.push_str(",\n");
        json_map(&mut out, "histograms", &self.histograms, |out, h| {
            let _ = write!(
                out,
                "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count,
                json_f64(h.sum),
                json_f64(if h.count == 0 { 0.0 } else { h.min }),
                json_f64(if h.count == 0 { 0.0 } else { h.max }),
                json_f64(h.p50()),
                json_f64(h.p90()),
                json_f64(h.p99())
            );
        });
        out.push_str("\n}\n");
        out
    }

    /// Human-readable report: the span tree with per-span timings, then
    /// counters, gauges, and histograms.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "telemetry report");
        let _ = writeln!(out, "----------------");
        if self.spans.is_empty() {
            let _ = writeln!(out, "(no spans recorded)");
        }
        fn walk(out: &mut String, nodes: &[SpanNode], depth: usize) {
            for n in nodes {
                let _ = writeln!(
                    out,
                    "{:indent$}{:<32} {:>7}x  {:>12.3} ms",
                    "",
                    n.name,
                    n.count,
                    n.total_ns as f64 / 1e6,
                    indent = depth * 2
                );
                walk(out, &n.children, depth + 1);
            }
        }
        walk(&mut out, &self.spans, 0);
        let cache = self.cache_stats();
        if cache.lookups() > 0 {
            let _ = writeln!(
                out,
                "cache: {} hits / {} lookups ({:.1}% hit rate), {} evictions",
                cache.hits,
                cache.lookups(),
                100.0 * cache.hit_rate(),
                cache.evictions
            );
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "counters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<38} {v}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "gauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<38} {v}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "histograms:");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<38} n={} mean={:.3} min={:.3} max={:.3} \
                     p50={:.3} p90={:.3} p99={:.3}",
                    h.count,
                    h.mean(),
                    if h.count == 0 { 0.0 } else { h.min },
                    if h.count == 0 { 0.0 } else { h.max },
                    h.p50(),
                    h.p90(),
                    h.p99()
                );
            }
        }
        out
    }
}

/// Insert `stat` at `path` into the span forest, creating intermediate
/// nodes (with zero stats) for orphan paths if needed.
fn insert_span(roots: &mut Vec<SpanNode>, path: &str, stat: SpanStat) {
    let mut nodes = roots;
    let mut prefix = String::new();
    let segments: Vec<&str> = path.split('/').collect();
    for (depth, segment) in segments.iter().enumerate() {
        if !prefix.is_empty() {
            prefix.push('/');
        }
        prefix.push_str(segment);
        let pos = match nodes.iter().position(|n| n.name == *segment) {
            Some(p) => p,
            None => {
                let node = SpanNode {
                    name: (*segment).to_string(),
                    path: prefix.clone(),
                    count: 0,
                    total_ns: 0,
                    children: Vec::new(),
                };
                // Keep siblings sorted by name for deterministic output.
                let p = nodes
                    .binary_search_by(|n| n.name.as_str().cmp(segment))
                    .unwrap_err();
                nodes.insert(p, node);
                p
            }
        };
        if depth + 1 == segments.len() {
            nodes[pos].count += stat.count;
            nodes[pos].total_ns += stat.total_ns;
            return;
        }
        nodes = &mut nodes[pos].children;
    }
}

/// Render an f64 as JSON (finite values only; non-finite become null).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escape a string for a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render one span node (and its children) as a JSON object.
fn json_span(out: &mut String, node: &SpanNode, depth: usize) {
    let pad = "  ".repeat(depth);
    let _ = write!(
        out,
        "{pad}{{\"name\": \"{}\", \"path\": \"{}\", \"count\": {}, \"total_ns\": {}, \"children\": [",
        json_escape(&node.name),
        json_escape(&node.path),
        node.count,
        node.total_ns
    );
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        json_span(out, child, depth + 1);
    }
    if !node.children.is_empty() {
        out.push('\n');
        out.push_str(&pad);
    }
    out.push_str("]}");
}

/// Render a named map as a JSON object with one writer per value.
fn json_map<V>(
    out: &mut String,
    key: &str,
    map: &BTreeMap<String, V>,
    write_value: impl Fn(&mut String, &V),
) {
    let _ = write!(out, "  \"{key}\": {{");
    for (i, (name, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": ", json_escape(name));
        write_value(out, v);
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetryReport {
        let mut spans = BTreeMap::new();
        spans.insert(
            "a".to_string(),
            SpanStat {
                count: 1,
                total_ns: 100,
            },
        );
        spans.insert(
            "a/b".to_string(),
            SpanStat {
                count: 2,
                total_ns: 40,
            },
        );
        spans.insert(
            "a/c".to_string(),
            SpanStat {
                count: 1,
                total_ns: 10,
            },
        );
        let mut counters = BTreeMap::new();
        counters.insert("points".to_string(), 42u64);
        let mut gauges = BTreeMap::new();
        gauges.insert("alive".to_string(), 17.0);
        let mut hists = BTreeMap::new();
        let mut h = Histogram::default();
        h.push(1.0);
        h.push(3.0);
        hists.insert("sizes".to_string(), h);
        TelemetryReport::assemble(spans, counters, gauges, hists)
    }

    #[test]
    fn cache_stats_derive_from_counters_and_render() {
        let empty = sample();
        assert_eq!(empty.cache_stats(), CacheStats::default());
        assert_eq!(empty.cache_stats().hit_rate(), 0.0);
        assert!(
            !empty.to_text().contains("cache:"),
            "no cache section without cache counters"
        );

        let mut counters = BTreeMap::new();
        counters.insert("cache.hit".to_string(), 6u64);
        counters.insert("cache.miss".to_string(), 2u64);
        counters.insert("cache.evict".to_string(), 1u64);
        let r =
            TelemetryReport::assemble(BTreeMap::new(), counters, BTreeMap::new(), BTreeMap::new());
        let stats = r.cache_stats();
        assert_eq!(
            stats,
            CacheStats {
                hits: 6,
                misses: 2,
                evictions: 1
            }
        );
        assert_eq!(stats.lookups(), 8);
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        let text = r.to_text();
        assert!(
            text.contains("cache: 6 hits / 8 lookups (75.0% hit rate), 1 evictions"),
            "unexpected rendering: {text}"
        );
    }

    #[test]
    fn span_tree_structure() {
        let r = sample();
        assert_eq!(r.spans.len(), 1);
        assert_eq!(r.spans[0].children.len(), 2);
        assert_eq!(r.find_span("a/b").map(|n| n.count), Some(2));
        assert_eq!(r.find_span("a/c").map(|n| n.total_ns), Some(10));
        assert!(r.find_span("a/missing").is_none());
        assert_eq!(r.span_paths(), vec!["a", "a/b", "a/c"]);
    }

    #[test]
    fn orphan_path_synthesizes_parent() {
        let mut spans = BTreeMap::new();
        spans.insert(
            "x/y".to_string(),
            SpanStat {
                count: 3,
                total_ns: 9,
            },
        );
        let r = TelemetryReport::assemble(spans, BTreeMap::new(), BTreeMap::new(), BTreeMap::new());
        let x = r.find_span("x").expect("synthesized parent");
        assert_eq!(x.count, 0);
        assert_eq!(r.find_span("x/y").map(|n| n.count), Some(3));
    }

    #[test]
    fn json_is_well_formed_and_stable() {
        let r = sample();
        let json = r.to_json();
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"path\": \"a/b\""));
        assert!(json.contains("\"points\": 42"));
        assert!(json.contains("\"sizes\": {\"count\": 2"));
        // Balanced braces/brackets (cheap well-formedness check).
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
        assert_eq!(json, sample().to_json(), "export must be deterministic");
    }

    #[test]
    fn schema_lists_structure_without_values() {
        let s = sample().schema();
        assert!(s.contains("span: a/b"));
        assert!(s.contains("counter: points"));
        assert!(s.contains("gauge: alive"));
        assert!(s.contains("histogram: sizes"));
        assert!(!s.contains("42"), "schema must not contain values");
    }

    #[test]
    fn text_report_renders_all_sections() {
        let t = sample().to_text();
        assert!(t.contains("telemetry report"));
        assert!(t.contains('a'));
        assert!(t.contains("counters:"));
        assert!(t.contains("gauges:"));
        assert!(t.contains("histograms:"));
        assert!(t.contains("mean=2.000"));
    }

    #[test]
    fn histogram_accumulates() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.push(2.0);
        h.push(6.0);
        assert_eq!(h.count, 2);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        let mut other = Histogram::default();
        other.push(-1.0);
        h.merge(&other);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, -1.0);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
