//! Telemetry regression diffing: compare two telemetry JSON exports and
//! flag counter deltas and percentile drift — the library behind the
//! `obs_diff` bin and the CI `telemetry-gate` job.
//!
//! # Comparison model
//!
//! * **Counters** are deterministic for a fixed workload (the invariance
//!   tests prove they are independent of thread budget and recorder
//!   mode), so the default counter tolerance is **zero**: any drift in
//!   e.g. `kde.points_scanned` or `index.dist_evals` means the
//!   computation itself changed and the gate should fail loudly.
//! * **Quantiles** (`p50`/`p99` of each histogram) are wall-clock
//!   measurements. Two honest runs differ by machine noise, and each
//!   sketch already carries a relative error of α
//!   ([`crate::sketch::DEFAULT_ALPHA`]). A quantile regresses when
//!   `|current − baseline| > (2α + tolerance) · max(current, baseline)` —
//!   the `2α` term absorbs worst-case sketch error on both sides, the
//!   tolerance absorbs noise and is the knob CI documents.
//! * Keys present on only one side are reported as **notes**, not
//!   regressions: schema growth is pinned by the golden schema test, not
//!   by the perf gate.
//!
//! The parser below is a minimal recursive-descent JSON reader for the
//! crate's own stable exports (zero dependencies, like everything else
//! in this workspace).

use crate::sketch::DEFAULT_ALPHA;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// Minimal JSON parsing (for our own exports).
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the raw UTF-8 run up to the next quote/escape.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"') | Some(b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

/// Parse a JSON document (sufficient for the crate's own exports).
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Telemetry summaries and diffing.
// ---------------------------------------------------------------------

/// The percentile summary of one histogram, as read from an export.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
}

/// The diff-relevant slice of one telemetry export.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySummary {
    /// Counter values by name.
    pub counters: BTreeMap<String, f64>,
    /// Histogram percentile summaries by name.
    pub histograms: BTreeMap<String, HistSummary>,
}

impl TelemetrySummary {
    /// Extract the summary from a `TelemetryReport::to_json` export.
    pub fn parse(json: &str) -> Result<Self, String> {
        let root = parse_json(json)?;
        let mut out = Self::default();
        if let Some(JsonValue::Obj(members)) = root.get("counters") {
            for (name, v) in members {
                if let Some(n) = v.as_f64() {
                    out.counters.insert(name.clone(), n);
                }
            }
        }
        if let Some(JsonValue::Obj(members)) = root.get("histograms") {
            for (name, h) in members {
                let f = |key: &str| h.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
                out.histograms.insert(
                    name.clone(),
                    HistSummary {
                        count: f("count"),
                        p50: f("p50"),
                        p90: f("p90"),
                        p99: f("p99"),
                        max: f("max"),
                    },
                );
            }
        }
        if out.counters.is_empty() && out.histograms.is_empty() {
            return Err("export contains no counters or histograms".to_string());
        }
        Ok(out)
    }
}

/// Tolerances of one diff run (see module docs for the model).
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Compare counters at all?
    pub check_counters: bool,
    /// Relative tolerance on counters (0.0 = exact, the default).
    pub counter_tol: f64,
    /// Compare histogram quantiles at all?
    pub check_quantiles: bool,
    /// Extra relative tolerance on quantiles, on top of `2·alpha`.
    pub quantile_tol: f64,
    /// The sketch's documented relative error α.
    pub alpha: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            check_counters: true,
            counter_tol: 0.0,
            check_quantiles: true,
            quantile_tol: 0.25,
            alpha: DEFAULT_ALPHA,
        }
    }
}

/// One comparison result.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Metric identifier (`counter:name` or `quantile:name.p99`).
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Does this finding fail the gate?
    pub regression: bool,
    /// Human-readable explanation.
    pub message: String,
}

/// The result of diffing two exports.
#[derive(Clone, Debug, Default)]
pub struct TelemetryDiff {
    /// Per-metric comparisons that were actually performed.
    pub findings: Vec<Finding>,
    /// Non-fatal observations (keys present on only one side, etc.).
    pub notes: Vec<String>,
}

impl TelemetryDiff {
    /// `true` when any finding fails the gate.
    pub fn has_regression(&self) -> bool {
        self.findings.iter().any(|f| f.regression)
    }

    /// Only the failing findings.
    pub fn regressions(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.regression)
    }

    /// Render the diff for terminal output.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let n_reg = self.regressions().count();
        for f in &self.findings {
            if f.regression {
                let _ = writeln!(out, "REGRESSION {}", f.message);
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        let _ = writeln!(
            out,
            "{} metrics compared, {} regression(s), {} note(s)",
            self.findings.len(),
            n_reg,
            self.notes.len()
        );
        out
    }
}

/// Relative drift check: `|a − b| > tol · max(|a|, |b|)`.
fn drifts(baseline: f64, current: f64, tol: f64) -> bool {
    let scale = baseline.abs().max(current.abs());
    (current - baseline).abs() > tol * scale
}

/// Compare `current` against `baseline` (see module docs for the model).
pub fn diff(
    baseline: &TelemetrySummary,
    current: &TelemetrySummary,
    opts: &DiffOptions,
) -> TelemetryDiff {
    let mut out = TelemetryDiff::default();
    if opts.check_counters {
        for (name, &b) in &baseline.counters {
            match current.counters.get(name) {
                None => out
                    .notes
                    .push(format!("counter {name} missing from current")),
                Some(&c) => {
                    let bad = if opts.counter_tol == 0.0 {
                        b != c
                    } else {
                        drifts(b, c, opts.counter_tol)
                    };
                    out.findings.push(Finding {
                        metric: format!("counter:{name}"),
                        baseline: b,
                        current: c,
                        regression: bad,
                        message: format!(
                            "counter {name}: baseline {b}, current {c} (tolerance {})",
                            opts.counter_tol
                        ),
                    });
                }
            }
        }
        for name in current.counters.keys() {
            if !baseline.counters.contains_key(name) {
                out.notes
                    .push(format!("counter {name} missing from baseline"));
            }
        }
    }
    if opts.check_quantiles {
        let tol = 2.0 * opts.alpha + opts.quantile_tol;
        for (name, b) in &baseline.histograms {
            match current.histograms.get(name) {
                None => out
                    .notes
                    .push(format!("histogram {name} missing from current")),
                Some(c) => {
                    for (q, bv, cv) in [
                        ("p50", b.p50, c.p50),
                        ("p90", b.p90, c.p90),
                        ("p99", b.p99, c.p99),
                    ] {
                        out.findings.push(Finding {
                            metric: format!("quantile:{name}.{q}"),
                            baseline: bv,
                            current: cv,
                            regression: drifts(bv, cv, tol),
                            message: format!(
                                "{name}.{q}: baseline {bv:.3}, current {cv:.3} \
                                 (allowed drift {:.0}% = 2α + tolerance)",
                                tol * 100.0
                            ),
                        });
                    }
                }
            }
        }
        for name in current.histograms.keys() {
            if !baseline.histograms.contains_key(name) {
                out.notes
                    .push(format!("histogram {name} missing from baseline"));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(p99: f64) -> TelemetrySummary {
        let mut s = TelemetrySummary::default();
        s.counters.insert("kde.points_scanned".to_string(), 1000.0);
        s.histograms.insert(
            "batch.query_ms".to_string(),
            HistSummary {
                count: 10.0,
                p50: 1.0,
                p90: 2.0,
                p99,
                max: p99,
            },
        );
        s
    }

    #[test]
    fn parser_round_trips_an_export() {
        let rec = crate::SessionRecorder::new();
        use crate::Recorder as _;
        rec.add("a.count", 7);
        rec.observe("lat", 3.5);
        rec.observe("lat", 4.5);
        let json = rec.report().to_json();
        let s = TelemetrySummary::parse(&json).expect("parse own export");
        assert_eq!(s.counters.get("a.count"), Some(&7.0));
        let h = s.histograms.get("lat").expect("lat histogram");
        assert_eq!(h.count, 2.0);
        assert!(h.p50 > 0.0 && h.p99 >= h.p50);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\": ").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(TelemetrySummary::parse("{}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_types() {
        let v = parse_json(r#"{"s": "a\n\"bA", "x": [1, -2.5e1, true, null]}"#).unwrap();
        assert_eq!(v.get("s"), Some(&JsonValue::Str("a\n\"bA".to_string())));
        let arr = match v.get("x") {
            Some(JsonValue::Arr(a)) => a,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr[1], JsonValue::Num(-25.0));
    }

    #[test]
    fn self_diff_is_clean() {
        let s = summary(5.0);
        let d = diff(&s, &s, &DiffOptions::default());
        assert!(!d.has_regression(), "{}", d.to_text());
        assert!(d.notes.is_empty());
    }

    #[test]
    fn doubled_p99_is_a_regression() {
        let d = diff(&summary(5.0), &summary(10.0), &DiffOptions::default());
        assert!(d.has_regression());
        let reg: Vec<_> = d.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].metric, "quantile:batch.query_ms.p99");
    }

    #[test]
    fn counter_drift_is_exact_by_default() {
        let mut cur = summary(5.0);
        cur.counters
            .insert("kde.points_scanned".to_string(), 1001.0);
        let d = diff(&summary(5.0), &cur, &DiffOptions::default());
        assert!(d.has_regression());
        let no_counters = DiffOptions {
            check_counters: false,
            ..DiffOptions::default()
        };
        assert!(!diff(&summary(5.0), &cur, &no_counters).has_regression());
    }

    #[test]
    fn missing_keys_are_notes_not_regressions() {
        let mut cur = summary(5.0);
        cur.counters.insert("new.counter".to_string(), 3.0);
        cur.histograms.remove("batch.query_ms");
        let d = diff(&summary(5.0), &cur, &DiffOptions::default());
        assert!(!d.has_regression(), "{}", d.to_text());
        assert_eq!(d.notes.len(), 2, "{:?}", d.notes);
    }
}
