//! Structured tracing, typed metrics, and session telemetry — the offline
//! analogue of the `tracing` + `metrics` crates, in the same spirit as this
//! workspace's in-repo `rand`/`proptest`/`criterion` stand-ins (no registry
//! access, no external dependencies).
//!
//! The interactive loop of the paper is a pipeline of measurable phases —
//! PCA eigenranking (Fig. 4), KDE grid accumulation (Fig. 5), density
//! connection (Def. 2.2), count and meaningfulness updates (Figs. 7–8) —
//! and the ROADMAP's "fast as the hardware allows" goal needs per-phase
//! visibility before any further performance work can be measured honestly.
//! This crate provides:
//!
//! 1. **Hierarchical spans** with monotonic timings: [`span`] returns an
//!    RAII guard; nested spans form a tree keyed by `/`-joined paths
//!    (`search.session/search.major/search.minor/kde.profile/...`).
//! 2. **Typed counters, gauges and histograms**: [`counter`], [`gauge`],
//!    [`observe`] — points scanned, grid cells touched, eigenpairs
//!    computed, par chunks dispatched, candidate-set sizes.
//! 3. **A per-session telemetry report** ([`TelemetryReport`]) exported as
//!    JSON and pretty text, collected by the thread-sharded
//!    [`SessionRecorder`] and merged deterministically.
//!
//! # Zero cost when disabled
//!
//! Instrumentation dispatches through a process-global [`Recorder`] slot,
//! exactly like the `log` crate's facade. When no recorder is installed
//! (the default) every instrumentation call is a single relaxed atomic
//! load and an early return — no clock reads, no allocation, no locking.
//! Installing a recorder **must not change any computed result**: the
//! workspace-level `tests/obs_invariance.rs` proves complete interactive
//! sessions are bit-identical (`f64::to_bits`) with telemetry on vs. off.
//!
//! # Usage
//!
//! ```
//! use hinn_obs::{SessionRecorder, span};
//! use std::sync::Arc;
//!
//! let recorder = Arc::new(SessionRecorder::new());
//! {
//!     let _session = hinn_obs::install(recorder.clone());
//!     {
//!         let _outer = span!("kde.profile");
//!         let _inner = span!("kde.estimate_grid");
//!         hinn_obs::counter("kde.points_scanned", 5000);
//!     }
//! } // recorder uninstalled here
//! let report = recorder.report();
//! assert_eq!(report.counter("kde.points_scanned"), 5000);
//! assert!(report.find_span("kde.profile/kde.estimate_grid").is_some());
//! println!("{}", report.to_text());
//! ```
//!
//! Installation is scoped and serialized: [`install`] holds a global lock
//! for the lifetime of the returned guard, so concurrent tests cannot
//! interleave two recorders (they queue instead).

pub mod diff;
pub mod export;
pub mod report;
pub mod session;
pub mod sketch;
pub mod trace;

pub use export::export_env;
pub use report::{CacheStats, Histogram, SpanNode, TelemetryReport};
pub use session::SessionRecorder;
pub use sketch::QuantileSketch;
pub use trace::{TraceData, TraceEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// A sink for instrumentation events. Implementations must be cheap and
/// thread-safe: events arrive from every worker thread of the parallel hot
/// paths. [`SessionRecorder`] is the batteries-included implementation;
/// the trait exists so deployments can bridge to their own telemetry.
pub trait Recorder: Send + Sync {
    /// A span named `name` opened on the calling thread.
    fn enter_span(&self, name: &'static str);
    /// The innermost open span named `name` closed after `nanos`
    /// monotonic nanoseconds on the calling thread.
    fn exit_span(&self, name: &'static str, nanos: u64);
    /// Add `delta` to the monotonic counter `name`.
    fn add(&self, name: &'static str, delta: u64);
    /// Set the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: f64);
    /// Record one observation of `value` into the histogram `name`.
    fn observe(&self, name: &'static str, value: f64);
}

/// Fast-path switch: `true` iff a recorder is installed. Relaxed ordering
/// is deliberate — a stale read can only skip or no-op one event around
/// the install/uninstall edge, never corrupt state.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder. Only read when [`ENABLED`] is set, so the
/// `RwLock` read never contends on the disabled path (it is never reached).
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Serializes installations: held (inside the [`InstallGuard`]) for the
/// whole lifetime of an installed recorder so overlapping sessions queue
/// rather than interleave their telemetry.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());

/// Scoped installation of a [`Recorder`] (see [`install`]). Dropping the
/// guard uninstalls the recorder and releases the global install lock.
#[must_use = "dropping the guard uninstalls the recorder immediately"]
pub struct InstallGuard {
    _lock: MutexGuard<'static, ()>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Install `recorder` as the process-global telemetry sink until the
/// returned guard is dropped. Blocks if another recorder is currently
/// installed (installations are serialized, never nested).
pub fn install(recorder: Arc<dyn Recorder>) -> InstallGuard {
    let lock = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    *RECORDER.write().unwrap_or_else(|e| e.into_inner()) = Some(recorder);
    ENABLED.store(true, Ordering::SeqCst);
    InstallGuard { _lock: lock }
}

/// `true` iff a recorder is currently installed. One relaxed atomic load —
/// this is the entire cost of every instrumentation point when telemetry
/// is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Run `f` against the installed recorder, if any.
#[inline]
fn with(f: impl FnOnce(&dyn Recorder)) {
    if !enabled() {
        return;
    }
    if let Ok(slot) = RECORDER.read() {
        if let Some(r) = slot.as_ref() {
            f(&**r);
        }
    }
}

/// RAII guard of one open span: created by [`span`], closes (and records
/// its elapsed monotonic time) on drop. When telemetry is disabled the
/// guard is inert — no clock is read.
#[must_use = "a span measures the scope of its guard; bind it with `let _span = ...`"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = start.elapsed().as_nanos() as u64;
            with(|r| r.exit_span(self.name, nanos));
        }
    }
}

/// Open a span named `name` on the calling thread; it closes when the
/// returned guard drops. Spans nest per thread: a span opened while
/// another is open becomes its child in the merged report.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start: None };
    }
    with(|r| r.enter_span(name));
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

/// `span!("kde.estimate_grid")` — sugar for [`span`], mirroring the
/// `tracing` crate's macro style. Bind the result: the span lasts as long
/// as the guard.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Add `delta` to the monotonic counter `name` (no-op when disabled).
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    with(|r| r.add(name, delta));
}

/// Set the gauge `name` to `value` (no-op when disabled).
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    with(|r| r.gauge(name, value));
}

/// Record one observation of `value` into the histogram `name` (no-op
/// when disabled).
#[inline]
pub fn observe(name: &'static str, value: f64) {
    with(|r| r.observe(name, value));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_ops_are_noops() {
        // May run concurrently with other tests in this crate that install
        // recorders, so only assert the no-panic contract here.
        let _s = span("test.orphan");
        counter("test.orphan_counter", 1);
        gauge("test.orphan_gauge", 1.0);
        observe("test.orphan_hist", 1.0);
    }

    #[test]
    fn install_scopes_and_uninstalls() {
        let rec = Arc::new(SessionRecorder::new());
        {
            let _g = install(rec.clone());
            assert!(enabled());
            counter("test.install", 3);
            {
                let _s = span!("test.scope");
                counter("test.install", 4);
            }
        }
        let report = rec.report();
        assert_eq!(report.counter("test.install"), 7);
        assert_eq!(report.find_span("test.scope").map(|s| s.count), Some(1));
    }

    #[test]
    fn installs_serialize_rather_than_interleave() {
        // Two threads each install their own recorder; the install lock
        // guarantees each sees exactly its own events.
        let handles: Vec<_> = (0..2)
            .map(|i| {
                std::thread::spawn(move || {
                    let rec = Arc::new(SessionRecorder::new());
                    {
                        let _g = install(rec.clone());
                        counter("test.serialized", 10 + i);
                    }
                    rec.report().counter("test.serialized")
                })
            })
            .collect();
        let mut got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![10, 11]);
    }

    #[test]
    fn span_guard_is_inert_when_disabled() {
        let g = span("test.inert");
        assert!(g.start.is_none() || enabled());
        drop(g);
    }
}
