//! Property-based robustness tests: user models must produce *valid*
//! responses on arbitrary views and never panic.

use hinn_kde::polygon::HalfPlane;
use hinn_kde::VisualProfile;
use hinn_user::{
    response_from_line, response_to_line, session_from_string, session_to_string, HeuristicUser,
    NoisyUser, PolygonUser, ScriptedUser, UserModel, UserResponse, ViewContext,
};
use proptest::prelude::*;

fn arbitrary_profile() -> impl Strategy<Value = VisualProfile> {
    (
        proptest::collection::vec((-20.0..20.0f64, -20.0..20.0f64), 2..80),
        -25.0..25.0f64,
        -25.0..25.0f64,
        8usize..40,
    )
        .prop_map(|(pts, qx, qy, grid_n)| {
            let points: Vec<[f64; 2]> = pts.into_iter().map(|(x, y)| [x, y]).collect();
            VisualProfile::build(points, [qx, qy], grid_n, 0.5)
        })
}

/// Arbitrary valid responses across all three variants, with thresholds
/// exercising awkward magnitudes (shortest-roundtrip `{:?}` printing must
/// bring every finite f64 back bit-exactly).
fn arbitrary_response() -> impl Strategy<Value = UserResponse> {
    (
        0usize..3,
        -1.0e12..1.0e12f64,
        proptest::collection::vec(
            (-100.0..100.0f64, -100.0..100.0f64, -1000.0..1000.0f64),
            1..5,
        ),
    )
        .prop_map(|(variant, tau, lines)| match variant {
            0 => UserResponse::Discard,
            1 => UserResponse::Threshold(tau.abs() * 1e-9 + 1e-12),
            _ => UserResponse::Polygon(
                lines
                    .into_iter()
                    .map(|(a, b, c)| {
                        // Keep |a|+|b| above the parser's degeneracy floor.
                        HalfPlane::new(if a.abs() < 1e-3 { 1.0 } else { a }, b, c)
                    })
                    .collect(),
            ),
        })
}

fn ctx_for(profile: &VisualProfile) -> ViewContext {
    ViewContext {
        major: 0,
        minor: 0,
        original_ids: (0..profile.points.len()).collect(),
        total_n: profile.points.len(),
    }
}

/// A threshold response must be positive and at most the view's peak —
/// anything else is un-actionable for the search loop.
fn assert_valid(profile: &VisualProfile, r: &UserResponse) {
    match r {
        UserResponse::Threshold(tau) => {
            assert!(tau.is_finite(), "non-finite τ");
            assert!(*tau > 0.0, "non-positive τ");
            assert!(
                *tau <= profile.max_density() * (1.0 + 1e-9),
                "τ above the peak"
            );
        }
        UserResponse::Polygon(lines) => {
            assert!(!lines.is_empty(), "empty polygon");
        }
        UserResponse::Discard => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn heuristic_is_total_and_valid(profile in arbitrary_profile()) {
        let mut user = HeuristicUser::default();
        let r = user.respond(&profile, &ctx_for(&profile));
        assert_valid(&profile, &r);
    }

    #[test]
    fn polygon_user_is_total_and_valid(profile in arbitrary_profile()) {
        let mut user = PolygonUser::default();
        let r = user.respond(&profile, &ctx_for(&profile));
        assert_valid(&profile, &r);
        // A polygon answer must actually contain the query's region.
        if let UserResponse::Polygon(lines) = &r {
            let picked = profile.select_polygon(lines);
            prop_assert!(!picked.is_empty(), "polygon selected nothing");
        }
    }

    #[test]
    fn noisy_wrapper_preserves_validity(profile in arbitrary_profile(), seed in 0u64..1000) {
        let mut user = NoisyUser::new(HeuristicUser::default(), seed).with_rates(0.5, 0.3, 0.3);
        for _ in 0..3 {
            let r = user.respond(&profile, &ctx_for(&profile));
            assert_valid(&profile, &r);
        }
    }

    #[test]
    fn heuristic_is_deterministic(profile in arbitrary_profile()) {
        let mut a = HeuristicUser::default();
        let mut b = HeuristicUser::default();
        let ra = a.respond(&profile, &ctx_for(&profile));
        let rb = b.respond(&profile, &ctx_for(&profile));
        prop_assert_eq!(ra, rb);
    }

    /// The `hinn-session v1` wire format round-trips any session log
    /// exactly: line-level and session-level serialization agree, and a
    /// replaying user reproduces the recorded responses bit-for-bit.
    #[test]
    fn wire_format_roundtrips_any_session(
        log in proptest::collection::vec(arbitrary_response(), 0..12),
        profile in arbitrary_profile(),
    ) {
        for r in &log {
            let back = response_from_line(&response_to_line(r)).expect("line parse");
            prop_assert_eq!(&back, r);
        }
        let text = session_to_string(&log);
        prop_assert!(text.starts_with("hinn-session v1\n"), "header missing: {}", text);
        let mut replay = session_from_string(&text).expect("session parse");
        let ctx = ctx_for(&profile);
        for want in &log {
            prop_assert_eq!(&replay.respond(&profile, &ctx), want);
        }
        // Serializing the replayed session reproduces the text byte-for-byte.
        prop_assert_eq!(session_to_string(&log), text);
    }

    #[test]
    fn scripted_fallback_never_exhausts(profile in arbitrary_profile(), n in 0usize..5) {
        let mut user = ScriptedUser::new(
            std::iter::repeat_n(UserResponse::Threshold(0.25), n),
        );
        for i in 0..8 {
            let r = user.respond(&profile, &ctx_for(&profile));
            if i >= n {
                prop_assert_eq!(r, UserResponse::Discard);
            }
        }
    }
}
