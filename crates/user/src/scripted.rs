//! A user that replays a fixed response script — the deterministic test
//! double for the interactive loop.

use crate::{UserModel, UserResponse, ViewContext};
use hinn_kde::VisualProfile;
use std::collections::VecDeque;

/// Replays a queue of responses; once exhausted, returns a configurable
/// fallback (default: [`UserResponse::Discard`]).
///
/// ```
/// use hinn_user::{ScriptedUser, UserModel, UserResponse, ViewContext};
/// use hinn_kde::VisualProfile;
///
/// let profile = VisualProfile::build(vec![[0.0, 0.0], [1.0, 1.0]], [0.0, 0.0], 5, 1.0);
/// let ctx = ViewContext { major: 0, minor: 0, original_ids: vec![0, 1], total_n: 2 };
/// let mut user = ScriptedUser::new([UserResponse::Threshold(0.5)]);
/// assert_eq!(user.respond(&profile, &ctx), UserResponse::Threshold(0.5));
/// assert_eq!(user.respond(&profile, &ctx), UserResponse::Discard); // fallback
/// ```
#[derive(Clone, Debug)]
pub struct ScriptedUser {
    script: VecDeque<UserResponse>,
    fallback: UserResponse,
    served: usize,
}

impl ScriptedUser {
    /// Create from a response sequence.
    pub fn new(script: impl IntoIterator<Item = UserResponse>) -> Self {
        Self {
            script: script.into_iter().collect(),
            fallback: UserResponse::Discard,
            served: 0,
        }
    }

    /// Change the response used after the script runs out.
    pub fn with_fallback(mut self, fallback: UserResponse) -> Self {
        self.fallback = fallback;
        self
    }

    /// How many views this user has responded to.
    pub fn served(&self) -> usize {
        self.served
    }

    /// Number of scripted responses not yet consumed.
    pub fn remaining(&self) -> usize {
        self.script.len()
    }
}

impl UserModel for ScriptedUser {
    fn respond(&mut self, _profile: &VisualProfile, _ctx: &ViewContext) -> UserResponse {
        self.served += 1;
        self.script
            .pop_front()
            .unwrap_or_else(|| self.fallback.clone())
    }

    fn name(&self) -> &str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_profile() -> VisualProfile {
        VisualProfile::build(vec![[0.0, 0.0], [1.0, 1.0]], [0.0, 0.0], 5, 1.0)
    }

    fn ctx() -> ViewContext {
        ViewContext {
            major: 0,
            minor: 0,
            original_ids: vec![0, 1],
            total_n: 2,
        }
    }

    #[test]
    fn replays_in_order_then_falls_back() {
        let mut u = ScriptedUser::new([UserResponse::Threshold(0.5), UserResponse::Discard]);
        let p = dummy_profile();
        assert_eq!(u.respond(&p, &ctx()), UserResponse::Threshold(0.5));
        assert_eq!(u.respond(&p, &ctx()), UserResponse::Discard);
        assert_eq!(u.respond(&p, &ctx()), UserResponse::Discard, "fallback");
        assert_eq!(u.served(), 3);
        assert_eq!(u.remaining(), 0);
    }

    #[test]
    fn custom_fallback() {
        let mut u = ScriptedUser::new([]).with_fallback(UserResponse::Threshold(0.1));
        let p = dummy_profile();
        assert_eq!(u.respond(&p, &ctx()), UserResponse::Threshold(0.1));
    }
}
