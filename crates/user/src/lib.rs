//! User models: the "human" half of the paper's human–computer system.
//!
//! The interactive loop (Figs. 2, 6) needs exactly one thing from the user
//! per projection: *where to put the density separator* `τ` — or the
//! decision to dismiss the view ("specifying an arbitrarily high value of
//! the noise threshold", §2.2). [`UserModel`] captures that interface, and
//! this crate ships several implementations:
//!
//! * [`HeuristicUser`] — the default *simulated* human: operates only on
//!   the rendered [`VisualProfile`] (densities the way a person would see
//!   them), dismisses views where the query sits in a sparse region
//!   (Fig. 1(b)) or the view has no contrast (Fig. 1(c)), and otherwise
//!   places the separator at the most *persistent* cluster threshold — the
//!   analogue of a person scrubbing the separator plane until the cluster
//!   outline stabilizes.
//! * [`NoisyUser`] — wraps any user with human imprecision: jittered
//!   thresholds, occasional wrong dismissals, occasional acceptance of a
//!   poor view.
//! * [`OracleUser`] — knows the ground-truth relevant set and picks the
//!   best achievable threshold; an upper bound for calibration, never used
//!   in headline results.
//! * [`ScriptedUser`] — replays a fixed response sequence (deterministic
//!   tests).
//! * [`TerminalUser`] — a *real* human: renders the profile as an ANSI/
//!   ASCII heatmap and reads the threshold from an input stream.
//! * [`RecordingUser`] — wraps any of the above and records the session's
//!   responses, which serialize ([`session_to_string`]) and replay
//!   ([`session_from_string`]) exactly.
//!
//! Simulated users exist because this reproduction cannot ship the paper's
//! human-subject loop (see DESIGN.md's substitution table); the terminal
//! user preserves the genuine human-in-the-loop path.

pub mod heuristic;
pub mod noisy;
pub mod oracle;
pub mod polygon_user;
pub mod recording;
pub mod scripted;
pub mod terminal;

use hinn_kde::polygon::HalfPlane;
use hinn_kde::VisualProfile;

pub use heuristic::{HeuristicUser, HeuristicUserConfig};
pub use noisy::NoisyUser;
pub use oracle::OracleUser;
pub use polygon_user::PolygonUser;
pub use recording::{
    response_from_line, response_to_line, session_from_string, session_to_string, RecordingUser,
    SESSION_WIRE_HEADER,
};
pub use scripted::ScriptedUser;
pub use terminal::TerminalUser;

/// What the system tells the user about the view being shown (besides the
/// profile itself): which iteration it belongs to and which original data
/// points the profile's rows correspond to (the search loop filters the
/// data set between major iterations, so row `i` of the profile is original
/// point `original_ids[i]`).
#[derive(Clone, Debug)]
pub struct ViewContext {
    /// Major iteration number (0-based).
    pub major: usize,
    /// Minor iteration number within the major iteration (0-based).
    pub minor: usize,
    /// Original dataset index of each profile row.
    pub original_ids: Vec<usize>,
    /// Size of the *original* dataset (before the search loop's iterative
    /// filtering). Judgements like "is this selection a small distinct
    /// cluster?" are anchored to this, the way a person remembers how much
    /// data they started with.
    pub total_n: usize,
}

/// The user's reaction to one projection view.
#[derive(Clone, Debug, PartialEq)]
pub enum UserResponse {
    /// Density separator placed at noise threshold `τ` (Fig. 6).
    Threshold(f64),
    /// Polygonal separation on the lateral plot (§2.2's alternative mode).
    Polygon(Vec<HalfPlane>),
    /// View dismissed — nothing is picked in this projection.
    Discard,
}

/// The human (or simulated human) side of the interactive loop.
pub trait UserModel {
    /// React to one projection view.
    fn respond(&mut self, profile: &VisualProfile, ctx: &ViewContext) -> UserResponse;

    /// Display name for transcripts and reports.
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn responses_compare() {
        assert_eq!(UserResponse::Discard, UserResponse::Discard);
        assert_ne!(UserResponse::Discard, UserResponse::Threshold(0.1));
    }

    #[test]
    fn view_context_carries_ids() {
        let ctx = ViewContext {
            major: 1,
            minor: 3,
            original_ids: vec![5, 9, 11],
            total_n: 100,
        };
        assert_eq!(ctx.original_ids[2], 11);
    }
}
