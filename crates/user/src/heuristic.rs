//! The default simulated user.
//!
//! A person looking at the paper's density profiles does three things
//! (§2.2, §4.1):
//!
//! 1. **Dismisses** views where the query point sits in a sparsely
//!    populated region (Fig. 1(b)) — here: the query's density is a small
//!    fraction of the view's peak density.
//! 2. **Dismisses** views with no contrast at all (Fig. 1(c), the uniform
//!    case) — here: the peak density is not far above the mean density.
//! 3. Otherwise **scrubs the separator plane** up and down (the
//!    `AdjustDensitySeparator` loop of Fig. 6) and watches the cluster
//!    outline around the query. Visually, a real query cluster is a sharp
//!    peak standing on the broad bulk of the data: as the plane descends,
//!    the peak's outline grows slowly — until the plane passes the *saddle*
//!    where the peak merges into the bulk and the selection suddenly
//!    explodes. The human keeps the plane just above that merge. Here: scan
//!    a ladder of thresholds, find the largest *merge jump* in the
//!    selected-count curve, and place the separator on the stable stretch
//!    just above it.
//!
//! Everything the model reads — grid densities, query location, selection
//! counts as the plane moves — is visible to a human on the same plot; no
//! ground truth is consulted.

use crate::{UserModel, UserResponse, ViewContext};
use hinn_kde::{CornerRule, VisualProfile};

/// Tuning knobs for [`HeuristicUser`].
#[derive(Clone, Copy, Debug)]
pub struct HeuristicUserConfig {
    /// Number of thresholds scanned between 0 and the peak density.
    pub scan_steps: usize,
    /// Dismiss the view when the query density is below this fraction of
    /// the peak (query in a sparse region, Fig. 1(b)).
    pub min_query_peak_ratio: f64,
    /// Dismiss the view unless the query's peak is at least this much
    /// *sharper* than its surroundings (query density over the mean density
    /// on a ring a few cells out). Sharpness near 1 means the query sits on
    /// flat noise (Fig. 1(c)), in a sparse region (Fig. 1(b)), or on the
    /// smooth summit of the data's bulk — none of which is a query cluster.
    pub min_query_prominence: f64,
    /// Above this sharpness the query's needle visibly towers over the view
    /// and the user accepts it even without a merge event in the count
    /// curve (after iterative filtering the query cluster can *be* most of
    /// the remaining data, so no flood exists).
    pub strong_prominence: f64,
    /// Ring radius (in grid cells) used for the sharpness measurement.
    pub prominence_ring_cells: f64,
    /// A selection bigger than this fraction of the *original* dataset is
    /// not a distinct cluster. Anchored to `ViewContext::total_n`, not the
    /// current (filtered) view size: the search loop removes never-picked
    /// points between major iterations, and the user's sense of "small
    /// distinct cluster" does not shrink with it.
    pub max_cluster_fraction: f64,
    /// A selection smaller than this is noise.
    pub min_cluster_points: usize,
    /// Minimum count-explosion factor across `jump_window` scan steps for a
    /// plane height to qualify as sitting just above the peak-merges-into-
    /// bulk event. If no height qualifies, the profile has no distinct peak
    /// around the query and the view is dismissed.
    pub min_jump_ratio: f64,
    /// Number of scan steps the flood is measured across (background
    /// bridges erode gradually, not in one step).
    pub jump_window: usize,
    /// Thresholds below this fraction of the peak density are not
    /// considered (a separator resting on the floor of the profile selects
    /// "everything vaguely dense").
    pub min_tau_ratio: f64,
    /// Corner rule used for density connectivity.
    pub corner_rule: CornerRule,
}

impl Default for HeuristicUserConfig {
    fn default() -> Self {
        Self {
            scan_steps: 48,
            min_query_peak_ratio: 0.10,
            min_query_prominence: 4.0,
            strong_prominence: 8.0,
            prominence_ring_cells: 6.0,
            max_cluster_fraction: 0.40,
            min_cluster_points: 3,
            min_jump_ratio: 1.8,
            jump_window: 4,
            min_tau_ratio: 0.02,
            corner_rule: CornerRule::AtLeastThree,
        }
    }
}

/// The default simulated human (see module docs).
#[derive(Clone, Debug, Default)]
pub struct HeuristicUser {
    /// Configuration.
    pub config: HeuristicUserConfig,
    /// Running estimate of "my cluster's size" across accepted views — a
    /// person who has outlined ~900 points in three views does not suddenly
    /// call a 150-point core the same cluster. Exponential moving average.
    remembered_size: Option<f64>,
    name: String,
}

impl HeuristicUser {
    /// Create with explicit configuration.
    pub fn new(config: HeuristicUserConfig) -> Self {
        Self {
            config,
            remembered_size: None,
            name: "heuristic".into(),
        }
    }
}

impl UserModel for HeuristicUser {
    fn respond(&mut self, profile: &VisualProfile, ctx: &ViewContext) -> UserResponse {
        let cfg = &self.config;
        let max = profile.max_density();
        if max <= 0.0 {
            return UserResponse::Discard;
        }

        // (1) Query in a sparse region → dismiss.
        let qd = profile.query_density();
        if qd < cfg.min_query_peak_ratio * max {
            return UserResponse::Discard;
        }

        // (2) The query must sit on a locally *sharp* peak. This is the
        // visual judgement that rejects the sparse-query view of Fig. 1(b),
        // the contrast-free view of Fig. 1(c), views where a strong peak
        // exists *elsewhere* but the query sits on a mediocre bump, and —
        // the subtle case — views where the query rides the smooth summit
        // of the data's own bulk (arbitrary projections of high-dimensional
        // noise look like one central Gaussian hill).
        let prominence = profile.query_sharpness(cfg.prominence_ring_cells);
        if prominence < cfg.min_query_prominence {
            return UserResponse::Discard;
        }

        // (3) Find the biggest merge event: the scan step across which the
        // query component explodes from a small cluster into the bulk.
        // `curve[k] = (τ_k, count at τ_k)` with τ ascending, so counts are
        // non-increasing in k; a merge shows as a large `count[k] /
        // count[k+1]` drop.
        let anchor_n = ctx.total_n.max(profile.points.len());
        let max_cluster = ((anchor_n as f64) * cfg.max_cluster_fraction) as usize;
        let curve = profile.selection_curve(cfg.scan_steps, cfg.corner_rule);
        let tau_floor = cfg.min_tau_ratio * max;

        // The merge shows as the selection *flooding* when the plane drops
        // a few steps: count(τ − w·Δ) / count(τ) ≥ min_jump_ratio, with the
        // flood measured over a small window because background bridges
        // erode gradually rather than in one step. Among all plane heights
        // that sit above a qualifying flood, a human takes the LOWEST — the
        // most inclusive outline of the peak that still excludes the bulk
        // (putting the plane near the peak's very top would keep only its
        // core).
        let window = cfg.jump_window.max(1);
        let mut above: Option<usize> = None;
        for k in 1..curve.len() {
            let (tau_k, n_k) = curve[k];
            if tau_k < tau_floor || n_k < cfg.min_cluster_points || n_k > max_cluster {
                continue;
            }
            let below = curve[k.saturating_sub(window)].1;
            if below as f64 / n_k as f64 >= cfg.min_jump_ratio {
                above = Some(k);
                break;
            }
        }
        let above = match above {
            Some(k) => k,
            // No merge event: if the query's peak towers over the view the
            // cluster may simply *be* the bulk of (the filtered) data —
            // start from the lowest valid plane instead of dismissing.
            None if prominence >= cfg.strong_prominence => {
                #[allow(clippy::needless_range_loop)]
                match (1..curve.len()).find(|&k| {
                    let (tau_k, n_k) = curve[k];
                    tau_k >= tau_floor && n_k >= cfg.min_cluster_points && n_k <= max_cluster
                }) {
                    Some(k) => k,
                    None => return UserResponse::Discard,
                }
            }
            None => return UserResponse::Discard,
        };

        // (4) Keep the plane at the floodline: the most inclusive outline
        // of the query's peak that still excludes the bulk. Raising the
        // plane further would shave the peak's fringe — and the points a
        // fringe cut drops differ from view to view, which is exactly the
        // incoherence the meaningfulness statistics punish. The few
        // background points the inclusive outline sweeps in differ randomly
        // across orthogonal views and wash out instead.
        let mut chosen = above;

        // (5) Consistency with earlier views: if this view's outline is far
        // smaller than the cluster size remembered from previous views
        // (e.g. the flood landed on the cluster's own core because, after
        // the search loop's filtering, the cluster *is* the bulk), lower
        // the plane to the valid height whose count best matches memory.
        if let Some(remembered) = self.remembered_size {
            if (curve[chosen].1 as f64) < 0.4 * remembered {
                let mut best_k = chosen;
                let mut best_err = f64::INFINITY;
                for (k, &(tau_k, n_k)) in curve.iter().enumerate().skip(1) {
                    if tau_k < tau_floor || n_k < cfg.min_cluster_points || n_k > max_cluster {
                        continue;
                    }
                    let err = (n_k as f64 / remembered).ln().abs();
                    if err < best_err {
                        best_err = err;
                        best_k = k;
                    }
                }
                chosen = best_k;
            }
        }

        let picked = curve[chosen].1 as f64;
        self.remembered_size = Some(match self.remembered_size {
            Some(prev) => 0.5 * prev + 0.5 * picked,
            None => picked,
        });
        UserResponse::Threshold(curve[chosen].0)
    }

    fn name(&self) -> &str {
        if self.name.is_empty() {
            "heuristic"
        } else {
            &self.name
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ViewContext;

    fn ctx(n: usize) -> ViewContext {
        ViewContext {
            major: 0,
            minor: 0,
            original_ids: (0..n).collect(),
            total_n: n,
        }
    }

    /// A tight blob near the origin (containing the query) plus scattered
    /// background.
    fn good_view() -> VisualProfile {
        let mut pts = Vec::new();
        for i in 0..80 {
            let a = i as f64 * 0.21;
            pts.push([0.4 * a.sin(), 0.4 * a.cos()]);
        }
        for i in 0..160 {
            pts.push([
                3.0 + 6.0 * ((i * 37 % 160) as f64 / 160.0),
                -4.0 + 9.0 * ((i * 73 % 160) as f64 / 160.0),
            ]);
        }
        VisualProfile::build(pts, [0.0, 0.0], 50, 0.35)
    }

    /// The query far from every data point (sparse region).
    fn sparse_query_view() -> VisualProfile {
        let pts: Vec<[f64; 2]> = (0..100)
            .map(|i| [(i % 10) as f64, (i / 10) as f64])
            .collect();
        VisualProfile::build(pts, [40.0, 40.0], 30, 1.0)
    }

    /// Near-uniform scatter: no contrast.
    fn uniform_view() -> VisualProfile {
        let mut pts = Vec::new();
        for i in 0..400 {
            // Low-discrepancy-ish fill of the unit square.
            let x = (i as f64 * 0.754877666) % 1.0;
            let y = (i as f64 * 0.569840296) % 1.0;
            pts.push([x * 10.0, y * 10.0]);
        }
        VisualProfile::build(pts, [5.0, 5.0], 30, 1.0)
    }

    #[test]
    fn accepts_good_view_with_reasonable_threshold() {
        let profile = good_view();
        let mut user = HeuristicUser::default();
        match user.respond(&profile, &ctx(profile.points.len())) {
            UserResponse::Threshold(tau) => {
                assert!(tau > 0.0 && tau < profile.max_density());
                let picked = profile.select(tau, CornerRule::AtLeastThree);
                // The blob has 80 members; the pick should be mostly blob.
                assert!(picked.len() >= 40, "picked only {}", picked.len());
                let blob_hits = picked.iter().filter(|&&i| i < 80).count();
                assert!(
                    blob_hits as f64 >= 0.8 * picked.len() as f64,
                    "selection not concentrated on the blob: {blob_hits}/{}",
                    picked.len()
                );
            }
            r => panic!("expected a threshold, got {r:?}"),
        }
    }

    #[test]
    fn dismisses_sparse_query_region() {
        let profile = sparse_query_view();
        let mut user = HeuristicUser::default();
        assert_eq!(
            user.respond(&profile, &ctx(profile.points.len())),
            UserResponse::Discard
        );
    }

    #[test]
    fn dismisses_uniform_view() {
        let profile = uniform_view();
        let mut user = HeuristicUser::default();
        assert_eq!(
            user.respond(&profile, &ctx(profile.points.len())),
            UserResponse::Discard
        );
    }

    #[test]
    fn needle_on_gaussian_bulk_is_separated() {
        // The hard case: a broad central Gaussian bulk (what arbitrary
        // projections of high-dimensional noise look like) with a sharp
        // 60-point needle standing on its shoulder at (2, 2). The merge
        // detector must isolate the needle, not the bulk's dense core.
        let mut pts = Vec::new();
        let mut state = 0xABCDEF12345u64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..600 {
            // Approximate Gaussian via sum of uniforms (Irwin–Hall).
            let g = |u: &mut dyn FnMut() -> f64| (0..6).map(|_| u()).sum::<f64>() - 3.0;
            pts.push([2.0 * g(&mut unif), 2.0 * g(&mut unif)]);
        }
        for _ in 0..60 {
            pts.push([2.0 + 0.15 * (unif() - 0.5), 2.0 + 0.15 * (unif() - 0.5)]);
        }
        let profile = VisualProfile::build(pts, [2.0, 2.0], 70, 0.3);
        let mut user = HeuristicUser::default();
        match user.respond(&profile, &ctx(660)) {
            UserResponse::Threshold(tau) => {
                let picked = profile.select(tau, CornerRule::AtLeastThree);
                let needle_hits = picked.iter().filter(|&&i| i >= 600).count();
                assert!(
                    needle_hits >= 50,
                    "needle should be recovered: {needle_hits}/60 in {} picked",
                    picked.len()
                );
                assert!(
                    picked.len() <= 200,
                    "selection should be the needle, not the bulk: {}",
                    picked.len()
                );
            }
            r => panic!("needle view should be accepted, got {r:?}"),
        }
    }

    #[test]
    fn stricter_contrast_config_dismisses_more() {
        let profile = good_view();
        let mut strict = HeuristicUser::new(HeuristicUserConfig {
            min_query_prominence: 1e9,
            strong_prominence: 2e9,
            ..HeuristicUserConfig::default()
        });
        assert_eq!(
            strict.respond(&profile, &ctx(profile.points.len())),
            UserResponse::Discard
        );
    }

    #[test]
    fn impossible_jump_ratio_dismisses() {
        // With no achievable flood AND the strong-prominence fallback also
        // out of reach, the view must be dismissed.
        let profile = good_view();
        let mut user = HeuristicUser::new(HeuristicUserConfig {
            min_jump_ratio: 1e9,
            strong_prominence: 1e9,
            ..HeuristicUserConfig::default()
        });
        assert_eq!(
            user.respond(&profile, &ctx(profile.points.len())),
            UserResponse::Discard
        );
    }

    #[test]
    fn strong_prominence_fallback_accepts_dominant_peak() {
        // Same impossible flood, but the towering blob around the query
        // lets the strong-prominence path accept the view anyway.
        let profile = good_view();
        let mut user = HeuristicUser::new(HeuristicUserConfig {
            min_jump_ratio: 1e9,
            strong_prominence: 5.0,
            ..HeuristicUserConfig::default()
        });
        assert!(matches!(
            user.respond(&profile, &ctx(profile.points.len())),
            UserResponse::Threshold(_)
        ));
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(HeuristicUser::default().name(), "heuristic");
    }
}
