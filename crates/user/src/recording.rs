//! Session recording and replay.
//!
//! A real interactive session (a human at a [`crate::TerminalUser`]) is
//! expensive; being able to *replay* one — for regression tests, audits, or
//! sharing "here is what I looked at and chose" — is the natural companion
//! feature. [`RecordingUser`] wraps any user model and logs every response;
//! the log serializes to a simple line format and loads back into a
//! [`ScriptedUser`] that reproduces the session exactly (the search loop is
//! deterministic given the same data and responses).
//!
//! ## Wire format (`hinn-session v1`)
//!
//! A serialized session is line-oriented text: a [`SESSION_WIRE_HEADER`]
//! line, then one response per line. Readers are *forward tolerant* within
//! the major version: unknown lines starting with `x-` and unknown
//! trailing `key=value` fields on a response line are skipped, so a v1
//! reader replays sessions written by a later v1.x writer that annotates
//! responses. Files with no header at all (recordings from before the
//! format was versioned) are accepted unchanged; a header with any other
//! major version is refused.

use crate::{ScriptedUser, UserModel, UserResponse, ViewContext};
use hinn_kde::polygon::HalfPlane;
use hinn_kde::VisualProfile;
use std::io;

/// First line of a serialized session (see the module docs).
pub const SESSION_WIRE_HEADER: &str = "hinn-session v1";

/// Wraps a user model and records every response it gives.
pub struct RecordingUser<U> {
    inner: U,
    log: Vec<UserResponse>,
    name: String,
}

impl<U: UserModel> RecordingUser<U> {
    /// Wrap `inner`.
    pub fn new(inner: U) -> Self {
        let name = format!("recording({})", inner.name());
        Self {
            inner,
            log: Vec::new(),
            name,
        }
    }

    /// The responses recorded so far.
    pub fn log(&self) -> &[UserResponse] {
        &self.log
    }

    /// Consume the recorder, returning the inner user and the full log.
    pub fn into_parts(self) -> (U, Vec<UserResponse>) {
        (self.inner, self.log)
    }
}

impl<U: UserModel> UserModel for RecordingUser<U> {
    fn respond(&mut self, profile: &VisualProfile, ctx: &ViewContext) -> UserResponse {
        let r = self.inner.respond(profile, ctx);
        self.log.push(r.clone());
        r
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Serialize one response as a single line.
///
/// Format: `discard` | `threshold <tau>` | `polygon a,b,c;a,b,c;…`.
pub fn response_to_line(r: &UserResponse) -> String {
    match r {
        UserResponse::Discard => "discard".to_string(),
        UserResponse::Threshold(tau) => format!("threshold {tau:?}"),
        UserResponse::Polygon(lines) => {
            let parts: Vec<String> = lines
                .iter()
                .map(|l| format!("{:?},{:?},{:?}", l.a, l.b, l.c))
                .collect();
            format!("polygon {}", parts.join(";"))
        }
    }
}

/// Parse one line written by [`response_to_line`].
///
/// Forward tolerance: trailing whitespace-separated `key=value` fields
/// (which no v1 writer emits, but a later v1.x writer may) are ignored.
///
/// # Errors
/// `InvalidData` on any malformed line.
pub fn response_from_line(line: &str) -> io::Result<UserResponse> {
    let line = strip_extension_fields(line.trim());
    let line = line.as_str();
    if line == "discard" {
        return Ok(UserResponse::Discard);
    }
    if let Some(rest) = line.strip_prefix("threshold ") {
        let tau: f64 = rest
            .trim()
            .parse()
            .map_err(|e| bad(format!("bad threshold {rest:?}: {e}")))?;
        if !tau.is_finite() {
            return Err(bad(format!("non-finite threshold {tau}")));
        }
        return Ok(UserResponse::Threshold(tau));
    }
    if let Some(rest) = line.strip_prefix("polygon ") {
        let mut lines_out = Vec::new();
        for part in rest.split(';') {
            let nums: Vec<&str> = part.split(',').collect();
            if nums.len() != 3 {
                return Err(bad(format!("bad polygon line {part:?}")));
            }
            let mut v = [0.0f64; 3];
            for (slot, s) in v.iter_mut().zip(&nums) {
                *slot = s
                    .trim()
                    .parse()
                    .map_err(|e| bad(format!("bad polygon number {s:?}: {e}")))?;
            }
            if v[0].abs() + v[1].abs() <= 1e-12 {
                return Err(bad(format!("degenerate polygon line {part:?}")));
            }
            lines_out.push(HalfPlane::new(v[0], v[1], v[2]));
        }
        return Ok(UserResponse::Polygon(lines_out));
    }
    Err(bad(format!("unrecognized response line {line:?}")))
}

/// Keep a response line's leading payload, dropping trailing `key=value`
/// extension fields a newer v1.x writer may have appended.
fn strip_extension_fields(line: &str) -> String {
    line.split_whitespace()
        .take_while(|tok| !tok.contains('='))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Serialize a whole session log: the [`SESSION_WIRE_HEADER`], then one
/// response per line.
pub fn session_to_string(log: &[UserResponse]) -> String {
    let mut out = String::from(SESSION_WIRE_HEADER);
    out.push('\n');
    for r in log {
        out.push_str(&response_to_line(r));
        out.push('\n');
    }
    out
}

/// Parse a session log into a replaying [`ScriptedUser`]. Headerless
/// (pre-versioning) recordings are accepted; `x-`-prefixed extension
/// lines are skipped (see the module docs).
///
/// # Errors
/// `InvalidData` on any malformed line or unsupported format version.
pub fn session_from_string(content: &str) -> io::Result<ScriptedUser> {
    let mut responses = Vec::new();
    let mut first_content = true;
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if first_content {
            first_content = false;
            if let Some(version) = line.strip_prefix("hinn-session ") {
                if version.trim() != "v1" {
                    return Err(bad(format!(
                        "unsupported session format version {version:?} (this reader speaks v1)"
                    )));
                }
                continue;
            }
            // No header: a legacy recording; fall through and parse it.
        }
        if line.starts_with("x-") {
            continue;
        }
        responses.push(response_from_line(line)?);
    }
    Ok(ScriptedUser::new(responses))
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeuristicUser;

    #[test]
    fn line_roundtrip_all_variants() {
        let cases = [
            UserResponse::Discard,
            UserResponse::Threshold(0.012345678901234),
            UserResponse::Polygon(vec![
                HalfPlane::new(1.0, -2.5, 3.25),
                HalfPlane::new(0.0, 1.0, -7.0),
            ]),
        ];
        for r in cases {
            let line = response_to_line(&r);
            let back = response_from_line(&line).unwrap();
            assert_eq!(back, r, "roundtrip failed for {line:?}");
        }
    }

    #[test]
    fn threshold_roundtrips_exactly() {
        // `{:?}` prints the shortest f64 representation that round-trips.
        let tau = 0.1 + 0.2; // classic non-representable sum
        let line = response_to_line(&UserResponse::Threshold(tau));
        match response_from_line(&line).unwrap() {
            UserResponse::Threshold(t) => assert_eq!(t, tau),
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn malformed_lines_rejected() {
        for bad in [
            "thresh 0.5",
            "threshold banana",
            "threshold inf",
            "polygon 1,2",
            "polygon 0,0,1",
            "polygon a,b,c",
            "",
        ] {
            assert!(response_from_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn recorder_logs_everything() {
        let profile = VisualProfile::build(
            (0..30).map(|i| [(i % 6) as f64, (i / 6) as f64]).collect(),
            [2.0, 2.0],
            12,
            0.5,
        );
        let ctx = ViewContext {
            major: 0,
            minor: 0,
            original_ids: (0..30).collect(),
            total_n: 30,
        };
        let mut rec = RecordingUser::new(HeuristicUser::default());
        let r1 = rec.respond(&profile, &ctx);
        let r2 = rec.respond(&profile, &ctx);
        assert_eq!(rec.log().len(), 2);
        assert_eq!(rec.log()[0], r1);
        assert_eq!(rec.log()[1], r2);
        assert!(rec.name().starts_with("recording("));
    }

    #[test]
    fn session_text_is_versioned() {
        let text = session_to_string(&[UserResponse::Discard]);
        assert_eq!(text, "hinn-session v1\ndiscard\n");
        assert!(session_from_string(&text).is_ok());
    }

    #[test]
    fn headerless_legacy_recordings_still_parse() {
        let mut replay = session_from_string("threshold 0.5\ndiscard\n").unwrap();
        let profile = VisualProfile::build(vec![[0.0, 0.0], [1.0, 1.0]], [0.0, 0.0], 5, 1.0);
        let ctx = ViewContext {
            major: 0,
            minor: 0,
            original_ids: vec![0, 1],
            total_n: 2,
        };
        assert_eq!(replay.respond(&profile, &ctx), UserResponse::Threshold(0.5));
        assert_eq!(replay.respond(&profile, &ctx), UserResponse::Discard);
    }

    #[test]
    fn future_major_versions_are_refused() {
        let err = session_from_string("hinn-session v2\ndiscard\n").unwrap_err();
        assert!(err.to_string().contains("unsupported"), "{err}");
    }

    #[test]
    fn unknown_extensions_are_tolerated() {
        // A v1.x writer that annotates sessions: extension lines and
        // trailing key=value fields must not break replay.
        let text = "hinn-session v1\n\
                    x-recorded-by hinn 9.9\n\
                    threshold 0.25 note=weak-cluster\n\
                    x-view-wall-ms 1200\n\
                    discard reason=noise\n";
        let mut user = session_from_string(text).unwrap();
        assert_eq!(user.remaining(), 2);
        let profile = VisualProfile::build(vec![[0.0, 0.0], [1.0, 1.0]], [0.0, 0.0], 5, 1.0);
        let ctx = ViewContext {
            major: 0,
            minor: 0,
            original_ids: vec![0, 1],
            total_n: 2,
        };
        assert_eq!(
            replayed(&mut user, &profile, &ctx),
            UserResponse::Threshold(0.25)
        );
        assert_eq!(replayed(&mut user, &profile, &ctx), UserResponse::Discard);
    }

    fn replayed(
        user: &mut ScriptedUser,
        profile: &VisualProfile,
        ctx: &ViewContext,
    ) -> UserResponse {
        user.respond(profile, ctx)
    }

    #[test]
    fn session_roundtrip_to_scripted_user() {
        let log = vec![
            UserResponse::Threshold(0.5),
            UserResponse::Discard,
            UserResponse::Polygon(vec![HalfPlane::new(1.0, 0.0, -1.0)]),
        ];
        let text = session_to_string(&log);
        let mut replay = session_from_string(&text).unwrap();
        let profile = VisualProfile::build(vec![[0.0, 0.0], [1.0, 1.0]], [0.0, 0.0], 5, 1.0);
        let ctx = ViewContext {
            major: 0,
            minor: 0,
            original_ids: vec![0, 1],
            total_n: 2,
        };
        for want in &log {
            assert_eq!(&replay.respond(&profile, &ctx), want);
        }
    }
}
