//! A simulated user for the paper's *alternative* separation mode.
//!
//! §2.2: "An alternative way of separating the query cluster is by using
//! the lateral density plot in which the user visually specifies the
//! separating hyperplanes (lines) in order to divide the space into a set
//! of polygonal regions. The set of points in the same polygonal region as
//! the query point is the user response."
//!
//! [`PolygonUser`] makes the same visual judgements as
//! [`crate::HeuristicUser`] (dismiss sparse/contrast-free views, find the
//! floodline of the query's peak) but answers with *separating lines*
//! instead of a density threshold: it draws the axis-aligned box around
//! the `(τ, Q)`-connected region — four half-plane cuts, exactly what a
//! person boxing in a visible blob does. The paper notes the density
//! separator "tends to be a more attractive option" because it follows
//! arbitrary cluster shapes; the ablation experiment quantifies that gap.

use crate::heuristic::{HeuristicUser, HeuristicUserConfig};
use crate::{UserModel, UserResponse, ViewContext};
use hinn_kde::polygon::HalfPlane;
use hinn_kde::VisualProfile;

/// Simulated user answering with polygonal separations (see module docs).
#[derive(Clone, Debug, Default)]
pub struct PolygonUser {
    inner: HeuristicUser,
}

impl PolygonUser {
    /// Create with an explicit inner-heuristic configuration.
    pub fn new(config: HeuristicUserConfig) -> Self {
        Self {
            inner: HeuristicUser::new(config),
        }
    }
}

impl UserModel for PolygonUser {
    fn respond(&mut self, profile: &VisualProfile, ctx: &ViewContext) -> UserResponse {
        // Reuse the heuristic's full judgement pipeline to find the
        // separator height…
        match self.inner.respond(profile, ctx) {
            UserResponse::Threshold(tau) => {
                // …then emulate "drawing a box around the visible blob":
                // the bounding box of the density-connected region, with
                // half a cell of slack (a person does not trace pixels).
                let mask = profile.connected_mask(tau, self.inner.config.corner_rule);
                let spec = &profile.grid.spec;
                let mut xlo = f64::INFINITY;
                let mut xhi = f64::NEG_INFINITY;
                let mut ylo = f64::INFINITY;
                let mut yhi = f64::NEG_INFINITY;
                for (cx, cy) in mask.iter_cells() {
                    xlo = xlo.min(spec.x0 + cx as f64 * spec.dx);
                    xhi = xhi.max(spec.x0 + (cx + 1) as f64 * spec.dx);
                    ylo = ylo.min(spec.y0 + cy as f64 * spec.dy);
                    yhi = yhi.max(spec.y0 + (cy + 1) as f64 * spec.dy);
                }
                if !xlo.is_finite() {
                    return UserResponse::Discard;
                }
                let sx = spec.dx * 0.5;
                let sy = spec.dy * 0.5;
                UserResponse::Polygon(vec![
                    HalfPlane::new(1.0, 0.0, -(xlo - sx)), // x ≥ xlo − s
                    HalfPlane::new(-1.0, 0.0, xhi + sx),   // x ≤ xhi + s
                    HalfPlane::new(0.0, 1.0, -(ylo - sy)), // y ≥ ylo − s
                    HalfPlane::new(0.0, -1.0, yhi + sy),   // y ≤ yhi + s
                ])
            }
            other => other,
        }
    }

    fn name(&self) -> &str {
        "polygon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: usize) -> ViewContext {
        ViewContext {
            major: 0,
            minor: 0,
            original_ids: (0..n).collect(),
            total_n: n,
        }
    }

    /// Blob of 80 points at the origin plus 160 scattered points.
    fn blob_view() -> VisualProfile {
        let mut pts = Vec::new();
        for i in 0..80 {
            let a = i as f64 * 0.21;
            pts.push([0.4 * a.sin(), 0.4 * a.cos()]);
        }
        for i in 0..160 {
            pts.push([
                3.0 + 6.0 * ((i * 37 % 160) as f64 / 160.0),
                -4.0 + 9.0 * ((i * 73 % 160) as f64 / 160.0),
            ]);
        }
        VisualProfile::build(pts, [0.0, 0.0], 50, 0.35)
    }

    #[test]
    fn boxes_in_the_blob() {
        let profile = blob_view();
        let mut user = PolygonUser::default();
        match user.respond(&profile, &ctx(profile.points.len())) {
            UserResponse::Polygon(lines) => {
                assert_eq!(lines.len(), 4, "a box has four sides");
                let picked = profile.select_polygon(&lines);
                let blob_hits = picked.iter().filter(|&&i| i < 80).count();
                assert!(
                    blob_hits >= 70,
                    "the box should contain the blob: {blob_hits}/80"
                );
                assert!(
                    picked.len() <= 120,
                    "the box should exclude most background: {}",
                    picked.len()
                );
            }
            r => panic!("expected a polygon, got {r:?}"),
        }
    }

    #[test]
    fn dismissals_pass_through() {
        // Query far from the data → the inner heuristic dismisses, and so
        // does the polygon user.
        let pts: Vec<[f64; 2]> = (0..100)
            .map(|i| [(i % 10) as f64, (i / 10) as f64])
            .collect();
        let profile = VisualProfile::build(pts, [50.0, 50.0], 30, 0.35);
        let mut user = PolygonUser::default();
        assert_eq!(
            user.respond(&profile, &ctx(profile.points.len())),
            UserResponse::Discard
        );
    }

    #[test]
    fn name_is_polygon() {
        assert_eq!(PolygonUser::default().name(), "polygon");
    }
}
