//! A *real* human in the loop, over a terminal.
//!
//! Renders each visual profile as a heatmap (ANSI color or plain ASCII),
//! prints the caption, and runs the `AdjustDensitySeparator` interaction of
//! Fig. 6: the user types a separator height as a fraction of the peak
//! density, immediately sees how many points the `(τ, Q)`-contour selects,
//! and either confirms or tries another height. `d` dismisses the view.
//!
//! Generic over reader/writer so the whole dialogue is unit-testable; the
//! `interactive_session` example wires it to stdin/stdout.

use crate::{UserModel, UserResponse, ViewContext};
use hinn_kde::polygon::HalfPlane;
use hinn_kde::{CornerRule, VisualProfile};
use std::io::{BufRead, Write};

/// Terminal-interactive user (see module docs).
pub struct TerminalUser<R, W> {
    input: R,
    output: W,
    /// Use ANSI color output (set false for plain ASCII / log capture).
    pub color: bool,
    /// Connectivity rule used for the live selection preview.
    pub corner_rule: CornerRule,
}

impl<R: BufRead, W: Write> TerminalUser<R, W> {
    /// Create over an input/output pair.
    pub fn new(input: R, output: W) -> Self {
        Self {
            input,
            output,
            color: true,
            corner_rule: CornerRule::AtLeastThree,
        }
    }

    fn render(&mut self, profile: &VisualProfile, ctx: &ViewContext) -> std::io::Result<()> {
        writeln!(
            self.output,
            "\n=== major iteration {}, view {} ===",
            ctx.major + 1,
            ctx.minor + 1
        )?;
        if self.color {
            let map = hinn_viz::ansi::render_ansi_heatmap(&profile.grid, profile.query);
            self.output.write_all(map.as_bytes())?;
        } else {
            let map = hinn_viz::render_heatmap(
                &profile.grid,
                profile.query,
                None,
                hinn_viz::AsciiOptions::default(),
            );
            self.output.write_all(map.as_bytes())?;
        }
        writeln!(
            self.output,
            "{}",
            hinn_viz::ascii::profile_caption(&profile.grid, profile.query)
        )?;
        // Axis marginals: per-attribute interpretability aid (§1.1).
        let width = profile.grid.spec.cells_per_axis().min(60);
        let [mx, my] = profile.axis_marginals(0.5);
        writeln!(
            self.output,
            "x-axis {}",
            hinn_viz::render_sparkline(&mx, profile.query[0], width)
        )?;
        writeln!(
            self.output,
            "y-axis {}",
            hinn_viz::render_sparkline(&my, profile.query[1], width)
        )?;
        Ok(())
    }

    fn prompt_line(&mut self, msg: &str) -> std::io::Result<Option<String>> {
        write!(self.output, "{msg}")?;
        self.output.flush()?;
        let mut line = String::new();
        let n = self.input.read_line(&mut line)?;
        if n == 0 {
            Ok(None) // EOF
        } else {
            Ok(Some(line.trim().to_string()))
        }
    }
}

impl<R: BufRead, W: Write> UserModel for TerminalUser<R, W> {
    fn respond(&mut self, profile: &VisualProfile, ctx: &ViewContext) -> UserResponse {
        if self.render(profile, ctx).is_err() {
            return UserResponse::Discard;
        }
        let max = profile.max_density();
        loop {
            let line = match self.prompt_line(
                "separator height as fraction of peak (0-1),                  'b x0 y0 x1 y1' for a box, or 'd' to dismiss: ",
            ) {
                Ok(Some(l)) => l,
                _ => return UserResponse::Discard,
            };
            if line.eq_ignore_ascii_case("d") {
                return UserResponse::Discard;
            }
            // Polygonal mode (§2.2): a box typed as data coordinates.
            if let Some(rest) = line.strip_prefix('b').filter(|r| r.starts_with(' ')) {
                let nums: Vec<f64> = rest
                    .split_whitespace()
                    .filter_map(|s| s.parse().ok())
                    .collect();
                if nums.len() != 4 {
                    let _ = writeln!(self.output, "box needs four numbers: b x0 y0 x1 y1");
                    continue;
                }
                let (x0, y0) = (nums[0].min(nums[2]), nums[1].min(nums[3]));
                let (x1, y1) = (nums[0].max(nums[2]), nums[1].max(nums[3]));
                if x1 - x0 < 1e-12 || y1 - y0 < 1e-12 {
                    let _ = writeln!(self.output, "box has no area");
                    continue;
                }
                let lines = vec![
                    HalfPlane::new(1.0, 0.0, -x0),
                    HalfPlane::new(-1.0, 0.0, x1),
                    HalfPlane::new(0.0, 1.0, -y0),
                    HalfPlane::new(0.0, -1.0, y1),
                ];
                let picked = profile.select_polygon(&lines);
                let _ = writeln!(
                    self.output,
                    "box selects {} of {} points",
                    picked.len(),
                    profile.points.len()
                );
                match self.prompt_line("keep this box? (y/n): ") {
                    Ok(Some(ans)) if ans.eq_ignore_ascii_case("y") => {
                        return UserResponse::Polygon(lines)
                    }
                    Ok(Some(_)) => continue,
                    _ => return UserResponse::Discard,
                }
            }
            let frac: f64 = match line.parse() {
                Ok(f) if (0.0..=1.0).contains(&f) => f,
                _ => {
                    let _ = writeln!(
                        self.output,
                        "please enter a number in [0, 1], 'b …', or 'd'"
                    );
                    continue;
                }
            };
            let tau = frac * max;
            let picked = profile.select(tau, self.corner_rule);
            let _ = writeln!(
                self.output,
                "τ = {tau:.5} selects {} of {} points",
                picked.len(),
                profile.points.len()
            );
            match self.prompt_line("keep this separator? (y/n): ") {
                Ok(Some(ans)) if ans.eq_ignore_ascii_case("y") => {
                    return UserResponse::Threshold(tau)
                }
                Ok(Some(_)) => continue,
                _ => return UserResponse::Discard,
            }
        }
    }

    fn name(&self) -> &str {
        "terminal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> VisualProfile {
        let mut pts = Vec::new();
        for i in 0..40 {
            let a = i as f64 * 0.3;
            pts.push([0.3 * a.sin(), 0.3 * a.cos()]);
        }
        for i in 0..20 {
            pts.push([5.0 + (i % 5) as f64, 5.0 + (i / 5) as f64]);
        }
        VisualProfile::build(pts, [0.0, 0.0], 25, 1.0)
    }

    fn ctx() -> ViewContext {
        ViewContext {
            major: 0,
            minor: 0,
            original_ids: (0..60).collect(),
            total_n: 1000,
        }
    }

    #[test]
    fn accepts_confirmed_threshold() {
        let input = b"0.3\ny\n" as &[u8];
        let mut out = Vec::new();
        let p = profile();
        let resp = {
            let mut user = TerminalUser::new(input, &mut out);
            user.color = false;
            user.respond(&p, &ctx())
        };
        match resp {
            UserResponse::Threshold(tau) => {
                assert!((tau - 0.3 * p.max_density()).abs() < 1e-12);
            }
            r => panic!("expected threshold, got {r:?}"),
        }
        let transcript = String::from_utf8(out).unwrap();
        assert!(transcript.contains("selects"));
        assert!(transcript.contains("major iteration 1"));
    }

    #[test]
    fn retry_after_rejection() {
        let input = b"0.8\nn\n0.2\ny\n" as &[u8];
        let mut out = Vec::new();
        let p = profile();
        let resp = {
            let mut user = TerminalUser::new(input, &mut out);
            user.color = false;
            user.respond(&p, &ctx())
        };
        match resp {
            UserResponse::Threshold(tau) => {
                assert!((tau - 0.2 * p.max_density()).abs() < 1e-12);
            }
            r => panic!("{r:?}"),
        }
    }

    #[test]
    fn dismiss_command() {
        let input = b"d\n" as &[u8];
        let mut out = Vec::new();
        let p = profile();
        let mut user = TerminalUser::new(input, &mut out);
        user.color = false;
        assert_eq!(user.respond(&p, &ctx()), UserResponse::Discard);
    }

    #[test]
    fn invalid_input_reprompts() {
        let input = b"banana\n7\n0.5\ny\n" as &[u8];
        let mut out = Vec::new();
        let p = profile();
        let resp = {
            let mut user = TerminalUser::new(input, &mut out);
            user.color = false;
            user.respond(&p, &ctx())
        };
        assert!(matches!(resp, UserResponse::Threshold(_)));
        let transcript = String::from_utf8(out).unwrap();
        assert!(transcript.matches("please enter a number").count() == 2);
    }

    #[test]
    fn box_input_yields_polygon() {
        // Box around the origin blob, confirmed.
        let input = b"b -1 -1 1 1\ny\n" as &[u8];
        let mut out = Vec::new();
        let p = profile();
        let resp = {
            let mut user = TerminalUser::new(input, &mut out);
            user.color = false;
            user.respond(&p, &ctx())
        };
        match resp {
            UserResponse::Polygon(lines) => {
                assert_eq!(lines.len(), 4);
                let picked = p.select_polygon(&lines);
                assert!(
                    picked.iter().all(|&i| i < 40),
                    "box must hold only the blob"
                );
                assert!(picked.len() >= 35);
            }
            r => panic!("expected polygon, got {r:?}"),
        }
        let transcript = String::from_utf8(out).unwrap();
        assert!(transcript.contains("box selects"));
    }

    #[test]
    fn malformed_box_reprompts() {
        let input = b"b 1 2\nb 0 0 0 0\nd\n" as &[u8];
        let mut out = Vec::new();
        let p = profile();
        let resp = {
            let mut user = TerminalUser::new(input, &mut out);
            user.color = false;
            user.respond(&p, &ctx())
        };
        assert_eq!(resp, UserResponse::Discard);
        let transcript = String::from_utf8(out).unwrap();
        assert!(transcript.contains("box needs four numbers"));
        assert!(transcript.contains("box has no area"));
    }

    #[test]
    fn eof_means_discard() {
        let input = b"" as &[u8];
        let mut out = Vec::new();
        let p = profile();
        let mut user = TerminalUser::new(input, &mut out);
        user.color = false;
        assert_eq!(user.respond(&p, &ctx()), UserResponse::Discard);
    }

    #[test]
    fn ansi_mode_emits_color() {
        let input = b"d\n" as &[u8];
        let mut out = Vec::new();
        let p = profile();
        let mut user = TerminalUser::new(input, &mut out);
        user.color = true;
        let _ = user.respond(&p, &ctx());
        let transcript = String::from_utf8(out).unwrap();
        assert!(transcript.contains("\x1b[48;5;"));
    }
}
