//! An oracle user that knows the ground-truth relevant set.
//!
//! Used only for calibration and upper-bound experiments: given the true
//! cluster membership, the oracle places the separator at the threshold
//! that maximizes the F1 of the selected set against the truth — the best
//! any user could do with a single density separator on the given view.
//! When even the best threshold is poor, the oracle dismisses the view
//! (which is itself informative: the projection does not expose the
//! cluster).

use crate::{UserModel, UserResponse, ViewContext};
use hinn_kde::{CornerRule, VisualProfile};
use std::collections::HashSet;

/// Ground-truth-aware user (see module docs).
#[derive(Clone, Debug)]
pub struct OracleUser {
    relevant: HashSet<usize>,
    /// Minimum F1 for accepting a view.
    pub min_f1: f64,
    /// Selections larger than this fraction of the *original* dataset are
    /// not a cluster separation and are never accepted (guards against the
    /// trivial τ→0 "select everything" threshold). Anchored to
    /// `ViewContext::total_n`, not the current filtered view.
    pub max_fraction: f64,
    /// Thresholds scanned.
    pub scan_steps: usize,
    /// Connectivity rule.
    pub corner_rule: CornerRule,
}

impl OracleUser {
    /// Create from the original-dataset indices of the relevant points.
    pub fn new(relevant: impl IntoIterator<Item = usize>) -> Self {
        Self {
            relevant: relevant.into_iter().collect(),
            min_f1: 0.50,
            max_fraction: 0.50,
            scan_steps: 48,
            corner_rule: CornerRule::AtLeastThree,
        }
    }
}

impl UserModel for OracleUser {
    fn respond(&mut self, profile: &VisualProfile, ctx: &ViewContext) -> UserResponse {
        let max = profile.max_density();
        if max <= 0.0 || self.relevant.is_empty() {
            return UserResponse::Discard;
        }
        let anchor_n = ctx.total_n.max(profile.points.len());
        let mut best: Option<(f64, f64)> = None; // (f1, tau)
        for k in 0..self.scan_steps {
            let tau = max * (k as f64 + 0.5) / self.scan_steps as f64;
            let picked = profile.select(tau, self.corner_rule);
            if picked.is_empty() || picked.len() as f64 > self.max_fraction * anchor_n as f64 {
                continue;
            }
            let hits = picked
                .iter()
                .filter(|&&row| self.relevant.contains(&ctx.original_ids[row]))
                .count();
            let precision = hits as f64 / picked.len() as f64;
            let recall = hits as f64 / self.relevant.len() as f64;
            let f1 = if precision + recall > 0.0 {
                2.0 * precision * recall / (precision + recall)
            } else {
                0.0
            };
            if best.map(|(bf, _)| f1 > bf).unwrap_or(true) {
                best = Some((f1, tau));
            }
        }
        match best {
            Some((f1, tau)) if f1 >= self.min_f1 => UserResponse::Threshold(tau),
            _ => UserResponse::Discard,
        }
    }

    fn name(&self) -> &str {
        "oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Blob of 40 relevant points at the origin + 60 scattered irrelevant.
    fn view() -> (VisualProfile, ViewContext) {
        let mut pts = Vec::new();
        for i in 0..40 {
            let a = i as f64 * 0.37;
            pts.push([0.3 * a.sin(), 0.3 * a.cos()]);
        }
        for i in 0..60 {
            pts.push([
                4.0 + 5.0 * ((i * 29 % 60) as f64 / 60.0),
                -5.0 + 9.0 * ((i * 41 % 60) as f64 / 60.0),
            ]);
        }
        let profile = VisualProfile::build(pts, [0.0, 0.0], 40, 1.0);
        // Original ids shifted by 1000 to prove the mapping is used.
        let ctx = ViewContext {
            major: 0,
            minor: 0,
            original_ids: (1000..1100).collect(),
            total_n: 1000,
        };
        (profile, ctx)
    }

    #[test]
    fn oracle_finds_high_f1_threshold() {
        let (profile, ctx) = view();
        let mut oracle = OracleUser::new(1000..1040);
        match oracle.respond(&profile, &ctx) {
            UserResponse::Threshold(tau) => {
                let picked = profile.select(tau, CornerRule::AtLeastThree);
                let hits = picked.iter().filter(|&&r| r < 40).count();
                assert!(hits >= 35, "oracle should recover the blob: {hits}/40");
                assert!(
                    picked.len() <= 50,
                    "selection should be tight, got {}",
                    picked.len()
                );
            }
            r => panic!("oracle dismissed a good view: {r:?}"),
        }
    }

    #[test]
    fn oracle_dismisses_when_relevant_not_visible() {
        let (profile, ctx) = view();
        // Relevant points are a small subset of the scattered background —
        // no threshold exposes them as the query cluster with useful F1.
        let mut oracle = OracleUser::new(1085..1095);
        assert_eq!(oracle.respond(&profile, &ctx), UserResponse::Discard);
    }

    #[test]
    fn empty_relevant_set_discards() {
        let (profile, ctx) = view();
        let mut oracle = OracleUser::new(std::iter::empty());
        assert_eq!(oracle.respond(&profile, &ctx), UserResponse::Discard);
    }
}
