//! Human imprecision wrapper.
//!
//! Real users do not place the separator at exactly the "right" height and
//! sometimes misjudge a view. [`NoisyUser`] wraps any inner [`UserModel`]
//! and perturbs its behavior: thresholds get multiplicative jitter, good
//! views are occasionally dismissed, and dismissed views are occasionally
//! accepted at a naive threshold. The ablation experiments sweep these
//! rates to measure how robust the meaningfulness quantification is to
//! user error (the paper's statistics aggregate over many views precisely
//! to absorb this).

use crate::{UserModel, UserResponse, ViewContext};
use hinn_kde::VisualProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A [`UserModel`] wrapper that injects configurable human error.
#[derive(Clone, Debug)]
pub struct NoisyUser<U> {
    inner: U,
    rng: StdRng,
    /// Std-dev of the multiplicative log-jitter applied to thresholds.
    pub tau_jitter: f64,
    /// Probability of dismissing a view the inner user accepted.
    pub p_wrong_discard: f64,
    /// Probability of accepting (at half the query density) a view the
    /// inner user dismissed.
    pub p_wrong_accept: f64,
    name: String,
}

impl<U: UserModel> NoisyUser<U> {
    /// Wrap `inner` with default error rates (5% each, 15% jitter).
    pub fn new(inner: U, seed: u64) -> Self {
        let name = format!("noisy({})", inner.name());
        Self {
            inner,
            rng: StdRng::seed_from_u64(seed),
            tau_jitter: 0.15,
            p_wrong_discard: 0.05,
            p_wrong_accept: 0.05,
            name,
        }
    }

    /// Set all error knobs at once.
    pub fn with_rates(
        mut self,
        tau_jitter: f64,
        p_wrong_discard: f64,
        p_wrong_accept: f64,
    ) -> Self {
        assert!(tau_jitter >= 0.0, "NoisyUser: negative jitter");
        assert!(
            (0.0..=1.0).contains(&p_wrong_discard),
            "NoisyUser: bad p_wrong_discard"
        );
        assert!(
            (0.0..=1.0).contains(&p_wrong_accept),
            "NoisyUser: bad p_wrong_accept"
        );
        self.tau_jitter = tau_jitter;
        self.p_wrong_discard = p_wrong_discard;
        self.p_wrong_accept = p_wrong_accept;
        self
    }

    /// Standard-normal deviate via Box–Muller.
    fn randn(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl<U: UserModel> UserModel for NoisyUser<U> {
    fn respond(&mut self, profile: &VisualProfile, ctx: &ViewContext) -> UserResponse {
        let base = self.inner.respond(profile, ctx);
        match base {
            UserResponse::Threshold(tau) => {
                if self.rng.gen::<f64>() < self.p_wrong_discard {
                    return UserResponse::Discard;
                }
                let jitter = (self.tau_jitter * self.randn()).exp();
                UserResponse::Threshold((tau * jitter).min(profile.max_density() * 0.999))
            }
            UserResponse::Discard => {
                // Forced wrong accept: a naive separator at half the query
                // density — unless the query sits on zero density, where
                // even a careless user has nothing to separate.
                let naive_tau = profile.query_density() * 0.5;
                if naive_tau > 0.0 && self.rng.gen::<f64>() < self.p_wrong_accept {
                    UserResponse::Threshold(naive_tau)
                } else {
                    UserResponse::Discard
                }
            }
            other @ UserResponse::Polygon(_) => other,
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptedUser;

    fn profile() -> VisualProfile {
        let pts: Vec<[f64; 2]> = (0..50).map(|i| [(i % 7) as f64, (i / 7) as f64]).collect();
        VisualProfile::build(pts, [3.0, 3.0], 20, 1.0)
    }

    fn ctx() -> ViewContext {
        ViewContext {
            major: 0,
            minor: 0,
            original_ids: (0..50).collect(),
            total_n: 1000,
        }
    }

    #[test]
    fn jitters_thresholds_but_keeps_them_valid() {
        let p = profile();
        let script = ScriptedUser::new(std::iter::repeat_n(
            UserResponse::Threshold(p.max_density() * 0.5),
            100,
        ));
        let mut noisy = NoisyUser::new(script, 7).with_rates(0.3, 0.0, 0.0);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            match noisy.respond(&p, &ctx()) {
                UserResponse::Threshold(tau) => {
                    assert!(tau > 0.0 && tau < p.max_density());
                    distinct.insert((tau * 1e9) as u64);
                }
                r => panic!("unexpected {r:?}"),
            }
        }
        assert!(distinct.len() > 50, "jitter should vary the threshold");
    }

    #[test]
    fn zero_noise_is_transparent() {
        let p = profile();
        let script = ScriptedUser::new([UserResponse::Threshold(0.01), UserResponse::Discard]);
        let mut noisy = NoisyUser::new(script, 3).with_rates(0.0, 0.0, 0.0);
        assert_eq!(noisy.respond(&p, &ctx()), UserResponse::Threshold(0.01));
        assert_eq!(noisy.respond(&p, &ctx()), UserResponse::Discard);
    }

    #[test]
    fn always_wrong_discard() {
        let p = profile();
        let script =
            ScriptedUser::new([]).with_fallback(UserResponse::Threshold(p.max_density() * 0.4));
        let mut noisy = NoisyUser::new(script, 5).with_rates(0.0, 1.0, 0.0);
        for _ in 0..10 {
            assert_eq!(noisy.respond(&p, &ctx()), UserResponse::Discard);
        }
    }

    #[test]
    fn always_wrong_accept() {
        let p = profile();
        let script = ScriptedUser::new([]); // always discards
        let mut noisy = NoisyUser::new(script, 5).with_rates(0.0, 0.0, 1.0);
        match noisy.respond(&p, &ctx()) {
            UserResponse::Threshold(tau) => assert!(tau > 0.0),
            r => panic!("expected forced accept, got {r:?}"),
        }
    }

    #[test]
    fn name_reflects_inner() {
        let noisy = NoisyUser::new(ScriptedUser::new([]), 1);
        assert_eq!(noisy.name(), "noisy(scripted)");
    }

    #[test]
    #[should_panic(expected = "bad p_wrong_discard")]
    fn invalid_rate_panics() {
        NoisyUser::new(ScriptedUser::new([]), 1).with_rates(0.0, 1.5, 0.0);
    }
}
