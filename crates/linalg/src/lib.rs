//! Dense linear algebra for the `hinn` workspace.
//!
//! This crate implements, from scratch, exactly the numerical machinery the
//! paper's system needs:
//!
//! * dense vectors and small row-major matrices ([`Matrix`]),
//! * sample statistics — mean vectors, covariance matrices, per-direction
//!   variances ([`stats`]),
//! * a cyclic-Jacobi symmetric eigensolver ([`eigen`]) used to obtain the
//!   principal components of a query cluster (Fig. 4 of the paper),
//! * orthonormal subspaces with projection and orthogonal-complement
//!   operations ([`subspace`]) used to keep the `d/2` projections of a major
//!   iteration mutually orthogonal (§2 of the paper),
//! * Minkowski distances, including the fractional metrics discussed in the
//!   paper's related work ([`vector::lp_dist`]),
//! * explicitly vectorized batch kernels over columnar point storage
//!   ([`simd`]), bit-identical to the scalar spec functions on every f64
//!   path (scalar / AVX2 / AVX-512 backends, `HINN_SIMD` to pin one).
//!
//! Dimensionalities in the target workloads are small (`d ≤ 64`), so a
//! straightforward `O(d^3)` Jacobi sweep is both simple and plenty fast; no
//! external BLAS/LAPACK is used.

pub mod eigen;
pub mod error;
pub mod matrix;
pub mod simd;
pub mod stats;
pub mod subspace;
pub mod vector;

pub use eigen::{jacobi_eigen, try_jacobi_eigen, EigenOutcome, SymEigen};
pub use error::LinalgError;
pub use hinn_par::Parallelism;
pub use matrix::Matrix;
pub use simd::{active_backend, Backend};
pub use stats::{
    covariance_matrix, covariance_matrix_with, mean_vector, mean_vector_with, variance_along,
    variance_along_with,
};
pub use subspace::Subspace;
