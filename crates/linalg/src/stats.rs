//! Sample statistics over point sets.
//!
//! Points are rows: a data set is a `&[Vec<f64>]` (or any slice of rows of a
//! common dimensionality). These routines feed the query-cluster subspace
//! determination of Fig. 4: the covariance matrix `Σ` of the cluster, and
//! per-direction variances `γᵢ` of the whole data used in the variance ratio
//! `λᵢ / γᵢ`.

use crate::matrix::Matrix;
use crate::vector::dot;

/// Component-wise mean of a non-empty point set.
///
/// # Panics
/// Panics if `points` is empty.
pub fn mean_vector(points: &[Vec<f64>]) -> Vec<f64> {
    assert!(!points.is_empty(), "mean_vector: empty point set");
    let d = points[0].len();
    let mut m = vec![0.0; d];
    for p in points {
        assert_eq!(p.len(), d, "mean_vector: ragged point set");
        for (mi, pi) in m.iter_mut().zip(p) {
            *mi += pi;
        }
    }
    let n = points.len() as f64;
    for mi in &mut m {
        *mi /= n;
    }
    m
}

/// Sample covariance matrix (`1/n` normalization, i.e. the population form
/// the paper's Fig. 4 uses — the eigen *directions* and variance *ratios*
/// are unaffected by the `1/n` vs `1/(n−1)` choice).
///
/// # Panics
/// Panics if `points` is empty.
pub fn covariance_matrix(points: &[Vec<f64>]) -> Matrix {
    assert!(!points.is_empty(), "covariance_matrix: empty point set");
    let d = points[0].len();
    let mean = mean_vector(points);
    let mut cov = Matrix::zeros(d, d);
    let mut centered = vec![0.0; d];
    for p in points {
        for (c, (pi, mi)) in centered.iter_mut().zip(p.iter().zip(&mean)) {
            *c = pi - mi;
        }
        for i in 0..d {
            let ci = centered[i];
            if ci == 0.0 {
                continue;
            }
            let row = cov.row_mut(i);
            for (j, &cj) in centered.iter().enumerate().skip(i) {
                row[j] += ci * cj;
            }
        }
    }
    let n = points.len() as f64;
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] / n;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    cov
}

/// Variance of the point set when projected onto a (not necessarily unit)
/// `direction`. For a unit direction this is `uᵀ Σ u`.
///
/// # Panics
/// Panics if `points` is empty or dimensions mismatch.
pub fn variance_along(points: &[Vec<f64>], direction: &[f64]) -> f64 {
    assert!(!points.is_empty(), "variance_along: empty point set");
    let n = points.len() as f64;
    let proj: Vec<f64> = points.iter().map(|p| dot(p, direction)).collect();
    let mean: f64 = proj.iter().sum::<f64>() / n;
    proj.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n
}

/// Per-coordinate variances — the axis-parallel specialization used when the
/// system runs in interpretable (axis-parallel) projection mode.
pub fn coordinate_variances(points: &[Vec<f64>]) -> Vec<f64> {
    assert!(!points.is_empty(), "coordinate_variances: empty point set");
    let d = points[0].len();
    let mean = mean_vector(points);
    let mut var = vec![0.0; d];
    for p in points {
        for ((v, pi), mi) in var.iter_mut().zip(p).zip(&mean) {
            let c = pi - mi;
            *v += c * c;
        }
    }
    let n = points.len() as f64;
    for v in &mut var {
        *v /= n;
    }
    var
}

/// Standard deviation of a scalar sample (population form). Returns 0 for
/// samples of size < 2. Used by Silverman's bandwidth rule in `hinn-kde`.
pub fn std_dev(sample: &[f64]) -> f64 {
    if sample.len() < 2 {
        return 0.0;
    }
    let n = sample.len() as f64;
    let mean: f64 = sample.iter().sum::<f64>() / n;
    (sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::jacobi_eigen;

    #[test]
    fn mean_of_known_points() {
        let pts = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        assert_eq!(mean_vector(&pts), vec![3.0, 4.0]);
    }

    #[test]
    fn covariance_of_axis_aligned_data() {
        // Points on the x-axis: variance in x, none in y, no cross term.
        let pts = vec![vec![-1.0, 0.0], vec![1.0, 0.0]];
        let c = covariance_matrix(&pts);
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(c[(1, 1)].abs() < 1e-12);
        assert!(c[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn covariance_is_symmetric_psd() {
        let pts = vec![
            vec![1.0, 2.0, 0.5],
            vec![2.0, 1.0, 1.5],
            vec![0.0, 0.5, 2.0],
            vec![1.5, 1.5, 1.0],
        ];
        let c = covariance_matrix(&pts);
        assert!(c.is_symmetric(1e-12));
        let e = jacobi_eigen(&c);
        for v in e.values {
            assert!(v > -1e-10, "covariance must be PSD, got eigenvalue {v}");
        }
    }

    #[test]
    fn variance_along_matches_quadratic_form() {
        let pts = vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.5],
            vec![0.5, -1.0],
            vec![-0.5, 0.5],
        ];
        let c = covariance_matrix(&pts);
        let u = [0.6, 0.8];
        let quad = c.matvec(&u).iter().zip(&u).map(|(a, b)| a * b).sum::<f64>();
        assert!((variance_along(&pts, &u) - quad).abs() < 1e-12);
    }

    #[test]
    fn coordinate_variances_match_diagonal() {
        let pts = vec![vec![1.0, 5.0], vec![3.0, 5.0], vec![2.0, 5.0]];
        let c = covariance_matrix(&pts);
        let v = coordinate_variances(&pts);
        assert!((v[0] - c[(0, 0)]).abs() < 1e-12);
        assert!((v[1] - c[(1, 1)]).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12, "constant coordinate has zero variance");
    }

    #[test]
    fn std_dev_known() {
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_mean_panics() {
        mean_vector(&[]);
    }
}
