//! Sample statistics over point sets.
//!
//! Points are rows: a data set is a `&[Vec<f64>]` (or any slice of rows of a
//! common dimensionality). These routines feed the query-cluster subspace
//! determination of Fig. 4: the covariance matrix `Σ` of the cluster, and
//! per-direction variances `γᵢ` of the whole data used in the variance ratio
//! `λᵢ / γᵢ`.
//!
//! Every routine has a `*_with` variant taking a [`Parallelism`] budget; the
//! plain name is the serial schedule (`Parallelism::serial()`). Both run the
//! *same* fixed-chunk algorithm with an ordered reduction (see `hinn-par`),
//! so the result is bit-identical for every thread count.

use crate::matrix::Matrix;
use crate::vector::dot;
use hinn_par::{map_reduce_chunks, Parallelism};

/// Component-wise mean of a non-empty point set.
///
/// # Panics
/// Panics if `points` is empty.
pub fn mean_vector(points: &[Vec<f64>]) -> Vec<f64> {
    mean_vector_with(Parallelism::serial(), points)
}

/// [`mean_vector`] with an explicit thread budget. Bit-identical to the
/// serial path for every budget.
///
/// # Panics
/// Panics if `points` is empty.
pub fn mean_vector_with(par: Parallelism, points: &[Vec<f64>]) -> Vec<f64> {
    assert!(!points.is_empty(), "mean_vector: empty point set");
    let d = points[0].len();
    let mut m = map_reduce_chunks(
        par,
        points.len(),
        |r| {
            let mut s = vec![0.0; d];
            for p in &points[r] {
                assert_eq!(p.len(), d, "mean_vector: ragged point set");
                for (si, pi) in s.iter_mut().zip(p) {
                    *si += pi;
                }
            }
            s
        },
        vec![0.0; d],
        |mut acc, s| {
            for (a, b) in acc.iter_mut().zip(&s) {
                *a += b;
            }
            acc
        },
    );
    let n = points.len() as f64;
    for mi in &mut m {
        *mi /= n;
    }
    m
}

/// Sample covariance matrix (`1/n` normalization, i.e. the population form
/// the paper's Fig. 4 uses — the eigen *directions* and variance *ratios*
/// are unaffected by the `1/n` vs `1/(n−1)` choice).
///
/// # Panics
/// Panics if `points` is empty.
pub fn covariance_matrix(points: &[Vec<f64>]) -> Matrix {
    covariance_matrix_with(Parallelism::serial(), points)
}

/// [`covariance_matrix`] with an explicit thread budget. Each chunk of rows
/// accumulates a partial upper-triangular `Σ`; partials merge in chunk
/// order, so the result is bit-identical for every budget.
///
/// # Panics
/// Panics if `points` is empty.
pub fn covariance_matrix_with(par: Parallelism, points: &[Vec<f64>]) -> Matrix {
    let _span = hinn_obs::span!("linalg.covariance");
    assert!(!points.is_empty(), "covariance_matrix: empty point set");
    hinn_obs::counter("linalg.points_scanned", points.len() as u64);
    let d = points[0].len();
    let mean = mean_vector_with(par, points);
    let mut cov = map_reduce_chunks(
        par,
        points.len(),
        |r| {
            let mut part = Matrix::zeros(d, d);
            let mut centered = vec![0.0; d];
            for p in &points[r] {
                for (c, (pi, mi)) in centered.iter_mut().zip(p.iter().zip(&mean)) {
                    *c = pi - mi;
                }
                for i in 0..d {
                    let ci = centered[i];
                    if ci == 0.0 {
                        continue;
                    }
                    let row = part.row_mut(i);
                    for (j, &cj) in centered.iter().enumerate().skip(i) {
                        row[j] += ci * cj;
                    }
                }
            }
            part
        },
        Matrix::zeros(d, d),
        |mut acc, part| {
            for i in 0..d {
                for j in i..d {
                    acc[(i, j)] += part[(i, j)];
                }
            }
            acc
        },
    );
    let n = points.len() as f64;
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] / n;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    cov
}

/// Variance of the point set when projected onto a (not necessarily unit)
/// `direction`. For a unit direction this is `uᵀ Σ u`.
///
/// # Panics
/// Panics if `points` is empty or dimensions mismatch.
pub fn variance_along(points: &[Vec<f64>], direction: &[f64]) -> f64 {
    variance_along_with(Parallelism::serial(), points, direction)
}

/// [`variance_along`] with an explicit thread budget. Two chunked passes
/// (projection mean, then squared deviations), each with an ordered
/// reduction — bit-identical for every budget.
///
/// # Panics
/// Panics if `points` is empty or dimensions mismatch.
pub fn variance_along_with(par: Parallelism, points: &[Vec<f64>], direction: &[f64]) -> f64 {
    assert!(!points.is_empty(), "variance_along: empty point set");
    let n = points.len() as f64;
    let sum = map_reduce_chunks(
        par,
        points.len(),
        |r| points[r].iter().map(|p| dot(p, direction)).sum::<f64>(),
        0.0f64,
        |a, p| a + p,
    );
    let mean = sum / n;
    let ss = map_reduce_chunks(
        par,
        points.len(),
        |r| {
            points[r]
                .iter()
                .map(|p| {
                    let x = dot(p, direction) - mean;
                    x * x
                })
                .sum::<f64>()
        },
        0.0f64,
        |a, p| a + p,
    );
    ss / n
}

/// Per-coordinate variances — the axis-parallel specialization used when the
/// system runs in interpretable (axis-parallel) projection mode.
pub fn coordinate_variances(points: &[Vec<f64>]) -> Vec<f64> {
    coordinate_variances_with(Parallelism::serial(), points)
}

/// [`coordinate_variances`] with an explicit thread budget. Bit-identical
/// to the serial path for every budget.
pub fn coordinate_variances_with(par: Parallelism, points: &[Vec<f64>]) -> Vec<f64> {
    assert!(!points.is_empty(), "coordinate_variances: empty point set");
    let d = points[0].len();
    let mean = mean_vector_with(par, points);
    let mut var = map_reduce_chunks(
        par,
        points.len(),
        |r| {
            let mut s = vec![0.0; d];
            for p in &points[r] {
                for ((v, pi), mi) in s.iter_mut().zip(p).zip(&mean) {
                    let c = pi - mi;
                    *v += c * c;
                }
            }
            s
        },
        vec![0.0; d],
        |mut acc, s| {
            for (a, b) in acc.iter_mut().zip(&s) {
                *a += b;
            }
            acc
        },
    );
    let n = points.len() as f64;
    for v in &mut var {
        *v /= n;
    }
    var
}

/// Standard deviation of a scalar sample (population form). Returns 0 for
/// samples of size < 2. Used by Silverman's bandwidth rule in `hinn-kde`.
pub fn std_dev(sample: &[f64]) -> f64 {
    if sample.len() < 2 {
        return 0.0;
    }
    let n = sample.len() as f64;
    let mean: f64 = sample.iter().sum::<f64>() / n;
    (sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::jacobi_eigen;

    #[test]
    fn mean_of_known_points() {
        let pts = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        assert_eq!(mean_vector(&pts), vec![3.0, 4.0]);
    }

    #[test]
    fn covariance_of_axis_aligned_data() {
        // Points on the x-axis: variance in x, none in y, no cross term.
        let pts = vec![vec![-1.0, 0.0], vec![1.0, 0.0]];
        let c = covariance_matrix(&pts);
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!(c[(1, 1)].abs() < 1e-12);
        assert!(c[(0, 1)].abs() < 1e-12);
    }

    #[test]
    fn covariance_is_symmetric_psd() {
        let pts = vec![
            vec![1.0, 2.0, 0.5],
            vec![2.0, 1.0, 1.5],
            vec![0.0, 0.5, 2.0],
            vec![1.5, 1.5, 1.0],
        ];
        let c = covariance_matrix(&pts);
        assert!(c.is_symmetric(1e-12));
        let e = jacobi_eigen(&c);
        for v in e.values {
            assert!(v > -1e-10, "covariance must be PSD, got eigenvalue {v}");
        }
    }

    #[test]
    fn variance_along_matches_quadratic_form() {
        let pts = vec![
            vec![1.0, 0.0],
            vec![-1.0, 0.5],
            vec![0.5, -1.0],
            vec![-0.5, 0.5],
        ];
        let c = covariance_matrix(&pts);
        let u = [0.6, 0.8];
        let quad = c.matvec(&u).iter().zip(&u).map(|(a, b)| a * b).sum::<f64>();
        assert!((variance_along(&pts, &u) - quad).abs() < 1e-12);
    }

    #[test]
    fn coordinate_variances_match_diagonal() {
        let pts = vec![vec![1.0, 5.0], vec![3.0, 5.0], vec![2.0, 5.0]];
        let c = covariance_matrix(&pts);
        let v = coordinate_variances(&pts);
        assert!((v[0] - c[(0, 0)]).abs() < 1e-12);
        assert!((v[1] - c[(1, 1)]).abs() < 1e-12);
        assert!(v[1].abs() < 1e-12, "constant coordinate has zero variance");
    }

    #[test]
    fn std_dev_known() {
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[1.0]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_mean_panics() {
        mean_vector(&[]);
    }

    /// A pseudo-random point set big enough to clear `SERIAL_CUTOFF`, so
    /// parallel runs actually spawn workers.
    fn big_points(n: usize, d: usize) -> Vec<Vec<f64>> {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..d).map(|_| unif() * 10.0 - 5.0).collect())
            .collect()
    }

    #[test]
    fn parallel_stats_bit_identical_to_serial() {
        let pts = big_points(hinn_par::SERIAL_CUTOFF + 311, 6);
        let dir = vec![0.3, -0.2, 0.5, 0.1, -0.7, 0.4];
        let mean_s = mean_vector(&pts);
        let cov_s = covariance_matrix(&pts);
        let var_s = coordinate_variances(&pts);
        let along_s = variance_along(&pts, &dir);
        for t in [1usize, 2, 3, 7] {
            let par = Parallelism::fixed(t);
            let mean_p = mean_vector_with(par, &pts);
            for (a, b) in mean_s.iter().zip(&mean_p) {
                assert_eq!(a.to_bits(), b.to_bits(), "mean, threads={t}");
            }
            let cov_p = covariance_matrix_with(par, &pts);
            for i in 0..6 {
                for j in 0..6 {
                    assert_eq!(
                        cov_s[(i, j)].to_bits(),
                        cov_p[(i, j)].to_bits(),
                        "cov[{i},{j}], threads={t}"
                    );
                }
            }
            let var_p = coordinate_variances_with(par, &pts);
            for (a, b) in var_s.iter().zip(&var_p) {
                assert_eq!(a.to_bits(), b.to_bits(), "variances, threads={t}");
            }
            assert_eq!(
                along_s.to_bits(),
                variance_along_with(par, &pts, &dir).to_bits(),
                "variance_along, threads={t}"
            );
        }
    }

    #[test]
    fn zero_variance_covariance_is_exactly_zero_in_parallel() {
        // n identical rows, above the cutoff: every centered coordinate is
        // exactly 0.0, so Σ must be the exact zero matrix on every schedule.
        let row = vec![3.25, -1.5, 7.0];
        let pts: Vec<Vec<f64>> = vec![row; hinn_par::SERIAL_CUTOFF + 5];
        for t in [1usize, 2, 7] {
            let c = covariance_matrix_with(Parallelism::fixed(t), &pts);
            for i in 0..3 {
                for j in 0..3 {
                    assert_eq!(c[(i, j)].to_bits(), 0.0f64.to_bits(), "threads={t}");
                }
            }
        }
    }

    #[test]
    fn stats_handle_n_smaller_than_threads() {
        let pts = vec![vec![1.0, 2.0]];
        let par = Parallelism::fixed(8);
        assert_eq!(mean_vector_with(par, &pts), vec![1.0, 2.0]);
        assert_eq!(coordinate_variances_with(par, &pts), vec![0.0, 0.0]);
        assert_eq!(variance_along_with(par, &pts, &[1.0, 0.0]), 0.0);
    }
}
