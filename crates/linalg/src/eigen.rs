//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The paper's query-cluster subspace routine (Fig. 4) diagonalizes the
//! covariance matrix of the current query cluster. Covariance matrices are
//! symmetric positive semi-definite and small (`d × d`, `d ≤ 64`), for which
//! Jacobi rotations are robust, simple, and accurate: every sweep annihilates
//! each off-diagonal entry once, converging quadratically.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `A = V · diag(values) · Vᵀ`.
///
/// Eigenvalues are sorted in **descending** order; `vectors.col(k)` is the
/// unit eigenvector for `values[k]`, and the columns form an orthonormal
/// basis.
#[derive(Clone, Debug)]
pub struct SymEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as matrix columns, same order as `values`.
    pub vectors: Matrix,
}

impl SymEigen {
    /// Eigenvector for `values[k]` as an owned vector.
    pub fn vector(&self, k: usize) -> Vec<f64> {
        self.vectors.col(k)
    }

    /// Reconstruct `V · diag(values) · Vᵀ` (for testing/validation).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut vd = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                vd[(i, j)] = self.vectors[(i, j)] * self.values[j];
            }
        }
        vd.matmul(&self.vectors.transpose())
    }
}

/// Maximum number of full Jacobi sweeps before giving up. Convergence is
/// quadratic; well-conditioned `64 × 64` inputs finish in < 10 sweeps.
const MAX_SWEEPS: usize = 64;

/// Result of a *fallible* symmetric eigendecomposition: the decomposition
/// itself plus how hard it was to get.
#[derive(Clone, Debug)]
pub struct EigenOutcome {
    /// The (possibly best-effort) decomposition.
    pub eigen: SymEigen,
    /// `true` iff the off-diagonal mass fell below tolerance within the
    /// sweep budget. When `false`, [`EigenOutcome::eigen`] is the state
    /// after the last completed sweep — still an orthonormal similarity
    /// transform of the input, just not fully diagonalized. Callers that
    /// need exact principal directions should treat non-convergence as a
    /// degradation (the search core falls back to axis-parallel
    /// candidates).
    pub converged: bool,
    /// Full sweeps actually performed.
    pub sweeps: usize,
}

/// Decompose a symmetric matrix with the cyclic Jacobi method.
///
/// # Panics
/// Panics if `a` is not square, not symmetric (tolerance scaled to the
/// matrix magnitude), or contains non-finite entries.
pub fn jacobi_eigen(a: &Matrix) -> SymEigen {
    match try_jacobi_eigen(a) {
        Ok(outcome) => outcome.eigen,
        Err(e) => panic!("jacobi_eigen: {e}"),
    }
}

/// Fallible [`jacobi_eigen`]: typed errors instead of panics, and
/// non-convergence reported as data (the best sweep is returned) rather
/// than hidden.
///
/// The `eigen.converge` fault point (see `hinn-fault`) caps the sweep
/// budget at one, deterministically forcing the non-converged arm so tests
/// can exercise the caller's degradation path.
pub fn try_jacobi_eigen(a: &Matrix) -> Result<EigenOutcome, LinalgError> {
    let _span = hinn_obs::span!("linalg.eigen");
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    // `Matrix::max_abs` folds with `f64::max`, which ignores NaN, so scan
    // the entries directly.
    let finite = (0..a.rows()).all(|i| (0..a.cols()).all(|j| a[(i, j)].is_finite()));
    if !finite {
        return Err(LinalgError::NonFinite {
            context: "jacobi_eigen",
        });
    }
    let max_abs = a.max_abs();
    let scale_tol = 1e-8 * (1.0 + max_abs);
    if !a.is_symmetric(scale_tol) {
        return Err(LinalgError::NotSymmetric {
            tolerance: scale_tol,
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(EigenOutcome {
            eigen: SymEigen {
                values: Vec::new(),
                vectors: Matrix::zeros(0, 0),
            },
            converged: true,
            sweeps: 0,
        });
    }

    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let off = |m: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += m[(i, j)] * m[(i, j)];
            }
        }
        s
    };
    let tol = 1e-22 * (1.0 + max_abs).powi(2);

    // Deterministic fault injection: forcing `eigen.converge` caps the
    // sweep budget at one and reports non-convergence unconditionally (a
    // near-diagonal input could otherwise still reach tolerance in one
    // sweep, and callers' fallback arms must fire deterministically).
    let faulted = hinn_fault::point("eigen.converge");
    let sweep_budget = if faulted { 1 } else { MAX_SWEEPS };

    let mut sweeps = 0u64;
    let mut rotations = 0u64;
    for _sweep in 0..sweep_budget {
        if off(&m) <= tol {
            break;
        }
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                rotations += 1;
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Stable rotation computation (Golub & Van Loan, Alg. 8.4.1).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation J(p,q,θ) on both sides: M ← Jᵀ M J.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors: V ← V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let converged = !faulted && off(&m) <= tol;

    if hinn_obs::enabled() {
        hinn_obs::counter("linalg.eigenpairs", n as u64);
        hinn_obs::counter("linalg.jacobi_sweeps", sweeps);
        hinn_obs::counter("linalg.jacobi_rotations", rotations);
    }

    // Extract, then sort eigenpairs by descending eigenvalue. NaN policy:
    // non-NaN pairs compare exactly as `partial_cmp` (so ±0.0 ties keep
    // their stable-sort order and results stay bit-identical); a NaN — not
    // producible from the finiteness-checked input, but cheap to defend
    // against — falls back to the IEEE total order instead of panicking.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| {
        diag[j]
            .partial_cmp(&diag[i])
            .unwrap_or_else(|| diag[j].total_cmp(&diag[i]))
    });

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_j)] = v[(i, old_j)];
        }
    }
    Ok(EigenOutcome {
        eigen: SymEigen { values, vectors },
        converged,
        sweeps: sweeps as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::{dot, norm};

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 1.0]]);
        let e = jacobi_eigen(&a);
        assert_close(e.values[0], 3.0, 1e-12);
        assert_close(e.values[1], 1.0, 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with vectors (1,1)/√2, (1,-1)/√2.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        assert_close(e.values[0], 3.0, 1e-10);
        assert_close(e.values[1], 1.0, 1e-10);
        let v0 = e.vector(0);
        assert_close(v0[0].abs(), 1.0 / 2f64.sqrt(), 1e-10);
        assert_close(v0[0], v0[1], 1e-10);
    }

    #[test]
    fn known_3x3_reconstruction() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.5, -1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        let r = e.reconstruct();
        assert!(a.sub(&r).max_abs() < 1e-9, "reconstruction error too large");
        // Trace preserved.
        let sum: f64 = e.values.iter().sum();
        assert_close(sum, 9.0, 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 6.0, 2.0], &[1.0, 2.0, 7.0]]);
        let e = jacobi_eigen(&a);
        for i in 0..3 {
            let vi = e.vector(i);
            assert_close(norm(&vi), 1.0, 1e-10);
            for j in (i + 1)..3 {
                assert_close(dot(&vi, &e.vector(j)), 0.0, 1e-10);
            }
        }
    }

    #[test]
    fn values_sorted_descending() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 9.0, 0.0], &[0.0, 0.0, 4.0]]);
        let e = jacobi_eigen(&a);
        assert_eq!(e.values.len(), 3);
        assert!(e.values[0] >= e.values[1] && e.values[1] >= e.values[2]);
        assert_close(e.values[0], 9.0, 1e-12);
    }

    #[test]
    fn satisfies_eigen_equation() {
        let a = Matrix::from_rows(&[&[2.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 2.0]]);
        let e = jacobi_eigen(&a);
        for k in 0..3 {
            let v = e.vector(k);
            let av = a.matvec(&v);
            for i in 0..3 {
                assert_close(av[i], e.values[k] * v[i], 1e-9);
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let e = jacobi_eigen(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
    }

    #[test]
    fn one_by_one() {
        let e = jacobi_eigen(&Matrix::from_rows(&[&[7.0]]));
        assert_eq!(e.values, vec![7.0]);
        assert_close(e.vectors[(0, 0)].abs(), 1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_panics() {
        jacobi_eigen(&Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]));
    }

    #[test]
    fn try_variant_reports_convergence_and_errors() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let out = try_jacobi_eigen(&a).unwrap();
        assert!(out.converged);
        assert_close(out.eigen.values[0], 3.0, 1e-10);

        let rect = Matrix::zeros(2, 3);
        assert!(matches!(
            try_jacobi_eigen(&rect),
            Err(LinalgError::NotSquare { rows: 2, cols: 3 })
        ));

        let asym = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(matches!(
            try_jacobi_eigen(&asym),
            Err(LinalgError::NotSymmetric { .. })
        ));

        let nan = Matrix::from_rows(&[&[f64::NAN, 0.0], &[0.0, 1.0]]);
        assert!(matches!(
            try_jacobi_eigen(&nan),
            Err(LinalgError::NonFinite { .. })
        ));
    }

    #[test]
    fn forced_non_convergence_returns_best_sweep() {
        let a = Matrix::from_rows(&[&[5.0, 2.0, 1.0], &[2.0, 6.0, 2.0], &[1.0, 2.0, 7.0]]);
        let plan = std::sync::Arc::new(
            hinn_fault::FaultPlan::new().with("eigen.converge", hinn_fault::FaultMode::Always),
        );
        let out = {
            let _g = hinn_fault::install_local(plan.clone());
            try_jacobi_eigen(&a).unwrap()
        };
        assert_eq!(plan.fired("eigen.converge"), 1);
        assert!(!out.converged, "one sweep cannot diagonalize this matrix");
        assert!(out.sweeps <= 1);
        // Even the stalled result is an orthonormal transform: columns of V
        // stay unit-norm and mutually orthogonal.
        for i in 0..3 {
            let vi = out.eigen.vector(i);
            assert_close(norm(&vi), 1.0, 1e-10);
            for j in (i + 1)..3 {
                assert_close(dot(&vi, &out.eigen.vector(j)), 0.0, 1e-10);
            }
        }
        // And the unfaulted run still converges.
        assert!(try_jacobi_eigen(&a).unwrap().converged);
    }

    #[test]
    fn larger_random_like_matrix() {
        // Deterministic pseudo-random symmetric matrix, n = 12.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = jacobi_eigen(&a);
        assert!(a.sub(&e.reconstruct()).max_abs() < 1e-8);
    }
}
