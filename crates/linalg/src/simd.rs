//! Explicitly vectorized kernels for the workspace's raw hot loops, with a
//! scalar fallback proven **bit-identical** (the same proof obligation
//! `hinn-par` discharges for serial-vs-parallel).
//!
//! # Why these kernels can be SIMD *and* bit-identical
//!
//! IEEE-754 addition, subtraction, multiplication, division, and square
//! root are *exactly rounded*: for given operands the result is the same
//! on every conforming implementation, scalar or vector lane. Two rules
//! follow:
//!
//! 1. **Elementwise maps vectorize freely.** `y[i] += c·x[i]`, `v = u/h`,
//!    `d.sqrt()` — each output depends on one input element through a
//!    fixed op sequence, so an 8-wide lane computes the very bits the
//!    scalar loop would. (Rust/LLVM never contracts `a*b + c` into an FMA
//!    without explicit fast-math, so the op sequence is preserved.)
//! 2. **Reductions must keep their association.** `Σ dᵢ²` folded
//!    left-to-right is a *different* f64 than the same terms folded
//!    pairwise. The spec kernels ([`crate::vector::dot`],
//!    [`crate::vector::dist_sq`]) fold sequentially, so a row-at-a-time
//!    reduction cannot be widened. The columnar kernels sidestep this:
//!    they vectorize **across points** (one point per lane) while each
//!    point's own accumulation still runs in ascending-dimension order —
//!    the association of the scalar spec, at 8 points per instruction.
//!
//! Everything here keeps f64 end to end and is bit-identical across
//! backends; the *only* approximate path is the separate `f32` column
//! scan ([`dist_sq_cols_f32`]), which callers opt into explicitly (see
//! `hinn_data::ColumnStore::f32_cols`).
//!
//! # Backends and dispatch
//!
//! Three backends: [`Backend::Scalar`] (plain loops at the crate's base
//! ISA), [`Backend::Avx2`] and [`Backend::Avx512`] (the same loop bodies
//! compiled under `#[target_feature]`, plus hand-written intrinsics where
//! autovectorization needs help — all restricted to exactly-rounded ops).
//! The active backend is chosen once per process: `HINN_SIMD`
//! (`scalar | avx2 | avx512 | auto`) overrides, otherwise the best
//! runtime-detected feature wins. Because every backend is bit-identical
//! on the f64 kernels, the choice is a pure performance knob — the
//! equivalence suite (`crates/linalg/tests/simd_equivalence.rs`) and the
//! golden-session CI matrix hold it to that.

use std::sync::OnceLock;

/// Environment variable selecting the kernel backend:
/// `scalar`, `avx2`, `avx512`, or `auto` (the default — best detected).
pub const SIMD_ENV: &str = "HINN_SIMD";

/// A vectorization backend. All f64 kernels are bit-identical across
/// backends; see the module docs for the proof sketch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Plain loops at the build's base instruction set.
    Scalar,
    /// 4-wide f64 via AVX2 `#[target_feature]` + intrinsics.
    Avx2,
    /// 8-wide f64 via AVX-512F `#[target_feature]` + intrinsics.
    Avx512,
}

impl Backend {
    /// Human-readable backend name (appears in bench output).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::Avx512 => "avx512",
        }
    }

    /// Every backend usable on this machine, `Scalar` first.
    pub fn available() -> Vec<Backend> {
        let mut out = vec![Backend::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                out.push(Backend::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f") {
                out.push(Backend::Avx512);
            }
        }
        out
    }
}

/// The process-wide active backend: `HINN_SIMD` if set (unknown values
/// and unavailable requests fall back to detection), else the best
/// runtime-detected feature. Resolved once and cached.
pub fn active_backend() -> Backend {
    static ACTIVE: OnceLock<Backend> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let avail = Backend::available();
        let best = *avail.last().unwrap_or(&Backend::Scalar);
        match std::env::var(SIMD_ENV).as_deref() {
            Ok("scalar") => Backend::Scalar,
            Ok("avx2") if avail.contains(&Backend::Avx2) => Backend::Avx2,
            Ok("avx512") if avail.contains(&Backend::Avx512) => Backend::Avx512,
            _ => best,
        }
    })
}

/// Dispatch `$body(args…)` to the loop compiled for backend `$b`.
///
/// Safety of the `unsafe` arms: the `Avx2`/`Avx512` variants are only
/// ever produced by [`Backend::available`]/[`active_backend`] after the
/// matching `is_x86_feature_detected!` check (or handed in by tests that
/// picked them from `available()`).
macro_rules! dispatch {
    ($b:expr, $body:ident ( $($arg:expr),* $(,)? )) => {
        match $b {
            Backend::Scalar => scalar::$body($($arg),*),
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => unsafe { avx2::$body($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512 => unsafe { avx512::$body($($arg),*) },
            #[cfg(not(target_arch = "x86_64"))]
            _ => scalar::$body($($arg),*),
        }
    };
}

// ---------------------------------------------------------------------------
// Public dispatched kernels
// ---------------------------------------------------------------------------

/// Columnar squared-Euclidean scan: `out[i] = ‖pᵢ − q‖²` where point `i`
/// is row `i` of the column set (`cols[j][i]` = coordinate `j` of point
/// `i`). Bit-identical to calling [`crate::vector::dist_sq`] on each row:
/// per point the squared deltas accumulate in ascending-dimension order,
/// the association of the scalar spec — SIMD runs across *points*.
///
/// # Panics
/// Panics if `cols.len() != q.len()` or any column length ≠ `out.len()`.
pub fn dist_sq_cols(cols: &[&[f64]], q: &[f64], out: &mut [f64]) {
    dist_sq_cols_backend(active_backend(), cols, q, out);
}

/// [`dist_sq_cols`] pinned to an explicit backend (equivalence tests).
#[doc(hidden)]
pub fn dist_sq_cols_backend(b: Backend, cols: &[&[f64]], q: &[f64], out: &mut [f64]) {
    check_cols(cols.len(), q.len(), cols.iter().map(|c| c.len()), out.len());
    dispatch!(b, dist_sq_cols_f64(cols, q, out))
}

/// Columnar Euclidean scan: [`dist_sq_cols`] then an exact vector square
/// root — bit-identical to [`crate::vector::dist`] per row (`sqrt` is an
/// exactly rounded unary op).
///
/// # Panics
/// Panics as [`dist_sq_cols`] does.
pub fn dist_cols(cols: &[&[f64]], q: &[f64], out: &mut [f64]) {
    let b = active_backend();
    dist_sq_cols_backend(b, cols, q, out);
    sqrt_inplace_backend(b, out);
}

/// Approximate f32 columnar squared-distance scan for the opt-in f32
/// mirror (`hinn_data::ColumnStore::f32_cols`). Deterministic (fixed
/// ascending-dimension association, identical across backends at f32) but
/// **not** comparable bit-for-bit with the f64 path — candidate
/// generation only, never the exact tier.
///
/// # Panics
/// Panics if `cols.len() != q.len()` or any column length ≠ `out.len()`.
pub fn dist_sq_cols_f32(cols: &[&[f32]], q: &[f32], out: &mut [f32]) {
    dist_sq_cols_f32_backend(active_backend(), cols, q, out);
}

/// [`dist_sq_cols_f32`] pinned to an explicit backend.
#[doc(hidden)]
pub fn dist_sq_cols_f32_backend(b: Backend, cols: &[&[f32]], q: &[f32], out: &mut [f32]) {
    check_cols(cols.len(), q.len(), cols.iter().map(|c| c.len()), out.len());
    dispatch!(b, dist_sq_cols_f32(cols, q, out))
}

/// In-place elementwise square root (exactly rounded ⇒ bit-identical to
/// the scalar loop at any width).
pub fn sqrt_inplace(xs: &mut [f64]) {
    sqrt_inplace_backend(active_backend(), xs);
}

/// [`sqrt_inplace`] pinned to an explicit backend.
#[doc(hidden)]
pub fn sqrt_inplace_backend(b: Backend, xs: &mut [f64]) {
    dispatch!(b, sqrt_inplace(xs))
}

/// In-place `y ← y + c·x` — the vectorized body behind
/// [`crate::vector::axpy`]. Elementwise, hence bit-identical at any
/// width.
///
/// # Panics
/// Panics on length mismatch.
pub fn axpy_inplace(c: f64, x: &[f64], y: &mut [f64]) {
    axpy_inplace_backend(active_backend(), c, x, y);
}

/// [`axpy_inplace`] pinned to an explicit backend.
#[doc(hidden)]
pub fn axpy_inplace_backend(b: Backend, c: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: dimension mismatch");
    dispatch!(b, axpy(c, x, y))
}

/// Fused 8-way axpy: `y[i] += x₀[i]·c₀; y[i] += x₁[i]·c₁; …` in ascending
/// source order per element — bit-identical to eight sequential
/// [`axpy_inplace`] passes (each step is the same exactly rounded
/// mul-then-add; fusing changes only the memory traffic: one pass over
/// `y` instead of eight). This is the 8-wide unrolled KDE-column
/// accumulation: one call adds eight data points' kernel-column
/// contributions to one grid row.
///
/// # Panics
/// Panics if any `xs[b].len() != y.len()`.
pub fn axpy8(cs: &[f64; 8], xs: &[&[f64]; 8], y: &mut [f64]) {
    axpy8_backend(active_backend(), cs, xs, y);
}

/// [`axpy8`] pinned to an explicit backend.
#[doc(hidden)]
pub fn axpy8_backend(b: Backend, cs: &[f64; 8], xs: &[&[f64]; 8], y: &mut [f64]) {
    for x in xs {
        assert_eq!(x.len(), y.len(), "axpy8: dimension mismatch");
    }
    dispatch!(b, axpy8(cs, xs, y))
}

/// Gaussian-kernel preparation for one grid axis: for each `k`,
/// `out[k] = −0.5·z²` with `z = ((origin + (i0+k)·step) − center) / h` —
/// exactly the argument `hinn_kde::gaussian_kernel` feeds to `exp`, one
/// fused pass. Every op (int→f64 convert, `·step`, `+origin`, `−center`,
/// `/h`, the two multiplies) is exactly rounded, so the vector lanes
/// reproduce the scalar bits; the `exp` itself stays a scalar libm call
/// at the call site (transcendental — no bit-identical wide form).
pub fn gaussian_prep(out: &mut [f64], i0: usize, origin: f64, step: f64, center: f64, h: f64) {
    gaussian_prep_backend(active_backend(), out, i0, origin, step, center, h);
}

/// [`gaussian_prep`] pinned to an explicit backend.
#[doc(hidden)]
pub fn gaussian_prep_backend(
    b: Backend,
    out: &mut [f64],
    i0: usize,
    origin: f64,
    step: f64,
    center: f64,
    h: f64,
) {
    dispatch!(b, gaussian_prep(out, i0, origin, step, center, h))
}

/// In-place elementwise division `xs[i] ← xs[i] / c` (exactly rounded ⇒
/// bit-identical at any width). Division, not a reciprocal multiply: the
/// two round differently.
pub fn div_inplace(xs: &mut [f64], c: f64) {
    div_inplace_backend(active_backend(), xs, c);
}

/// [`div_inplace`] pinned to an explicit backend.
#[doc(hidden)]
pub fn div_inplace_backend(b: Backend, xs: &mut [f64], c: f64) {
    dispatch!(b, div_inplace(xs, c))
}

/// Shared shape check for the columnar scans.
fn check_cols(n_cols: usize, q_len: usize, col_lens: impl Iterator<Item = usize>, out_len: usize) {
    assert_eq!(n_cols, q_len, "columnar scan: dimension mismatch");
    for (j, len) in col_lens.enumerate() {
        assert_eq!(len, out_len, "columnar scan: column {j} length mismatch");
    }
}

// ---------------------------------------------------------------------------
// Loop bodies — written once, compiled per backend
// ---------------------------------------------------------------------------

/// Points per register block of the columnar distance scans. The block's
/// running sums live in a fixed-size local array — a handful of vector
/// registers — so the whole dimension loop runs without a single
/// read-modify-write round trip on `out`; each block is stored exactly
/// once. (A read-modify-write formulation gets loop-distributed by LLVM
/// into one full `out` pass per dimension, which triples the memory
/// traffic and was measured slower than the plain row scan.) Blocking
/// only reorders *memory traffic*; each `out[i]` still accumulates its
/// dimensions in ascending order from `0.0`, so the result is
/// bit-identical to the per-row spec fold.
const SCAN_BLOCK: usize = 32;

/// Stamp the columnar squared-distance scan body for an element type.
/// `#[inline(always)]` so each `#[target_feature]` wrapper inlines its
/// own copy and the compiler vectorizes it at that ISA.
macro_rules! dist_sq_cols_body {
    ($name:ident, $t:ty) => {
        #[inline(always)]
        #[allow(clippy::needless_range_loop)] // index loops keep the slices provably equal-length
        fn $name(cols: &[&[$t]], q: &[$t], out: &mut [$t]) {
            let n = out.len();
            let mut k = 0;
            while k + SCAN_BLOCK <= n {
                let mut acc = [0.0 as $t; SCAN_BLOCK];
                for (c, &qj) in cols.iter().zip(q) {
                    let c = &c[k..k + SCAN_BLOCK];
                    for l in 0..SCAN_BLOCK {
                        let d = c[l] - qj;
                        acc[l] += d * d;
                    }
                }
                out[k..k + SCAN_BLOCK].copy_from_slice(&acc);
                k += SCAN_BLOCK;
            }
            // Tail: the per-point spec fold verbatim.
            for i in k..n {
                let mut s = 0.0 as $t;
                for (c, &qj) in cols.iter().zip(q) {
                    let d = c[i] - qj;
                    s += d * d;
                }
                out[i] = s;
            }
        }
    };
}

dist_sq_cols_body!(dist_sq_cols_f64_body, f64);
dist_sq_cols_body!(dist_sq_cols_f32_body, f32);

#[inline(always)]
fn sqrt_inplace_body(xs: &mut [f64]) {
    for v in xs {
        *v = v.sqrt();
    }
}

#[inline(always)]
fn axpy_body(c: f64, x: &[f64], y: &mut [f64]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += xi * c;
    }
}

#[inline(always)]
#[allow(clippy::needless_range_loop)] // index loops keep the blocks provably equal-length
fn axpy8_body(cs: &[f64; 8], xs: &[&[f64]; 8], y: &mut [f64]) {
    // Register-blocked like the distance scan (see [`SCAN_BLOCK`]): each
    // block of `y` is loaded once, takes all eight contributions in slot
    // order while resident in registers, and is stored once. Per element
    // the adds happen in ascending slot order, so the result is
    // bit-identical to eight sequential [`axpy_body`] passes.
    let n = y.len();
    let mut k = 0;
    while k + SCAN_BLOCK <= n {
        let mut acc = [0.0f64; SCAN_BLOCK];
        acc.copy_from_slice(&y[k..k + SCAN_BLOCK]);
        for (x, &c) in xs.iter().zip(cs) {
            let x = &x[k..k + SCAN_BLOCK];
            for l in 0..SCAN_BLOCK {
                acc[l] += x[l] * c;
            }
        }
        y[k..k + SCAN_BLOCK].copy_from_slice(&acc);
        k += SCAN_BLOCK;
    }
    for i in k..n {
        let mut v = y[i];
        for (x, &c) in xs.iter().zip(cs) {
            v += x[i] * c;
        }
        y[i] = v;
    }
}

/// One element of the Gaussian prep — the single source of truth both the
/// scalar loop and the vector tails call.
#[inline(always)]
fn gaussian_prep_one(i: usize, origin: f64, step: f64, center: f64, h: f64) -> f64 {
    let g = origin + i as f64 * step;
    let u = g - center;
    let z = u / h;
    -0.5 * z * z
}

#[inline(always)]
fn gaussian_prep_body(out: &mut [f64], i0: usize, origin: f64, step: f64, center: f64, h: f64) {
    for (k, v) in out.iter_mut().enumerate() {
        *v = gaussian_prep_one(i0 + k, origin, step, center, h);
    }
}

#[inline(always)]
fn div_inplace_body(xs: &mut [f64], c: f64) {
    for v in xs {
        *v /= c;
    }
}

/// The scalar backend: the bodies at the crate's base ISA.
mod scalar {
    pub(super) fn dist_sq_cols_f64(cols: &[&[f64]], q: &[f64], out: &mut [f64]) {
        super::dist_sq_cols_f64_body(cols, q, out);
    }
    pub(super) fn dist_sq_cols_f32(cols: &[&[f32]], q: &[f32], out: &mut [f32]) {
        super::dist_sq_cols_f32_body(cols, q, out);
    }
    pub(super) fn sqrt_inplace(xs: &mut [f64]) {
        super::sqrt_inplace_body(xs);
    }
    pub(super) fn axpy(c: f64, x: &[f64], y: &mut [f64]) {
        super::axpy_body(c, x, y);
    }
    pub(super) fn axpy8(cs: &[f64; 8], xs: &[&[f64]; 8], y: &mut [f64]) {
        super::axpy8_body(cs, xs, y);
    }
    pub(super) fn gaussian_prep(
        out: &mut [f64],
        i0: usize,
        origin: f64,
        step: f64,
        center: f64,
        h: f64,
    ) {
        super::gaussian_prep_body(out, i0, origin, step, center, h);
    }
    pub(super) fn div_inplace(xs: &mut [f64], c: f64) {
        super::div_inplace_body(xs, c);
    }
}

/// Stamp a `#[target_feature]` backend module: same bodies, wider ISA.
/// Every function is `unsafe` to call; the dispatcher (and only the
/// dispatcher) calls them, after feature detection.
#[cfg(target_arch = "x86_64")]
macro_rules! x86_backend {
    ($mod_name:ident, $feature:literal) => {
        mod $mod_name {
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn dist_sq_cols_f64(cols: &[&[f64]], q: &[f64], out: &mut [f64]) {
                super::dist_sq_cols_f64_body(cols, q, out);
            }
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn dist_sq_cols_f32(cols: &[&[f32]], q: &[f32], out: &mut [f32]) {
                super::dist_sq_cols_f32_body(cols, q, out);
            }
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn sqrt_inplace(xs: &mut [f64]) {
                super::sqrt_inplace_body(xs);
            }
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn axpy(c: f64, x: &[f64], y: &mut [f64]) {
                super::axpy_body(c, x, y);
            }
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn axpy8(cs: &[f64; 8], xs: &[&[f64]; 8], y: &mut [f64]) {
                super::axpy8_body(cs, xs, y);
            }
            #[target_feature(enable = $feature)]
            pub(super) unsafe fn div_inplace(xs: &mut [f64], c: f64) {
                super::div_inplace_body(xs, c);
            }
        }
    };
}

#[cfg(target_arch = "x86_64")]
x86_backend!(avx2_base, "avx2");
#[cfg(target_arch = "x86_64")]
x86_backend!(avx512_base, "avx512f");

/// AVX2 backend: shared `#[target_feature]` bodies plus a hand-written
/// 4-wide Gaussian prep (the divide chain is the part autovectorization
/// reliably misses because of the integer→f64 index feed).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    pub(super) use super::avx2_base::*;

    /// # Safety
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gaussian_prep(
        out: &mut [f64],
        i0: usize,
        origin: f64,
        step: f64,
        center: f64,
        h: f64,
    ) {
        use std::arch::x86_64::*;
        let n = out.len();
        // Lane k holds the exact integer i0+offset+k as f64; adding 4.0
        // keeps it exactly integral (grid indices ≪ 2⁵³), so every lane
        // computes precisely the scalar expression for its index.
        let mut idx = _mm256_setr_pd(i0 as f64, (i0 + 1) as f64, (i0 + 2) as f64, (i0 + 3) as f64);
        let (vor, vst) = (_mm256_set1_pd(origin), _mm256_set1_pd(step));
        let (vce, vh) = (_mm256_set1_pd(center), _mm256_set1_pd(h));
        let (vneg, vfour) = (_mm256_set1_pd(-0.5), _mm256_set1_pd(4.0));
        let mut k = 0;
        while k + 4 <= n {
            let g = _mm256_add_pd(vor, _mm256_mul_pd(idx, vst));
            let z = _mm256_div_pd(_mm256_sub_pd(g, vce), vh);
            let m = _mm256_mul_pd(_mm256_mul_pd(vneg, z), z);
            _mm256_storeu_pd(out.as_mut_ptr().add(k), m);
            idx = _mm256_add_pd(idx, vfour);
            k += 4;
        }
        for (j, v) in out.iter_mut().enumerate().skip(k) {
            *v = super::gaussian_prep_one(i0 + j, origin, step, center, h);
        }
    }
}

/// AVX-512F backend: shared `#[target_feature]` bodies plus a 8-wide
/// intrinsic Gaussian prep.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    pub(super) use super::avx512_base::*;

    /// # Safety
    /// Caller must have verified AVX-512F support.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn gaussian_prep(
        out: &mut [f64],
        i0: usize,
        origin: f64,
        step: f64,
        center: f64,
        h: f64,
    ) {
        use std::arch::x86_64::*;
        let n = out.len();
        let mut idx = _mm512_setr_pd(
            i0 as f64,
            (i0 + 1) as f64,
            (i0 + 2) as f64,
            (i0 + 3) as f64,
            (i0 + 4) as f64,
            (i0 + 5) as f64,
            (i0 + 6) as f64,
            (i0 + 7) as f64,
        );
        let (vor, vst) = (_mm512_set1_pd(origin), _mm512_set1_pd(step));
        let (vce, vh) = (_mm512_set1_pd(center), _mm512_set1_pd(h));
        let (vneg, veight) = (_mm512_set1_pd(-0.5), _mm512_set1_pd(8.0));
        let mut k = 0;
        while k + 8 <= n {
            let g = _mm512_add_pd(vor, _mm512_mul_pd(idx, vst));
            let z = _mm512_div_pd(_mm512_sub_pd(g, vce), vh);
            let m = _mm512_mul_pd(_mm512_mul_pd(vneg, z), z);
            _mm512_storeu_pd(out.as_mut_ptr().add(k), m);
            idx = _mm512_add_pd(idx, veight);
            k += 8;
        }
        for (j, v) in out.iter_mut().enumerate().skip(k) {
            *v = super::gaussian_prep_one(i0 + j, origin, step, center, h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut s = seed | 1;
        let mut unif = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..d).map(|_| unif() * 200.0 - 100.0).collect())
            .collect()
    }

    fn columns(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let d = rows[0].len();
        (0..d)
            .map(|j| rows.iter().map(|r| r[j]).collect())
            .collect()
    }

    #[test]
    fn every_backend_matches_the_rowwise_spec_bitwise() {
        let rows = cloud(700, 7, 0xC0FFEE);
        let cols = columns(&rows);
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let q = &rows[13];
        let spec: Vec<f64> = rows.iter().map(|r| crate::vector::dist_sq(r, q)).collect();
        for b in Backend::available() {
            let mut out = vec![0.0; rows.len()];
            dist_sq_cols_backend(b, &col_refs, q, &mut out);
            for (i, (got, want)) in out.iter().zip(&spec).enumerate() {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "backend {} point {i}: {got} vs {want}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn dist_cols_matches_rowwise_dist_bitwise() {
        let rows = cloud(300, 5, 0xD157);
        let cols = columns(&rows);
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let q = &rows[7];
        let mut out = vec![0.0; rows.len()];
        dist_cols(&col_refs, q, &mut out);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                out[i].to_bits(),
                crate::vector::dist(r, q).to_bits(),
                "point {i}"
            );
        }
    }

    #[test]
    fn axpy8_equals_eight_sequential_axpys() {
        let rows = cloud(8, 257, 0xAB5);
        let xs: [&[f64]; 8] = std::array::from_fn(|b| rows[b].as_slice());
        let cs: [f64; 8] = std::array::from_fn(|b| (b as f64 - 3.5) * 0.37);
        let mut reference = vec![0.25; 257];
        for b in 0..8 {
            for (yi, xi) in reference.iter_mut().zip(xs[b]) {
                *yi += xi * cs[b];
            }
        }
        for b in Backend::available() {
            let mut y = vec![0.25; 257];
            axpy8_backend(b, &cs, &xs, &mut y);
            assert!(
                y.iter()
                    .zip(&reference)
                    .all(|(a, r)| a.to_bits() == r.to_bits()),
                "backend {}",
                b.name()
            );
        }
    }

    #[test]
    fn gaussian_prep_matches_scalar_expression() {
        let (origin, step, center, h) = (-3.75, 0.031_25, 1.212_5, 0.73);
        for b in Backend::available() {
            for len in [0usize, 1, 3, 7, 8, 9, 63, 200] {
                let mut out = vec![0.0; len];
                gaussian_prep_backend(b, &mut out, 5, origin, step, center, h);
                for (k, v) in out.iter().enumerate() {
                    let want = gaussian_prep_one(5 + k, origin, step, center, h);
                    assert_eq!(v.to_bits(), want.to_bits(), "backend {} k={k}", b.name());
                }
            }
        }
    }

    #[test]
    fn adversarial_lengths_agree_across_backends() {
        for d in [0usize, 1, 3, 4, 5, 16] {
            for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 100] {
                let rows = cloud(n.max(1), d.max(1), (n as u64) << 8 | d as u64 | 1);
                let rows = &rows[..n];
                let cols: Vec<Vec<f64>> = (0..d)
                    .map(|j| rows.iter().map(|r| r[j]).collect())
                    .collect();
                let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
                let q = vec![0.5; d];
                let mut reference = vec![0.0; n];
                dist_sq_cols_backend(Backend::Scalar, &col_refs, &q, &mut reference);
                for b in Backend::available() {
                    let mut out = vec![0.0; n];
                    dist_sq_cols_backend(b, &col_refs, &q, &mut out);
                    assert!(
                        out.iter()
                            .zip(&reference)
                            .all(|(a, r)| a.to_bits() == r.to_bits()),
                        "backend {} n={n} d={d}",
                        b.name()
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_query_panics() {
        let c0 = [1.0, 2.0];
        let cols: Vec<&[f64]> = vec![&c0];
        let mut out = [0.0, 0.0];
        dist_sq_cols(&cols, &[1.0, 2.0], &mut out);
    }

    #[test]
    fn env_override_resolves_to_a_real_backend() {
        // Whatever HINN_SIMD says, the active backend must be available.
        assert!(Backend::available().contains(&active_backend()));
    }
}
