//! Orthonormal subspaces of a `d`-dimensional ambient space.
//!
//! The paper's notation (§1.3): `E` is an `l`-dimensional subspace spanned by
//! orthogonal vectors `{e₁ … e_l}`; `Proj(y, E) = (y·e₁, …, y·e_l)` and the
//! projected distance `Pdist(x₁, x₂, E)` is the distance between the
//! projections. The search loop additionally needs orthogonal complements
//! (`E_new = E_c ⊖ E_p`, Fig. 3) so that the `d/2` views of a major iteration
//! are mutually orthogonal, and the ability to *lift* directions found in
//! subspace coordinates back into the ambient space (the eigenvectors of
//! Fig. 4 are computed in the coordinates of the current subspace).

use crate::vector::{axpy, dot, norm, scale};

/// Tolerance below which a residual vector is considered linearly dependent
/// and dropped during Gram–Schmidt.
const DEP_TOL: f64 = 1e-9;

/// An orthonormal basis for a linear subspace of `R^ambient_dim`.
///
/// Basis vectors are stored as rows in ambient coordinates and are always
/// orthonormal (enforced by construction).
///
/// ```
/// use hinn_linalg::Subspace;
///
/// // The x-y plane inside R^3 (spanning vectors get orthonormalized).
/// let plane = Subspace::from_vectors(3, &[vec![2.0, 0.0, 0.0], vec![1.0, 1.0, 0.0]]);
/// assert_eq!(plane.dim(), 2);
/// // z is ignored by projected distances...
/// assert!(plane.projected_distance(&[0.0, 0.0, 5.0], &[0.0, 0.0, -5.0]) < 1e-12);
/// // ...and spans the complement.
/// let z_axis = Subspace::full(3).complement_within(&plane);
/// assert!(z_axis.contains(&[0.0, 0.0, 1.0], 1e-9));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Subspace {
    ambient_dim: usize,
    basis: Vec<Vec<f64>>,
}

impl Subspace {
    /// The full space `R^d` with the standard basis.
    pub fn full(d: usize) -> Self {
        let basis = (0..d)
            .map(|i| {
                let mut e = vec![0.0; d];
                e[i] = 1.0;
                e
            })
            .collect();
        Self {
            ambient_dim: d,
            basis,
        }
    }

    /// The zero-dimensional subspace of `R^d`.
    pub fn empty(d: usize) -> Self {
        Self {
            ambient_dim: d,
            basis: Vec::new(),
        }
    }

    /// Build a subspace from arbitrary spanning vectors (ambient
    /// coordinates) via modified Gram–Schmidt. Linearly dependent or
    /// near-zero vectors are silently dropped, so `dim()` may be smaller
    /// than `vectors.len()`.
    ///
    /// # Panics
    /// Panics if any vector's length differs from `ambient_dim`.
    pub fn from_vectors(ambient_dim: usize, vectors: &[Vec<f64>]) -> Self {
        let mut s = Self::empty(ambient_dim);
        for v in vectors {
            s.try_extend(v);
        }
        s
    }

    /// Rebuild a subspace from rows that are *already* orthonormal, storing
    /// them verbatim — no re-orthogonalization, so a serialized basis
    /// restores bit-identically (Gram–Schmidt through
    /// [`Subspace::from_vectors`] would perturb the low-order bits).
    /// Returns `None` when any row's length differs from `ambient_dim` or
    /// the rows are not orthonormal within `1e-9`.
    pub fn try_from_orthonormal_rows(ambient_dim: usize, rows: Vec<Vec<f64>>) -> Option<Self> {
        if rows.iter().any(|r| r.len() != ambient_dim) {
            return None;
        }
        let s = Self {
            ambient_dim,
            basis: rows,
        };
        s.is_orthonormal(1e-9).then_some(s)
    }

    /// Attempt to extend the basis with (the component of) `v` orthogonal to
    /// the current span. Returns `true` if the dimension grew.
    ///
    /// # Panics
    /// Panics if `v.len() != ambient_dim`.
    pub fn try_extend(&mut self, v: &[f64]) -> bool {
        assert_eq!(
            v.len(),
            self.ambient_dim,
            "try_extend: vector has wrong ambient dimension"
        );
        let mut r = v.to_vec();
        // Two rounds of re-orthogonalization for numerical robustness
        // ("twice is enough", Kahan/Parlett).
        for _ in 0..2 {
            for b in &self.basis {
                let c = dot(&r, b);
                axpy(-c, b, &mut r);
            }
        }
        let n = norm(&r);
        if n <= DEP_TOL * (1.0 + norm(v)) {
            return false;
        }
        self.basis.push(scale(&r, 1.0 / n));
        true
    }

    /// Dimension `l` of the subspace.
    #[inline]
    pub fn dim(&self) -> usize {
        self.basis.len()
    }

    /// Dimension `d` of the ambient space.
    #[inline]
    pub fn ambient_dim(&self) -> usize {
        self.ambient_dim
    }

    /// The orthonormal basis vectors (rows, ambient coordinates).
    #[inline]
    pub fn basis(&self) -> &[Vec<f64>] {
        &self.basis
    }

    /// `Proj(y, E)`: coordinates of `y` in this subspace's basis
    /// (an `l`-vector).
    pub fn project(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.ambient_dim, "project: dimension mismatch");
        self.basis.iter().map(|e| dot(y, e)).collect()
    }

    /// Project every point of a data set.
    pub fn project_all(&self, points: &[Vec<f64>]) -> Vec<Vec<f64>> {
        self.project_all_with(hinn_par::Parallelism::serial(), points)
    }

    /// [`Subspace::project_all`] with an explicit thread budget. Each output
    /// row is a pure function of its input row, so the result is identical
    /// for every budget.
    pub fn project_all_with(
        &self,
        par: hinn_par::Parallelism,
        points: &[Vec<f64>],
    ) -> Vec<Vec<f64>> {
        let mut out: Vec<Vec<f64>> = vec![Vec::new(); points.len()];
        hinn_par::fill_chunks(par, &mut out, |start, slice| {
            for (k, slot) in slice.iter_mut().enumerate() {
                *slot = self.project(&points[start + k]);
            }
        });
        out
    }

    /// `Pdist(x₁, x₂, E)`: Euclidean distance between the projections.
    pub fn projected_distance(&self, x1: &[f64], x2: &[f64]) -> f64 {
        let mut s = 0.0;
        for e in &self.basis {
            let c = dot(x1, e) - dot(x2, e);
            s += c * c;
        }
        s.sqrt()
    }

    /// Lift coordinates expressed in this subspace's basis back to an
    /// ambient-space vector: `Σ coords[k] · e_k`.
    ///
    /// # Panics
    /// Panics if `coords.len() != dim()`.
    pub fn lift(&self, coords: &[f64]) -> Vec<f64> {
        assert_eq!(coords.len(), self.dim(), "lift: coordinate count mismatch");
        let mut out = vec![0.0; self.ambient_dim];
        for (c, e) in coords.iter().zip(&self.basis) {
            axpy(*c, e, &mut out);
        }
        out
    }

    /// Construct the sub-subspace spanned by `directions` given in **this
    /// subspace's coordinates** (each of length `dim()`), returned in
    /// ambient coordinates. This is how eigenvectors computed on projected
    /// data (Fig. 4) become ambient projections.
    pub fn sub_subspace(&self, directions: &[Vec<f64>]) -> Subspace {
        let lifted: Vec<Vec<f64>> = directions.iter().map(|c| self.lift(c)).collect();
        Subspace::from_vectors(self.ambient_dim, &lifted)
    }

    /// Orthogonal complement of `inner` **within** `self`
    /// (`self ⊖ inner`, the `E_new = E_c − E_p` of Fig. 3).
    ///
    /// `inner` need not be exactly contained in `self`; its span is
    /// projected out of `self`'s basis. The result has dimension
    /// `self.dim() − rank(inner ∩ self)`.
    pub fn complement_within(&self, inner: &Subspace) -> Subspace {
        assert_eq!(
            self.ambient_dim, inner.ambient_dim,
            "complement_within: ambient dimension mismatch"
        );
        let mut out = Subspace::empty(self.ambient_dim);
        for b in &self.basis {
            let mut r = b.clone();
            for _ in 0..2 {
                for e in &inner.basis {
                    let c = dot(&r, e);
                    axpy(-c, e, &mut r);
                }
                for e in &out.basis {
                    let c = dot(&r, e);
                    axpy(-c, e, &mut r);
                }
            }
            let n = norm(&r);
            if n > DEP_TOL {
                out.basis.push(scale(&r, 1.0 / n));
            }
        }
        out
    }

    /// `true` iff `v` lies in the span of this subspace (within `tol`).
    pub fn contains(&self, v: &[f64], tol: f64) -> bool {
        let mut r = v.to_vec();
        for e in &self.basis {
            let c = dot(&r, e);
            axpy(-c, e, &mut r);
        }
        norm(&r) <= tol * (1.0 + norm(v))
    }

    /// Verify the basis is orthonormal within `tol` (diagnostic; always true
    /// by construction, used in tests and debug assertions).
    pub fn is_orthonormal(&self, tol: f64) -> bool {
        for (i, a) in self.basis.iter().enumerate() {
            if (norm(a) - 1.0).abs() > tol {
                return false;
            }
            for b in &self.basis[i + 1..] {
                if dot(a, b).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_space_projects_identically() {
        let s = Subspace::full(3);
        assert_eq!(s.dim(), 3);
        let y = vec![1.0, -2.0, 3.0];
        assert_eq!(s.project(&y), y);
        assert_eq!(s.lift(&y), y);
    }

    #[test]
    fn gram_schmidt_drops_dependent_vectors() {
        let s = Subspace::from_vectors(
            3,
            &[
                vec![1.0, 0.0, 0.0],
                vec![2.0, 0.0, 0.0], // dependent
                vec![1.0, 1.0, 0.0],
            ],
        );
        assert_eq!(s.dim(), 2);
        assert!(s.is_orthonormal(1e-10));
    }

    #[test]
    fn zero_vector_does_not_extend() {
        let mut s = Subspace::empty(2);
        assert!(!s.try_extend(&[0.0, 0.0]));
        assert!(s.try_extend(&[0.0, 5.0]));
        assert!(!s.try_extend(&[0.0, -3.0]));
        assert_eq!(s.dim(), 1);
    }

    #[test]
    fn projection_is_a_contraction() {
        let s = Subspace::from_vectors(3, &[vec![1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![-1.0, 0.5, 2.0];
        assert!(s.projected_distance(&x, &y) <= crate::vector::dist(&x, &y) + 1e-12);
    }

    #[test]
    fn projected_distance_matches_projected_coords() {
        let s = Subspace::from_vectors(3, &[vec![1.0, 2.0, 0.5], vec![0.0, 1.0, -1.0]]);
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![0.0, -1.0, 1.0];
        let d1 = s.projected_distance(&x, &y);
        let d2 = crate::vector::dist(&s.project(&x), &s.project(&y));
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn complement_dimensions_add_up() {
        let full = Subspace::full(5);
        let inner = Subspace::from_vectors(
            5,
            &[vec![1.0, 1.0, 0.0, 0.0, 0.0], vec![0.0, 0.0, 1.0, 0.0, 1.0]],
        );
        let comp = full.complement_within(&inner);
        assert_eq!(comp.dim(), 3);
        assert!(comp.is_orthonormal(1e-10));
        // Complement basis vectors are orthogonal to the inner subspace.
        for c in comp.basis() {
            for e in inner.basis() {
                assert!(dot(c, e).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn complement_then_union_spans_parent() {
        let parent = Subspace::from_vectors(
            4,
            &[
                vec![1.0, 0.0, 0.0, 0.0],
                vec![0.0, 1.0, 1.0, 0.0],
                vec![0.0, 0.0, 0.0, 1.0],
            ],
        );
        let inner = Subspace::from_vectors(4, &[vec![0.0, 1.0, 1.0, 0.0]]);
        let comp = parent.complement_within(&inner);
        assert_eq!(comp.dim(), 2);
        let mut union = inner.clone();
        for b in comp.basis() {
            union.try_extend(b);
        }
        for b in parent.basis() {
            assert!(union.contains(b, 1e-9));
        }
    }

    #[test]
    fn lift_project_roundtrip_inside_subspace() {
        let s = Subspace::from_vectors(4, &[vec![1.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 2.0, 1.0]]);
        let coords = vec![0.7, -1.3];
        let ambient = s.lift(&coords);
        let back = s.project(&ambient);
        for (a, b) in coords.iter().zip(&back) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sub_subspace_lifts_directions() {
        let s = Subspace::from_vectors(3, &[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        // Direction (1,1)/√2 in s-coordinates = (1,1,0)/√2 in ambient.
        let sub = s.sub_subspace(&[vec![1.0, 1.0]]);
        assert_eq!(sub.dim(), 1);
        assert!(sub.contains(&[1.0, 1.0, 0.0], 1e-9));
        assert!(!sub.contains(&[0.0, 0.0, 1.0], 1e-9));
    }

    #[test]
    fn contains_detects_membership() {
        let s = Subspace::from_vectors(3, &[vec![1.0, 2.0, 3.0]]);
        assert!(s.contains(&[2.0, 4.0, 6.0], 1e-9));
        assert!(!s.contains(&[1.0, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn empty_subspace_projects_to_nothing() {
        let s = Subspace::empty(3);
        assert_eq!(s.dim(), 0);
        assert!(s.project(&[1.0, 2.0, 3.0]).is_empty());
        assert_eq!(
            s.projected_distance(&[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0]),
            0.0
        );
    }
}
