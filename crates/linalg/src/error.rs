//! Typed errors for the linear-algebra layer.
//!
//! The workspace's error story is layered to respect the dependency
//! direction: this crate knows nothing about searches or sessions, so its
//! errors describe only what a matrix routine can observe. `hinn-core`
//! converts them into its session-level `HinnError` taxonomy.

use std::fmt;

/// What a fallible linear-algebra routine can report.
#[derive(Clone, Debug, PartialEq)]
pub enum LinalgError {
    /// The input matrix is not square.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// The input matrix is not symmetric within the scaled tolerance.
    NotSymmetric {
        /// The symmetry tolerance that was applied.
        tolerance: f64,
    },
    /// The input contains NaN or infinite entries.
    NonFinite {
        /// Which routine observed the bad value.
        context: &'static str,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square (got {rows}×{cols})")
            }
            LinalgError::NotSymmetric { tolerance } => {
                write!(f, "matrix must be symmetric (tolerance {tolerance:.3e})")
            }
            LinalgError::NonFinite { context } => {
                write!(f, "{context}: input contains non-finite values")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
