//! A small dense row-major matrix.
//!
//! `Matrix` is intentionally minimal: the workspace only needs covariance
//! matrices (`d × d` with `d ≤ 64`), their eigendecompositions, and a few
//! products. Storage is a single contiguous `Vec<f64>` for cache-friendly
//! traversal.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zero `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows: empty row set");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: wrong element count");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimension mismatch ({}x{} · {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), x))
            .collect()
    }

    /// Maximum absolute element — handy for approximate-equality in tests.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }

    /// Elementwise difference `self − other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "sub: row mismatch");
        assert_eq!(self.cols, other.cols, "sub: col mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// `true` iff the matrix is symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn matvec_known() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[1.0, 1.0]]);
        assert_eq!(a.matvec(&[3.0, 4.0]), vec![3.0, 8.0, 7.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        assert!(s.is_symmetric(1e-12));
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        assert!(!a.is_symmetric(1e-12));
        let r = Matrix::zeros(2, 3);
        assert!(!r.is_symmetric(1e-12));
    }

    #[test]
    fn rows_cols_accessors() {
        let mut a = Matrix::zeros(2, 3);
        a[(1, 2)] = 5.0;
        assert_eq!(a.row(1), &[0.0, 0.0, 5.0]);
        assert_eq!(a.col(2), vec![0.0, 5.0]);
        assert_eq!(a.as_slice().len(), 6);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_mismatch_panics() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
