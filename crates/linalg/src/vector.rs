//! Free functions on `&[f64]` slices treated as dense vectors.
//!
//! All functions panic on dimension mismatch: a mismatch is always a logic
//! error in this workspace, never a recoverable condition.
//!
//! These are the workspace's **specification kernels**: every vectorized
//! variant in [`crate::simd`] (and every batch scan built on it) is
//! required to reproduce these functions bit-for-bit on f64 inputs. The
//! reductions (`dot`, `dist`, `dist_sq`, `lp_dist`) deliberately stay
//! sequential left-to-right folds — f64 addition is not associative, so
//! the fold order *is* the spec; SIMD speedups come from batching across
//! points (see `simd::dist_sq_cols`), never from reassociating within
//! one pair of vectors.

/// Dot product `x · y`.
///
/// # Panics
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: dimension mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Euclidean distance `‖x − y‖₂`.
#[inline]
pub fn dist(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist: dimension mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance, avoiding the square root for comparisons.
#[inline]
pub fn dist_sq(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dist_sq: dimension mismatch");
    x.iter()
        .zip(y)
        .map(|(a, b)| {
            let d = a - b;
            d * d
        })
        .sum()
}

/// Minkowski (`L_p`) distance for any `p > 0`, including the fractional
/// metrics (`0 < p < 1`) whose benefits in high dimension are discussed in
/// the paper's related work (Aggarwal/Hinneburg/Keim, ICDT 2001). For
/// `0 < p < 1` the result is a pre-metric (no triangle inequality), which is
/// fine for ranking by distance.
///
/// NaN propagates uniformly at **every** `p`, including `p = ∞`: a NaN
/// coordinate delta poisons the distance. (The `L∞` branch used to fold
/// with `f64::max`, which silently *drops* NaN operands — a poisoned
/// point could then out-rank real neighbors, violating the workspace's
/// poison-never-ranks contract.)
///
/// # Panics
/// Panics if `p <= 0` or on dimension mismatch.
pub fn lp_dist(x: &[f64], y: &[f64], p: f64) -> f64 {
    assert!(p > 0.0, "lp_dist: p must be positive, got {p}");
    assert_eq!(x.len(), y.len(), "lp_dist: dimension mismatch");
    if p == 2.0 {
        return dist(x, y);
    }
    if p == 1.0 {
        return x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum();
    }
    if p.is_infinite() {
        // Sticky-NaN max: `f64::max` returns its non-NaN operand, so the
        // plain fold would launder a poisoned coordinate into a finite
        // distance. Bail to NaN the moment one appears instead.
        let mut acc = 0.0f64;
        for (a, b) in x.iter().zip(y) {
            let d = (a - b).abs();
            if d.is_nan() {
                return f64::NAN;
            }
            acc = acc.max(d);
        }
        return acc;
    }
    let s: f64 = x.iter().zip(y).map(|(a, b)| (a - b).abs().powf(p)).sum();
    s.powf(1.0 / p)
}

/// `x − y` as a new vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: dimension mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// `x + y` as a new vector.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "add: dimension mismatch");
    x.iter().zip(y).map(|(a, b)| a + b).collect()
}

/// `c · x` as a new vector.
pub fn scale(x: &[f64], c: f64) -> Vec<f64> {
    x.iter().map(|a| a * c).collect()
}

/// In-place `y ← y + c·x` (the BLAS `axpy` primitive). Elementwise, so it
/// dispatches to the active [`crate::simd`] backend — bit-identical to
/// the scalar loop at any vector width.
pub fn axpy(c: f64, x: &[f64], y: &mut [f64]) {
    crate::simd::axpy_inplace(c, x, y);
}

/// Normalize `x` to unit Euclidean length, returning `None` for (near-)zero
/// vectors which have no direction.
pub fn normalized(x: &[f64]) -> Option<Vec<f64>> {
    let n = norm(x);
    if n <= 1e-12 {
        None
    } else {
        Some(scale(x, 1.0 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distances_agree() {
        let x = [1.0, 2.0, -3.0];
        let y = [0.5, -1.0, 4.0];
        assert!((dist(&x, &y).powi(2) - dist_sq(&x, &y)).abs() < 1e-12);
        assert!((lp_dist(&x, &y, 2.0) - dist(&x, &y)).abs() < 1e-12);
    }

    #[test]
    fn lp_special_cases() {
        let x = [0.0, 0.0];
        let y = [3.0, 4.0];
        assert!((lp_dist(&x, &y, 1.0) - 7.0).abs() < 1e-12);
        assert!((lp_dist(&x, &y, 2.0) - 5.0).abs() < 1e-12);
        assert!((lp_dist(&x, &y, f64::INFINITY) - 4.0).abs() < 1e-12);
        // Fractional metric: (3^0.5 + 4^0.5)^2
        let expect = (3f64.sqrt() + 2.0).powi(2);
        assert!((lp_dist(&x, &y, 0.5) - expect).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "p must be positive")]
    fn lp_zero_p_panics() {
        lp_dist(&[1.0], &[2.0], 0.0);
    }

    #[test]
    fn lp_dist_propagates_nan_at_every_p() {
        // Regression: the L∞ fold used `f64::max`, which drops NaN — a
        // poisoned point ranked as if its NaN axis did not exist. Every
        // branch must poison the distance instead.
        let x = [1.0, f64::NAN, 3.0];
        let y = [0.0, 0.0, 0.0];
        for p in [0.5, 1.0, 2.0, 3.0, f64::INFINITY] {
            assert!(
                lp_dist(&x, &y, p).is_nan(),
                "p={p}: NaN coordinate must poison the distance"
            );
        }
        // NaN introduced by the query side behaves the same.
        assert!(lp_dist(&y, &x, f64::INFINITY).is_nan());
        // And a clean pair stays clean.
        assert_eq!(lp_dist(&[0.0, 0.0], &[3.0, 4.0], f64::INFINITY), 4.0);
    }

    #[test]
    fn arithmetic_helpers() {
        let x = [1.0, 2.0];
        let y = [3.0, 5.0];
        assert_eq!(sub(&y, &x), vec![2.0, 3.0]);
        assert_eq!(add(&y, &x), vec![4.0, 7.0]);
        assert_eq!(scale(&x, 2.0), vec![2.0, 4.0]);
        let mut z = vec![1.0, 1.0];
        axpy(2.0, &x, &mut z);
        assert_eq!(z, vec![3.0, 5.0]);
    }

    #[test]
    fn normalized_unit_and_zero() {
        let u = normalized(&[3.0, 4.0]).unwrap();
        assert!((norm(&u) - 1.0).abs() < 1e-12);
        assert!(normalized(&[0.0, 0.0]).is_none());
        assert!(normalized(&[1e-15, 0.0]).is_none());
    }
}
