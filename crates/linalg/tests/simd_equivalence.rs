//! Property-based bit-identity of the SIMD kernels against the scalar
//! specification, over adversarial shapes and values.
//!
//! The contract under test (see `hinn_linalg::simd`): every f64 kernel
//! must reproduce the scalar spec functions **bit-for-bit** on every
//! backend this machine can run — not approximately, bitwise. Lengths
//! straddle the vector widths (0, 1, lane−1, lane, lane+1, and well past
//! them) so both the full-width lanes and every tail path are exercised;
//! values include subnormals, ±0.0, and mixed magnitudes, where a
//! reassociated or contracted (FMA) implementation would diverge first.

use hinn_linalg::simd::{
    axpy8_backend, axpy_inplace_backend, dist_cols, dist_sq_cols_backend, div_inplace_backend,
    gaussian_prep_backend, sqrt_inplace_backend, Backend,
};
use hinn_linalg::vector;
use proptest::prelude::*;

/// Lengths that straddle the 4-wide (AVX2) and 8-wide (AVX-512) lanes.
const ADVERSARIAL_LENS: [usize; 10] = [0, 1, 3, 4, 5, 7, 8, 9, 31, 100];

/// One adversarial f64: normal values of mixed magnitude, subnormals,
/// and both zeros — everything but NaN/∞ (those poison whole vectors
/// and are covered by the dedicated NaN test below).
fn adversarial_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        -1e3..1e3f64,
        -1e-8..1e-8f64,
        Just(0.0f64),
        Just(-0.0f64),
        Just(5e-324f64), // smallest positive subnormal
        Just(-5e-324f64),
        Just(1e-310f64),  // mid-range subnormal
        Just(4.9e300f64), // large: squares to ∞, overflow must agree too
    ]
}

fn values(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(adversarial_value(), len..=len)
}

/// An adversarial length.
fn adversarial_len() -> impl Strategy<Value = usize> {
    (0..ADVERSARIAL_LENS.len()).prop_map(|i| ADVERSARIAL_LENS[i])
}

/// A columnar point block of adversarial shape: `d` columns of `n`
/// values, plus the `d`-dimensional query.
fn col_block() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<f64>)> {
    ((0..4usize), adversarial_len()).prop_flat_map(|(di, n)| {
        let d = [1, 2, 5, 16][di];
        (proptest::collection::vec(values(n), d..=d), values(d))
    })
}

/// A vector of adversarial length, plus a same-length second operand.
fn vec_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    adversarial_len().prop_flat_map(|n| (values(n), values(n)))
}

fn backends() -> Vec<Backend> {
    Backend::available()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dist_sq_cols_is_bit_identical_on_every_backend((cols, q) in col_block()) {
        let d = cols.len();
        let n = cols.first().map_or(0, |c| c.len());
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        for b in backends() {
            let mut out = vec![0.0; n];
            dist_sq_cols_backend(b, &col_refs, &q, &mut out);
            for i in 0..n {
                let row: Vec<f64> = (0..d).map(|j| cols[j][i]).collect();
                let want = vector::dist_sq(&row, &q);
                prop_assert_eq!(
                    out[i].to_bits(), want.to_bits(),
                    "{:?} d={} n={} point {}: {} vs {}", b, d, n, i, out[i], want
                );
            }
        }
    }

    #[test]
    fn dist_cols_is_bit_identical_to_rowwise_dist((cols, q) in col_block()) {
        let d = cols.len();
        let n = cols.first().map_or(0, |c| c.len());
        let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
        let mut out = vec![0.0; n];
        dist_cols(&col_refs, &q, &mut out);
        for i in 0..n {
            let row: Vec<f64> = (0..d).map(|j| cols[j][i]).collect();
            prop_assert_eq!(out[i].to_bits(), vector::dist(&row, &q).to_bits());
        }
    }

    #[test]
    fn elementwise_kernels_are_bit_identical_on_every_backend(
        (x, y0) in vec_pair(),
        c in adversarial_value(),
    ) {
        let n = x.len();
        for b in backends() {
            // axpy: y += c·x against the scalar loop.
            let mut y = y0.clone();
            axpy_inplace_backend(b, c, &x, &mut y);
            for i in 0..n {
                let want = y0[i] + x[i] * c;
                prop_assert_eq!(y[i].to_bits(), want.to_bits(), "axpy {:?} i={}", b, i);
            }
            // div by a non-zero constant (the call sites divide by a
            // bandwidth normalizer that is asserted positive).
            let divisor = if c == 0.0 { 3.0 } else { c };
            let mut z = y0.clone();
            div_inplace_backend(b, &mut z, divisor);
            for i in 0..n {
                prop_assert_eq!(z[i].to_bits(), (y0[i] / divisor).to_bits(), "div {:?} i={}", b, i);
            }
            // sqrt (exactly rounded; negatives yield NaN on every path).
            let mut s = y0.clone();
            sqrt_inplace_backend(b, &mut s);
            for i in 0..n {
                prop_assert_eq!(s[i].to_bits(), y0[i].sqrt().to_bits(), "sqrt {:?} i={}", b, i);
            }
        }
    }

    #[test]
    fn axpy8_equals_eight_sequential_axpys_on_every_backend(
        (xs_flat, y0) in adversarial_len()
            .prop_flat_map(|n| (values(8 * n), values(n))),
        cs_vec in values(8),
    ) {
        let n = y0.len();
        let cs: [f64; 8] = cs_vec.try_into().unwrap();
        let xs: [&[f64]; 8] = std::array::from_fn(|b| &xs_flat[b * n..(b + 1) * n]);
        // Spec: eight scalar axpys applied in slot order.
        let mut want = y0.clone();
        for b in 0..8 {
            for i in 0..n {
                want[i] += xs[b][i] * cs[b];
            }
        }
        for b in backends() {
            let mut y = y0.clone();
            axpy8_backend(b, &cs, &xs, &mut y);
            for i in 0..n {
                prop_assert_eq!(y[i].to_bits(), want[i].to_bits(), "{:?} i={}", b, i);
            }
        }
    }

    #[test]
    fn gaussian_prep_is_bit_identical_on_every_backend(
        n in adversarial_len(),
        i0 in 0..512usize,
        origin in -100.0..100.0f64,
        step in 1e-6..10.0f64,
        center in -100.0..100.0f64,
        h in 1e-6..10.0f64,
    ) {
        for b in backends() {
            let mut out = vec![0.0; n];
            gaussian_prep_backend(b, &mut out, i0, origin, step, center, h);
            for (k, &v) in out.iter().enumerate() {
                let g = origin + (i0 + k) as f64 * step;
                let z = (g - center) / h;
                let want = -0.5 * z * z;
                prop_assert_eq!(v.to_bits(), want.to_bits(), "{:?} k={}", b, k);
            }
        }
    }

    #[test]
    fn lp_dist_poisons_on_any_nan_coordinate(
        (x0, y0) in (1..8usize).prop_flat_map(|d| (values(d), values(d))),
        nan_at in 0..8usize,
        nan_side in 0..2usize,
        pi in 0..5usize,
    ) {
        let p = [0.5, 1.0, 2.0, 3.0, f64::INFINITY][pi];
        // Clean pair first: finite inputs must give a non-NaN distance.
        let clean = vector::lp_dist(&x0, &y0, p);
        prop_assert!(!clean.is_nan(), "finite inputs p={} gave NaN", p);
        // Inject one NaN on a random side/coordinate: must poison.
        let (mut x, mut y) = (x0, y0);
        let at = nan_at % x.len();
        if nan_side == 0 { x[at] = f64::NAN } else { y[at] = f64::NAN }
        let poisoned = vector::lp_dist(&x, &y, p);
        prop_assert!(
            poisoned.is_nan(),
            "p={}: NaN at {} (side {}) must poison, got {}", p, at, nan_side, poisoned
        );
    }
}
