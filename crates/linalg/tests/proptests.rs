//! Property-based tests for the linear-algebra substrate.

use hinn_linalg::{covariance_matrix, jacobi_eigen, mean_vector, variance_along, Matrix, Subspace};
use proptest::prelude::*;

/// Strategy: a symmetric n×n matrix with entries in [-10, 10].
fn sym_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, n * (n + 1) / 2).prop_map(move |upper| {
        let mut m = Matrix::zeros(n, n);
        let mut it = upper.into_iter();
        for i in 0..n {
            for j in i..n {
                let v = it.next().unwrap();
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    })
}

/// Strategy: a set of points in R^d.
fn point_set(d: usize, min_n: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(-100.0..100.0f64, d),
        min_n..=max_n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn eigen_reconstructs_matrix(m in sym_matrix(5)) {
        let e = jacobi_eigen(&m);
        let err = m.sub(&e.reconstruct()).max_abs();
        prop_assert!(err < 1e-7 * (1.0 + m.max_abs()), "reconstruction error {err}");
    }

    #[test]
    fn eigen_vectors_orthonormal(m in sym_matrix(6)) {
        let e = jacobi_eigen(&m);
        for i in 0..6 {
            let vi = e.vector(i);
            prop_assert!((hinn_linalg::vector::norm(&vi) - 1.0).abs() < 1e-8);
            for j in (i + 1)..6 {
                prop_assert!(hinn_linalg::vector::dot(&vi, &e.vector(j)).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn eigen_trace_preserved(m in sym_matrix(4)) {
        let e = jacobi_eigen(&m);
        let trace: f64 = (0..4).map(|i| m[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-8 * (1.0 + trace.abs()));
    }

    #[test]
    fn covariance_psd(pts in point_set(4, 2, 30)) {
        let c = covariance_matrix(&pts);
        prop_assert!(c.is_symmetric(1e-9));
        let e = jacobi_eigen(&c);
        for v in e.values {
            prop_assert!(v > -1e-6 * (1.0 + c.max_abs()), "negative eigenvalue {v}");
        }
    }

    #[test]
    fn variance_along_nonnegative(pts in point_set(3, 2, 20), dir in proptest::collection::vec(-1.0..1.0f64, 3)) {
        let v = variance_along(&pts, &dir);
        prop_assert!(v >= -1e-9);
    }

    #[test]
    fn mean_within_bounding_box(pts in point_set(3, 1, 20)) {
        let m = mean_vector(&pts);
        for j in 0..3 {
            let lo = pts.iter().map(|p| p[j]).fold(f64::INFINITY, f64::min);
            let hi = pts.iter().map(|p| p[j]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(m[j] >= lo - 1e-9 && m[j] <= hi + 1e-9);
        }
    }

    #[test]
    fn subspace_projection_contracts(
        vecs in proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, 4), 1..4),
        x in proptest::collection::vec(-5.0..5.0f64, 4),
        y in proptest::collection::vec(-5.0..5.0f64, 4),
    ) {
        let s = Subspace::from_vectors(4, &vecs);
        prop_assert!(s.is_orthonormal(1e-8));
        let pd = s.projected_distance(&x, &y);
        let fd = hinn_linalg::vector::dist(&x, &y);
        prop_assert!(pd <= fd + 1e-9, "projection expanded distance: {pd} > {fd}");
    }

    #[test]
    fn complement_is_orthogonal_and_spans(
        vecs in proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, 5), 1..4),
    ) {
        let full = Subspace::full(5);
        let inner = Subspace::from_vectors(5, &vecs);
        let comp = full.complement_within(&inner);
        prop_assert_eq!(comp.dim(), 5 - inner.dim());
        for c in comp.basis() {
            for e in inner.basis() {
                prop_assert!(hinn_linalg::vector::dot(c, e).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn lift_then_project_roundtrips(
        vecs in proptest::collection::vec(proptest::collection::vec(-5.0..5.0f64, 4), 2..4),
        coeff in proptest::collection::vec(-3.0..3.0f64, 4),
    ) {
        let s = Subspace::from_vectors(4, &vecs);
        let coords: Vec<f64> = coeff.into_iter().take(s.dim()).collect();
        let back = s.project(&s.lift(&coords));
        for (a, b) in coords.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn lp_distance_monotone_in_point_gap(a in -10.0..10.0f64, b in -10.0..10.0f64, p in 0.25..4.0f64) {
        // In 1-D every Lp distance equals |a-b|.
        let d = hinn_linalg::vector::lp_dist(&[a], &[b], p);
        prop_assert!((d - (a - b).abs()).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_for_p_ge_1(
        x in proptest::collection::vec(-5.0..5.0f64, 3),
        y in proptest::collection::vec(-5.0..5.0f64, 3),
        z in proptest::collection::vec(-5.0..5.0f64, 3),
        p in 1.0..4.0f64,
    ) {
        let d = |a: &[f64], b: &[f64]| hinn_linalg::vector::lp_dist(a, b, p);
        prop_assert!(d(&x, &z) <= d(&x, &y) + d(&y, &z) + 1e-9);
    }
}
