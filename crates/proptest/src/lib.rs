//! Offline stand-in for the `proptest` crate.
//!
//! This build environment has no crates-registry access, so the workspace
//! ships a small property-testing engine with `proptest`'s surface syntax:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`Just`],
//! [`prop_oneof!`], [`bool::ANY`], `prop_assert!`/`prop_assert_eq!`, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from crates.io proptest, deliberately accepted:
//! * **No shrinking.** A failing case reports its case number and seed; the
//!   run is fully deterministic (seed = FNV-1a of the test name), so a
//!   failure always reproduces by re-running the test.
//! * **No persistence.** `.proptest-regressions` files are ignored.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of test values. Unlike real proptest there is no value tree;
/// a strategy is just a deterministic sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discard generated values failing `pred` (retries; panics if the
    /// predicate rejects 1000 draws in a row).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive draws: {}",
            self.whence
        );
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T> {
    sample: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// A strategy producing one constant value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(usize, u32, u64, i32, i64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A size specification: an exact count or a range of counts.
    pub trait SizeRange {
        /// Draw a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A fair coin.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// Runner configuration (`proptest::test_runner`).
pub mod test_runner {
    /// Subset of proptest's config: the number of cases per test.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// How many random cases each `proptest!` test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Deterministic 64-bit FNV-1a, used to derive a per-test seed from the
/// test's name so every test draws an independent, reproducible stream.
pub fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The deterministic per-test RNG used by [`proptest!`] (seeded from the
/// fully qualified test name, so consumer crates need no `rand` dependency).
pub fn rng_for(qualified_test_name: &str) -> TestRng {
    TestRng::seed_from_u64(fnv1a(qualified_test_name))
}

/// Everything a test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        Strategy,
    };
}

/// Assert inside a property test (stub: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        $crate::OneOf {
            options: vec![$($crate::Strategy::boxed($strategy)),+],
        }
    }};
}

/// Backing type of [`prop_oneof!`].
pub struct OneOf<T> {
    /// The alternatives, chosen uniformly.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// The test-defining macro. Accepts the same shape as crates.io proptest:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0.0..1.0f64, v in proptest::collection::vec(0usize..9, 3)) {
///         prop_assert!(x < 1.0);
///         prop_assert_eq!(v.len(), 3);
///     }
/// }
/// ```
///
/// Each test runs `cases` deterministic cases; the per-test RNG is seeded
/// from the test's name.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`] — one item per test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr);) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng: $crate::TestRng =
                $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let ($($arg,)+) = (
                    $($crate::Strategy::generate(&($strategy), &mut rng),)+
                );
                // A panic in the body fails the test; the run is
                // deterministic, so the failing case reproduces as-is.
                let __guard = $crate::CaseReporter {
                    test: stringify!($name),
                    case: __case,
                };
                $body
                std::mem::forget(__guard);
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

/// Prints which case failed when a property body panics (armed via
/// `mem::forget` on success).
#[doc(hidden)]
pub struct CaseReporter {
    /// Test name.
    pub test: &'static str,
    /// Zero-based case index.
    pub case: u32,
}

impl Drop for CaseReporter {
    fn drop(&mut self) {
        eprintln!(
            "proptest (offline stub): test `{}` failed at case {} — deterministic, rerun to reproduce",
            self.test, self.case
        );
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Pick {
        A,
        B(f64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 1usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec((0.0..1.0f64, 0usize..5), 2..=6),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(v.len() >= 2 && v.len() <= 6);
            for (x, k) in &v {
                prop_assert!((0.0..1.0).contains(x));
                prop_assert!(*k < 5);
            }
            let _ = flag;
        }

        #[test]
        fn map_flat_map_oneof(
            n in (1usize..4).prop_flat_map(|k| crate::collection::vec(0.0..1.0f64, k..=k)),
            p in prop_oneof![Just(Pick::A), (0.5..2.0f64).prop_map(Pick::B)],
        ) {
            prop_assert!(!n.is_empty() && n.len() < 4);
            match p {
                Pick::A => {}
                Pick::B(v) => prop_assert!((0.5..2.0).contains(&v)),
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::Strategy;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0.0..1.0f64, 5usize);
        let mut r1 = crate::TestRng::seed_from_u64(9);
        let mut r2 = crate::TestRng::seed_from_u64(9);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }
}
