//! Property-based tests for the baseline k-NN machinery.

use hinn_baselines::{knn_classify, knn_indices, knn_indices_in_subspace, Metric, VaFile};
use hinn_linalg::Subspace;
use proptest::prelude::*;

fn point_set(d: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-50.0..50.0f64, d), 1..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn knn_returns_sorted_distances(
        pts in point_set(4),
        q in proptest::collection::vec(-50.0..50.0f64, 4),
        k in 1usize..20,
    ) {
        let nn = knn_indices(&pts, &q, k, Metric::L2);
        prop_assert_eq!(nn.len(), k.min(pts.len()));
        let mut prev = 0.0f64;
        for &i in &nn {
            let d = hinn_linalg::vector::dist(&pts[i], &q);
            prop_assert!(d >= prev - 1e-12, "distances must ascend");
            prev = d;
        }
        // No non-member may be closer than the farthest member.
        if let Some(&last) = nn.last() {
            let dmax = hinn_linalg::vector::dist(&pts[last], &q);
            for (i, p) in pts.iter().enumerate() {
                if !nn.contains(&i) {
                    prop_assert!(
                        hinn_linalg::vector::dist(p, &q) >= dmax - 1e-12,
                        "point {i} closer than k-th neighbor"
                    );
                }
            }
        }
    }

    #[test]
    fn knn_results_are_distinct(
        pts in point_set(3),
        q in proptest::collection::vec(-50.0..50.0f64, 3),
        k in 1usize..40,
    ) {
        let nn = knn_indices(&pts, &q, k, Metric::L1);
        let set: std::collections::HashSet<usize> = nn.iter().copied().collect();
        prop_assert_eq!(set.len(), nn.len(), "duplicate neighbor indices");
    }

    #[test]
    fn growing_k_is_a_prefix(
        pts in point_set(3),
        q in proptest::collection::vec(-50.0..50.0f64, 3),
    ) {
        let big = knn_indices(&pts, &q, pts.len(), Metric::L2);
        for k in 1..pts.len() {
            let small = knn_indices(&pts, &q, k, Metric::L2);
            prop_assert_eq!(&small[..], &big[..k], "k-NN must nest");
        }
    }

    #[test]
    fn subspace_knn_agrees_with_manual_projection(
        pts in point_set(4),
        q in proptest::collection::vec(-50.0..50.0f64, 4),
        k in 1usize..10,
    ) {
        let sub = Subspace::from_vectors(4, &[vec![1.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0, -1.0]]);
        let a = knn_indices_in_subspace(&pts, &q, k, &sub);
        // Manual: project everything, then plain L2 k-NN.
        let proj_pts: Vec<Vec<f64>> = sub.project_all(&pts);
        let proj_q = sub.project(&q);
        let b = knn_indices(&proj_pts, &proj_q, k, Metric::L2);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn classify_returns_existing_label(
        pts in point_set(3),
        q in proptest::collection::vec(-50.0..50.0f64, 3),
        k in 1usize..10,
    ) {
        let labels: Vec<Option<usize>> = (0..pts.len()).map(|i| Some(i % 3)).collect();
        if let Some(pred) = knn_classify(&pts, &labels, &q, k, Metric::L2, None) {
            prop_assert!(pred < 3);
        }
    }

    #[test]
    fn vafile_is_exact(
        pts in point_set(4),
        q in proptest::collection::vec(-50.0..50.0f64, 4),
        k in 1usize..15,
        bits in 1u32..7,
    ) {
        let va = VaFile::build(pts.clone(), bits);
        let (got, stats) = va.knn(&q, k);
        let want = knn_indices(&pts, &q, k, Metric::L2);
        // Index sets must agree; exact order can differ only on ties, so
        // compare distances rank by rank.
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            let da = hinn_linalg::vector::dist(&pts[*a], &q);
            let db = hinn_linalg::vector::dist(&pts[*b], &q);
            prop_assert!((da - db).abs() < 1e-9, "distance mismatch: {da} vs {db}");
        }
        prop_assert!(stats.refined <= stats.total);
    }

    #[test]
    fn metric_distances_are_symmetric_and_nonnegative(
        x in proptest::collection::vec(-50.0..50.0f64, 5),
        y in proptest::collection::vec(-50.0..50.0f64, 5),
        p in 0.25..4.0f64,
    ) {
        for m in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(p)] {
            let d1 = m.dist(&x, &y);
            let d2 = m.dist(&y, &x);
            prop_assert!(d1 >= 0.0);
            prop_assert!((d1 - d2).abs() < 1e-9, "asymmetric metric");
        }
        prop_assert_eq!(Metric::L2.dist(&x, &x), 0.0);
    }
}
