//! A vector-approximation file (VA-file) — Weber, Schek & Blott,
//! VLDB 1998, the paper's reference \[27\].
//!
//! The VA-file is the canonical *exact* high-dimensional nearest-neighbor
//! index: each dimension is quantized into `2^b` cells, every point is
//! stored as a compact cell signature, and a k-NN query runs in two
//! phases — a **filter** pass over the signatures computing per-point
//! lower/upper distance bounds, and a **refine** pass computing exact
//! distances only for points whose lower bound beats the current k-th
//! upper bound. \[27\] showed this beats tree indexes in high dimension
//! (where trees degrade to scans).
//!
//! Its role in this reproduction is the role it plays in the paper's
//! narrative: a fast index returns the *same* full-dimensional answer as a
//! linear scan — the meaningfulness problem of §1 is untouched by better
//! indexing, which is why the paper reaches for the human instead. The
//! implementation also serves the Criterion benches comparing scan vs
//! filter-and-refine cost.

use hinn_par::{fill_chunks, Parallelism};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Number of quantization cells per dimension is `2^bits`.
#[derive(Clone, Debug)]
pub struct VaFile {
    /// Quantization bits per dimension (cells = `2^bits`).
    bits: u32,
    dim: usize,
    /// Per-dimension cell boundaries: `bounds[j]` has `cells + 1` entries.
    bounds: Vec<Vec<f64>>,
    /// Per-point cell signature, row-major `n × dim` (cell index per dim).
    cells: Vec<u16>,
    /// Points with a NaN coordinate: their signature is meaningless, so
    /// the filter gives them infinite bounds — they can neither tighten
    /// the pruning threshold nor appear in any answer.
    poisoned: Vec<bool>,
    /// Number of indexed points.
    n: usize,
    /// The exact vectors for the refine phase, flat row-major: point `i`
    /// at `[i·dim, (i+1)·dim)` — one contiguous allocation instead of
    /// `N` heap rows, so the refine phase's random accesses stay cheap.
    points: Vec<f64>,
}

/// Statistics of one query — how much the filter phase saved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VaQueryStats {
    /// Points whose exact distance was computed in the refine phase.
    pub refined: usize,
    /// Total points in the index.
    pub total: usize,
}

impl VaFile {
    /// Build the index over `points` with `bits` quantization bits per
    /// dimension (cell boundaries are per-dimension equi-depth quantiles,
    /// the variant \[27\] recommends for skewed data).
    ///
    /// # Panics
    /// Panics if `points` is empty, rows are ragged, or
    /// `bits` is not in `1..=8`.
    pub fn build(points: Vec<Vec<f64>>, bits: u32) -> Self {
        assert!(!points.is_empty(), "VaFile: empty point set");
        assert!((1..=8).contains(&bits), "VaFile: bits must be in 1..=8");
        let dim = points[0].len();
        assert!(dim > 0, "VaFile: zero-dimensional points");
        assert!(
            points.iter().all(|p| p.len() == dim),
            "VaFile: ragged point set"
        );
        let cells = 1usize << bits;

        // Equi-depth boundaries per dimension.
        let mut bounds = Vec::with_capacity(dim);
        for j in 0..dim {
            let mut col: Vec<f64> = points.iter().map(|p| p[j]).collect();
            // `total_cmp` keeps the sort total on poisoned data: NaN
            // coordinates collect at the extremes deterministically. The
            // boundaries themselves must stay finite — a NaN outer edge
            // would silently weaken the per-cell distance bounds and let
            // the filter prune true neighbors — so the outer boundaries
            // clamp to the finite span of the column (identical to the
            // raw extremes on clean data; NaN points themselves are
            // excluded by the refine heap regardless of their cell).
            col.sort_by(|a, b| a.total_cmp(b));
            let lo_edge = col.iter().copied().find(|v| !v.is_nan()).unwrap_or(0.0);
            let hi_edge = col
                .iter()
                .rev()
                .copied()
                .find(|v| !v.is_nan())
                .unwrap_or(0.0);
            let mut b = Vec::with_capacity(cells + 1);
            b.push(lo_edge);
            for c in 1..cells {
                let idx = (c * (col.len() - 1)) / cells;
                let v = col[idx].min(hi_edge); // `min` ignores a NaN quantile
                                               // Boundaries must be non-decreasing; duplicates are fine
                                               // (empty cells).
                b.push(v.max(*b.last().expect("non-empty")));
            }
            b.push(hi_edge.max(*b.last().expect("non-empty")));
            bounds.push(b);
        }

        // Signatures.
        let mut cell_ids = Vec::with_capacity(points.len() * dim);
        let mut poisoned = Vec::with_capacity(points.len());
        for p in &points {
            for j in 0..dim {
                cell_ids.push(cell_of(&bounds[j], p[j]) as u16);
            }
            poisoned.push(p.iter().any(|v| v.is_nan()));
        }
        let n = points.len();
        let mut flat = Vec::with_capacity(n * dim);
        for p in &points {
            flat.extend_from_slice(p);
        }
        Self {
            bits,
            dim,
            bounds,
            cells: cell_ids,
            poisoned,
            n,
            points: flat,
        }
    }

    /// Point `i` as a slice into the flat row-major storage.
    #[inline]
    fn point(&self, i: usize) -> &[f64] {
        &self.points[i * self.dim..(i + 1) * self.dim]
    }

    /// The shared, memoized index over `points`: built at most once per
    /// (dataset fingerprint, `bits`) process-wide and handed out as an
    /// `Arc`, via the [`hinn_cache::DatasetArtifacts`] registry. Batch
    /// harnesses that compare the interactive search against the VA-file
    /// on the same dataset amortize the O(N·d log N) build this way.
    ///
    /// The build is a pure function of `(points, bits)` and the registry
    /// is keyed by the content fingerprint of `points`, so the shared
    /// index is bit-identical to a fresh [`VaFile::build`].
    ///
    /// # Panics
    /// Panics exactly as [`VaFile::build`] does on invalid input.
    pub fn shared(points: &[Vec<f64>], bits: u32) -> std::sync::Arc<Self> {
        let arts = hinn_cache::DatasetArtifacts::for_points(points);
        arts.store()
            .get_or_insert("baselines.vafile", u64::from(bits), || {
                Self::build(points.to_vec(), bits)
            })
            .unwrap_or_else(|| std::sync::Arc::new(Self::build(points.to_vec(), bits)))
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the index is empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Quantization bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Exact Euclidean k-NN via filter-and-refine. Returns the neighbor
    /// indices closest-first plus the query statistics.
    ///
    /// # Panics
    /// Panics on query dimensionality mismatch.
    pub fn knn(&self, query: &[f64], k: usize) -> (Vec<usize>, VaQueryStats) {
        self.knn_with(Parallelism::serial(), query, k)
    }

    /// [`VaFile::knn`] with an explicit thread budget for the phase-1
    /// filter scan (the O(N·d) pass computing per-point lower/upper
    /// bounds). Each bound pair is a pure function of its signature, so
    /// the bounds — and the refine phase driven by them — are identical
    /// for every budget.
    ///
    /// # Panics
    /// Panics on query dimensionality mismatch.
    #[allow(clippy::needless_range_loop)] // index loops mirror the grid math
    pub fn knn_with(
        &self,
        par: Parallelism,
        query: &[f64],
        k: usize,
    ) -> (Vec<usize>, VaQueryStats) {
        assert_eq!(query.len(), self.dim, "VaFile: query dimensionality");
        let n = self.n;
        let k = k.min(n);
        if k == 0 {
            return (
                Vec::new(),
                VaQueryStats {
                    refined: 0,
                    total: n,
                },
            );
        }

        // Per-dimension squared distances from the query to each cell
        // (lower bound: to the nearest cell edge; upper bound: to the
        // farthest cell edge).
        let cells = 1usize << self.bits;
        let mut lo = vec![0.0f64; self.dim * cells];
        let mut hi = vec![0.0f64; self.dim * cells];
        for j in 0..self.dim {
            for c in 0..cells {
                let left = self.bounds[j][c];
                let right = self.bounds[j][c + 1];
                let q = query[j];
                let l = if q < left {
                    left - q
                } else if q > right {
                    q - right
                } else {
                    0.0
                };
                let h = (q - left).abs().max((q - right).abs());
                lo[j * cells + c] = l * l;
                hi[j * cells + c] = h * h;
            }
        }

        // Phase 1: bounds per point, chunked over the thread budget (no
        // sort — one pass computes both bounds and collects the lower
        // bounds for the pruning threshold).
        let filter_span = hinn_obs::span!("baselines.vafile_filter");
        hinn_obs::counter("baselines.points_scanned", n as u64);
        let mut bound_pairs = vec![(0.0f64, 0.0f64); n];
        fill_chunks(par, &mut bound_pairs, |start, slice| {
            for (off, slot) in slice.iter_mut().enumerate() {
                let i = start + off;
                if self.poisoned[i] {
                    // A NaN coordinate has no meaningful cell: infinite
                    // bounds keep it out of both the pruning threshold
                    // (a falsely small upper could discard true
                    // neighbors) and the refine phase.
                    *slot = (f64::INFINITY, f64::INFINITY);
                    continue;
                }
                let sig = &self.cells[i * self.dim..(i + 1) * self.dim];
                let mut l = 0.0;
                let mut h = 0.0;
                for (j, &c) in sig.iter().enumerate() {
                    l += lo[j * cells + c as usize];
                    h += hi[j * cells + c as usize];
                }
                *slot = (l, h);
            }
        });
        let lowers: Vec<f64> = bound_pairs.iter().map(|&(l, _)| l).collect();
        let uppers: Vec<f64> = bound_pairs.iter().map(|&(_, h)| h).collect();
        // The k-th smallest *upper* bound prunes everything with a larger
        // lower bound: any true k-NN member has exact ≤ its upper ≤ that
        // threshold, hence lower ≤ threshold, so no true neighbor is lost.
        let mut upper_sel = uppers.clone();
        upper_sel.select_nth_unstable_by(k - 1, |a, b| a.total_cmp(b));
        let kth_upper = upper_sel[k - 1];
        drop(filter_span);

        // Phase 2: refine every surviving candidate, tightening the cutoff
        // to the current k-th exact distance as the heap fills.
        let refine_span = hinn_obs::span!("baselines.vafile_refine");
        let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new(); // max-heap of k best
        let mut refined = 0usize;
        for i in 0..n {
            let l = lowers[i];
            if l > kth_upper {
                continue;
            }
            if heap.len() == k && l > heap.peek().expect("non-empty").dist {
                continue;
            }
            let d = hinn_linalg::vector::dist_sq(self.point(i), query);
            refined += 1;
            if heap.len() < k {
                heap.push(HeapEntry { dist: d, idx: i });
            } else if d < heap.peek().expect("non-empty").dist {
                heap.pop();
                heap.push(HeapEntry { dist: d, idx: i });
            }
        }

        drop(refine_span);
        hinn_obs::counter("baselines.vafile_refined", refined as u64);

        let mut result: Vec<HeapEntry> = heap.into_vec();
        result.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.idx.cmp(&b.idx)));
        (
            result.into_iter().map(|e| e.idx).collect(),
            VaQueryStats { refined, total: n },
        )
    }
}

/// Binary search for the cell containing `v` (clamped to the outer cells).
fn cell_of(bounds: &[f64], v: f64) -> usize {
    let cells = bounds.len() - 1;
    if v <= bounds[0] {
        return 0;
    }
    if v >= bounds[cells] {
        return cells - 1;
    }
    // partition_point: first boundary > v, minus one. A NaN coordinate
    // satisfies no comparison above and no `<=` here, so `idx` is 0: the
    // saturating subtraction files it in cell 0 instead of underflowing.
    // Its exact distance is NaN, which sorts behind every real neighbor.
    let idx = bounds.partition_point(|b| *b <= v);
    idx.saturating_sub(1).min(cells - 1)
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    idx: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Squared distances are non-negative, so `total_cmp` matches the
        // old order; a poisoned (NaN) distance ranks as the *worst* entry
        // in the max-heap of k best, so it is evicted first and never
        // displaces a real neighbor.
        self.dist
            .total_cmp(&other.dist)
            .then(self.idx.cmp(&other.idx))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{knn_indices, Metric};

    fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..d).map(|_| unif() * 100.0).collect())
            .collect()
    }

    #[test]
    fn shared_index_is_memoized_per_bits_and_exact() {
        let pts = random_points(200, 8, 11);
        let a = VaFile::shared(&pts, 4);
        let b = VaFile::shared(&pts, 4);
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "same dataset + bits must share one index"
        );
        let other = VaFile::shared(&pts, 5);
        assert!(
            !std::sync::Arc::ptr_eq(&a, &other),
            "different bits is a different artifact"
        );
        assert_eq!(other.bits(), 5);
        // The shared index answers exactly like a fresh build.
        let fresh = VaFile::build(pts.clone(), 4);
        let q = &pts[17];
        assert_eq!(a.knn(q, 9).0, fresh.knn(q, 9).0);
    }

    #[test]
    fn agrees_with_linear_scan() {
        let pts = random_points(500, 12, 7);
        let va = VaFile::build(pts.clone(), 4);
        for qi in [0usize, 123, 400] {
            let q = &pts[qi];
            let (got, _) = va.knn(q, 10);
            let want = knn_indices(&pts, q, 10, Metric::L2);
            assert_eq!(got, want, "VA-file must be exact (query {qi})");
        }
    }

    #[test]
    fn poisoned_coordinate_neither_panics_nor_displaces_neighbors() {
        // NaN policy: a poisoned point files into the outermost cell
        // (saturating, no index underflow), its exact distance is NaN,
        // and the refine heap evicts it first — so the VA-file still
        // agrees with the linear scan, which applies the same policy.
        let mut pts = random_points(120, 6, 21);
        pts[7][1] = f64::NAN;
        let va = VaFile::build(pts.clone(), 4);
        for qi in [0usize, 50, 100] {
            let q = pts[qi].clone();
            let (got, _) = va.knn(&q, 8);
            let want = knn_indices(&pts, &q, 8, Metric::L2);
            assert_eq!(got, want, "query {qi}");
            assert!(!got.contains(&7), "poisoned point must not rank");
        }
    }

    #[test]
    fn agrees_for_external_queries() {
        let pts = random_points(300, 8, 11);
        let va = VaFile::build(pts.clone(), 5);
        let queries = random_points(10, 8, 99);
        for q in &queries {
            let (got, stats) = va.knn(q, 7);
            let want = knn_indices(&pts, q, 7, Metric::L2);
            assert_eq!(got, want);
            assert!(stats.refined <= stats.total);
        }
    }

    #[test]
    fn filter_actually_prunes_on_clustered_data() {
        // Tight clusters → most signatures have large lower bounds.
        let mut pts = Vec::new();
        let mut noise = random_points(1000, 6, 3);
        for p in noise.iter_mut() {
            for v in p.iter_mut() {
                *v = *v * 0.1 + 80.0; // far blob
            }
        }
        pts.extend(noise);
        let near = random_points(50, 6, 5);
        for p in &near {
            let mut q = p.clone();
            for v in q.iter_mut() {
                *v *= 0.05; // near-origin blob
            }
            pts.push(q);
        }
        let va = VaFile::build(pts.clone(), 6);
        let query = vec![1.0; 6];
        let (_, stats) = va.knn(&query, 10);
        assert!(
            stats.refined < stats.total / 2,
            "filter should prune most points: refined {}/{}",
            stats.refined,
            stats.total
        );
    }

    #[test]
    fn bounds_are_valid() {
        // Lower bound ≤ exact ≤ upper bound for every point (checked via a
        // white-box reconstruction of the filter phase).
        let pts = random_points(200, 5, 13);
        let va = VaFile::build(pts.clone(), 3);
        let query = vec![50.0; 5];
        let cells = 1usize << va.bits();
        for (i, p) in pts.iter().enumerate() {
            let exact = hinn_linalg::vector::dist_sq(p, &query);
            let sig = &va.cells[i * va.dim..(i + 1) * va.dim];
            let mut l = 0.0;
            let mut h = 0.0;
            for (j, &c) in sig.iter().enumerate() {
                let left = va.bounds[j][c as usize];
                let right = va.bounds[j][c as usize + 1];
                let q = query[j];
                let lo = if q < left {
                    left - q
                } else if q > right {
                    q - right
                } else {
                    0.0
                };
                let hi = (q - left).abs().max((q - right).abs());
                l += lo * lo;
                h += hi * hi;
            }
            assert!(l <= exact + 1e-9, "lower bound violated for point {i}");
            assert!(h >= exact - 1e-9, "upper bound violated for point {i}");
            let _ = cells;
        }
    }

    #[test]
    fn k_edge_cases() {
        let pts = random_points(20, 4, 17);
        let va = VaFile::build(pts.clone(), 4);
        let q = vec![0.0; 4];
        let (zero, stats) = va.knn(&q, 0);
        assert!(zero.is_empty());
        assert_eq!(stats.refined, 0);
        let (all, _) = va.knn(&q, 100);
        assert_eq!(all.len(), 20);
        let want = knn_indices(&pts, &q, 20, Metric::L2);
        assert_eq!(all, want);
    }

    #[test]
    fn duplicate_coordinates_are_handled() {
        // Constant dimension → all boundaries equal (empty cells).
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, 5.0]).collect();
        let va = VaFile::build(pts.clone(), 4);
        let (got, _) = va.knn(&[10.2, 5.0], 3);
        let want = knn_indices(&pts, &[10.2, 5.0], 3, Metric::L2);
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=8")]
    fn invalid_bits_panics() {
        VaFile::build(vec![vec![0.0]], 0);
    }

    #[test]
    #[should_panic(expected = "query dimensionality")]
    fn query_dim_mismatch_panics() {
        let va = VaFile::build(vec![vec![0.0, 0.0]], 4);
        va.knn(&[0.0], 1);
    }
}
