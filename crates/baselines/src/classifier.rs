//! k-NN classification (the Table 2 evaluation protocol).
//!
//! §4.3 classifies each query point by the labels of the neighbors a method
//! returns. For the automated baselines the neighbor set is the k-NN under
//! the chosen metric, excluding the query point itself when it is a member
//! of the data set.

use crate::knn::{knn_indices, Metric};

/// Classify `query` by majority label among its `k` nearest neighbors in
/// `points` (excluding any point at zero distance in `exclude` — typically
/// the query's own index when querying the training set).
///
/// Returns `None` when no labeled neighbor exists.
pub fn knn_classify(
    points: &[Vec<f64>],
    labels: &[Option<usize>],
    query: &[f64],
    k: usize,
    metric: Metric,
    exclude: Option<usize>,
) -> Option<usize> {
    assert_eq!(points.len(), labels.len(), "knn_classify: label mismatch");
    // Fetch one extra in case the excluded point is among the neighbors.
    let nn = knn_indices(points, query, k + 1, metric);
    let neighbor_labels: Vec<Option<usize>> = nn
        .into_iter()
        .filter(|i| Some(*i) != exclude)
        .take(k)
        .map(|i| labels[i])
        .collect();
    hinn_metrics::majority_label(&neighbor_labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled_blobs() -> (Vec<Vec<f64>>, Vec<Option<usize>>) {
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            pts.push(vec![0.0 + 0.01 * i as f64, 0.0]);
            labels.push(Some(0));
            pts.push(vec![10.0 + 0.01 * i as f64, 10.0]);
            labels.push(Some(1));
        }
        (pts, labels)
    }

    #[test]
    fn classifies_by_local_majority() {
        let (pts, labels) = labeled_blobs();
        assert_eq!(
            knn_classify(&pts, &labels, &[0.1, 0.1], 5, Metric::L2, None),
            Some(0)
        );
        assert_eq!(
            knn_classify(&pts, &labels, &[9.9, 9.9], 5, Metric::L2, None),
            Some(1)
        );
    }

    #[test]
    fn exclusion_removes_self_match() {
        let (pts, labels) = labeled_blobs();
        // Query = point 0 itself; with k=1 and exclusion, the neighbor is
        // another class-0 point, so the answer is still 0 — but crucially
        // point 0 itself was not used.
        let q = pts[0].clone();
        assert_eq!(
            knn_classify(&pts, &labels, &q, 1, Metric::L2, Some(0)),
            Some(0)
        );
    }

    #[test]
    fn unlabeled_neighbors_yield_none() {
        let pts = vec![vec![0.0], vec![1.0]];
        let labels = vec![None, None];
        assert_eq!(
            knn_classify(&pts, &labels, &[0.5], 2, Metric::L2, None),
            None
        );
    }

    #[test]
    fn k_one_nearest_decides() {
        let pts = vec![vec![0.0], vec![10.0]];
        let labels = vec![Some(3), Some(7)];
        assert_eq!(
            knn_classify(&pts, &labels, &[2.0], 1, Metric::L2, None),
            Some(3)
        );
        assert_eq!(
            knn_classify(&pts, &labels, &[8.0], 1, Metric::L2, None),
            Some(7)
        );
    }
}
