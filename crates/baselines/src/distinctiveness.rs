//! Distinctiveness-sensitive nearest-neighbor ranking, in the spirit of
//! Katayama & Satoh (ICDE 2001) — reference \[19\] of the paper.
//!
//! §1 cites \[19\] as independent confirmation that "distinctiveness
//! sensitive nearest neighbor search leads to higher quality of retrieval":
//! a neighbor is only valuable if it can be *discriminated* from the rest
//! of the database at the scale of its distance to the query. A candidate
//! buried in a diffuse crowd — where many interchangeable points sit within
//! the same distance scale — is a low-value answer even when its raw
//! distance is small.
//!
//! Here each candidate `x` is scored by the number of other database points
//! lying within `α · dist(q, x)` of `x` (its *indistinctness*); candidates
//! are ranked by `(indistinctness, raw distance)`, so among equally
//! distinctive points the nearest still wins.

use crate::knn::{knn_indices, Metric};

/// Fraction of the query distance used as the discrimination radius.
const ALPHA: f64 = 0.5;

/// Rank the `k` most *distinctive* neighbors of `query`.
///
/// The `candidate_pool` nearest candidates are re-ranked by indistinctness
/// (see module docs); `local_cap` bounds the neighbor count examined per
/// candidate (indistinctness saturates there — beyond a screenful of
/// interchangeable points, more of them no longer matters).
///
/// # Panics
/// Panics if `points` is empty or `local_cap == 0`.
pub fn distinctiveness_knn(
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
    candidate_pool: usize,
    local_cap: usize,
    metric: Metric,
) -> Vec<usize> {
    assert!(!points.is_empty(), "distinctiveness_knn: empty data");
    assert!(
        local_cap > 0,
        "distinctiveness_knn: local_cap must be positive"
    );
    let pool = knn_indices(points, query, candidate_pool.max(k), metric);
    let mut scored: Vec<(usize, f64, usize)> = pool
        .into_iter()
        .map(|i| {
            let x = &points[i];
            let d_q = metric.dist(x, query);
            let radius = ALPHA * d_q;
            // Count other points within the discrimination radius, capped.
            let mut indistinct = 0usize;
            for (j, p) in points.iter().enumerate() {
                if j != i && metric.dist(p, x) <= radius {
                    indistinct += 1;
                    if indistinct >= local_cap {
                        break;
                    }
                }
            }
            (indistinct, d_q, i)
        })
        .collect();
    scored.sort_by(|a, b| {
        a.0.cmp(&b.0)
            // Non-negative distances: `total_cmp` matches the old order
            // and stays total if a poisoned (NaN) distance slips in.
            .then(a.1.total_cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    scored.into_iter().take(k).map(|(_, _, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefers_distinct_points_over_generic_crowd() {
        // Query at 10.5. A pair of isolated points near x=10 is distinctive;
        // a diffuse crowd spanning x=6..9 is closer on average to nothing —
        // each crowd member has many interchangeable peers at its
        // query-distance scale.
        let mut pts: Vec<Vec<f64>> = Vec::new();
        pts.push(vec![10.0]); // index 0: distinctive
        pts.push(vec![9.8]); // index 1: distinctive
        for i in 0..30 {
            pts.push(vec![6.0 + 0.1 * i as f64]); // crowd, indices 2..32
        }
        let query = [10.5];
        let top = distinctiveness_knn(&pts, &query, 2, 20, 16, Metric::L2);
        assert_eq!(top, vec![0, 1], "isolated near points must rank first");
    }

    #[test]
    fn crowded_closer_point_demoted() {
        // One point inside a dense blob is slightly closer to the query
        // than one isolated point; distinctiveness should prefer the
        // isolated one.
        let mut pts: Vec<Vec<f64>> = Vec::new();
        // Dense blob at x = 1.0 ± 0.05 (indices 0..20), nearest to query 1.2.
        for i in 0..20 {
            pts.push(vec![0.95 + 0.005 * i as f64]);
        }
        // Isolated point a touch farther (index 20).
        pts.push(vec![1.45]);
        let top = distinctiveness_knn(&pts, &[1.2], 1, 21, 16, Metric::L2);
        assert_eq!(top, vec![20], "isolated point should beat blob members");
    }

    #[test]
    fn ties_fall_back_to_distance() {
        // All points isolated → indistinctness 0 for everyone; ranking must
        // degrade gracefully to plain k-NN.
        let pts: Vec<Vec<f64>> = (0..6).map(|i| vec![10.0 * i as f64]).collect();
        let r = distinctiveness_knn(&pts, &[21.0], 3, 6, 8, Metric::L2);
        assert_eq!(r, vec![2, 3, 1]);
    }

    #[test]
    fn k_caps_result() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let r = distinctiveness_knn(&pts, &[5.0], 3, 10, 4, Metric::L2);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn single_point_dataset() {
        let pts = vec![vec![1.0, 2.0]];
        let r = distinctiveness_knn(&pts, &[0.0, 0.0], 1, 5, 2, Metric::L2);
        assert_eq!(r, vec![0]);
    }

    #[test]
    #[should_panic(expected = "local_cap")]
    fn zero_local_cap_panics() {
        distinctiveness_knn(&[vec![0.0]], &[0.0], 1, 1, 0, Metric::L2);
    }
}
