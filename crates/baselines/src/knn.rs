//! Exact k-nearest-neighbor linear scan under Minkowski metrics.
//!
//! The distance scan is the O(N·d) hot loop; the `*_with` variants spread
//! it over a [`Parallelism`] budget with `hinn-par`'s fixed chunks. Each
//! distance is a pure function of its point, so the scored array — and the
//! selection made from it — is identical for every thread count.

use hinn_linalg::vector::lp_dist;
use hinn_linalg::{Parallelism, Subspace};
use hinn_par::fill_chunks;

/// A Minkowski distance metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Metric {
    /// Manhattan distance.
    L1,
    /// Euclidean distance.
    L2,
    /// Chebyshev (max) distance.
    LInf,
    /// General `L_p`, including fractional `0 < p < 1`.
    Lp(f64),
}

impl Metric {
    /// Distance between two points under this metric.
    #[inline]
    pub fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        match self {
            Metric::L1 => lp_dist(x, y, 1.0),
            Metric::L2 => hinn_linalg::vector::dist(x, y),
            Metric::LInf => lp_dist(x, y, f64::INFINITY),
            Metric::Lp(p) => lp_dist(x, y, *p),
        }
    }
}

/// Indices of the `k` points nearest to `query`, closest first. Ties are
/// broken by index for determinism. Returns all points (sorted) when
/// `k >= points.len()`.
///
/// ```
/// use hinn_baselines::{knn_indices, Metric};
///
/// let points = vec![vec![0.0], vec![5.0], vec![1.0], vec![9.0]];
/// assert_eq!(knn_indices(&points, &[0.4], 2, Metric::L2), vec![0, 2]);
/// ```
pub fn knn_indices(points: &[Vec<f64>], query: &[f64], k: usize, metric: Metric) -> Vec<usize> {
    knn_indices_with(Parallelism::serial(), points, query, k, metric)
}

/// [`knn_indices`] with an explicit thread budget for the distance scan.
/// Identical results for every budget (each distance is a pure function of
/// its point; the selection runs on the calling thread).
pub fn knn_indices_with(
    par: Parallelism,
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
    metric: Metric,
) -> Vec<usize> {
    select_k(scan_distances(par, points, |p| metric.dist(p, query)), k)
}

/// k-NN under the Euclidean metric *inside a subspace* (`Pdist` of §1.3).
pub fn knn_indices_in_subspace(
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
    subspace: &Subspace,
) -> Vec<usize> {
    knn_indices_in_subspace_with(Parallelism::serial(), points, query, k, subspace)
}

/// [`knn_indices_in_subspace`] with an explicit thread budget for the
/// projected-distance scan. Identical results for every budget.
pub fn knn_indices_in_subspace_with(
    par: Parallelism,
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
    subspace: &Subspace,
) -> Vec<usize> {
    select_k(
        scan_distances(par, points, |p| subspace.projected_distance(p, query)),
        k,
    )
}

/// Score every point with `dist`, chunked over the thread budget.
fn scan_distances<F>(par: Parallelism, points: &[Vec<f64>], dist: F) -> Vec<(f64, usize)>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let _span = hinn_obs::span!("baselines.knn_scan");
    hinn_obs::counter("baselines.points_scanned", points.len() as u64);
    let mut scored: Vec<(f64, usize)> = vec![(0.0, 0); points.len()];
    fill_chunks(par, &mut scored, |start, slice| {
        for (off, slot) in slice.iter_mut().enumerate() {
            let i = start + off;
            *slot = (dist(&points[i]), i);
        }
    });
    scored
}

/// Partial selection then sort of the head — O(N + k log k).
fn select_k(mut scored: Vec<(f64, usize)>, k: usize) -> Vec<usize> {
    let k = k.min(scored.len());
    // Distances are non-negative, so `total_cmp` matches the old partial
    // order; a poisoned (NaN) distance sorts last and is excluded from
    // the k nearest instead of panicking the scan.
    let by_dist = |a: &(f64, usize), b: &(f64, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
    scored.select_nth_unstable_by(k.saturating_sub(1), by_dist);
    let mut head: Vec<(f64, usize)> = scored[..k].to_vec();
    head.sort_by(by_dist);
    head.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points() -> Vec<Vec<f64>> {
        // Points at x = 0, 1, 2, ..., 9 on a line.
        (0..10).map(|i| vec![i as f64, 0.0]).collect()
    }

    #[test]
    fn knn_on_a_line() {
        let pts = line_points();
        let nn = knn_indices(&pts, &[3.2, 0.0], 3, Metric::L2);
        assert_eq!(nn, vec![3, 4, 2]);
    }

    #[test]
    fn poisoned_point_is_excluded_from_the_k_nearest() {
        // NaN policy: a point with a NaN coordinate gets a NaN distance,
        // which sorts behind every finite one — it can never displace a
        // real neighbor, and the scan never panics.
        let mut pts = line_points();
        pts[4] = vec![f64::NAN, 0.0];
        let nn = knn_indices(&pts, &[3.2, 0.0], 3, Metric::L2);
        assert_eq!(nn, vec![3, 2, 5]);
    }

    #[test]
    fn k_zero_and_k_too_large() {
        let pts = line_points();
        assert!(knn_indices(&pts, &[0.0, 0.0], 0, Metric::L2).is_empty());
        let all = knn_indices(&pts, &[0.0, 0.0], 99, Metric::L2);
        assert_eq!(all.len(), 10);
        assert_eq!(all[0], 0);
        assert_eq!(all[9], 9);
    }

    #[test]
    fn metrics_rank_differently() {
        // Under L2, (3,3) [d=4.24] is closer than (0,5) [d=5];
        // under L1 they tie (6 vs 5 — actually (0,5) is closer);
        // under LInf (3,3) [3] is closer than (0,5) [5].
        let pts = vec![vec![3.0, 3.0], vec![0.0, 5.0]];
        let q = [0.0, 0.0];
        assert_eq!(knn_indices(&pts, &q, 1, Metric::L2), vec![0]);
        assert_eq!(knn_indices(&pts, &q, 1, Metric::L1), vec![1]);
        assert_eq!(knn_indices(&pts, &q, 1, Metric::LInf), vec![0]);
    }

    #[test]
    fn fractional_metric_runs() {
        let pts = line_points();
        let nn = knn_indices(&pts, &[5.0, 0.0], 2, Metric::Lp(0.5));
        assert_eq!(nn[0], 5);
    }

    #[test]
    fn ties_broken_by_index() {
        let pts = vec![vec![1.0], vec![-1.0], vec![1.0]];
        let nn = knn_indices(&pts, &[0.0], 3, Metric::L2);
        assert_eq!(nn, vec![0, 1, 2]);
    }

    #[test]
    fn subspace_knn_ignores_complement() {
        // Subspace = x-axis; y-coordinates must not matter.
        let s = Subspace::from_vectors(2, &[vec![1.0, 0.0]]);
        let pts = vec![vec![5.0, 0.0], vec![1.0, 100.0], vec![2.0, -50.0]];
        let nn = knn_indices_in_subspace(&pts, &[0.0, 0.0], 2, &s);
        assert_eq!(nn, vec![1, 2]);
    }

    #[test]
    fn full_subspace_matches_l2() {
        let pts = line_points();
        let s = Subspace::full(2);
        let a = knn_indices(&pts, &[4.1, 0.0], 5, Metric::L2);
        let b = knn_indices_in_subspace(&pts, &[4.1, 0.0], 5, &s);
        assert_eq!(a, b);
    }

    #[test]
    fn metric_dist_values() {
        let m = Metric::Lp(3.0);
        let d = m.dist(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((d - 2f64.powf(1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(Metric::L1.dist(&[0.0], &[-2.0]), 2.0);
    }
}
