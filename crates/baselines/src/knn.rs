//! Exact k-nearest-neighbor linear scan under Minkowski metrics.
//!
//! The distance scan is the O(N·d) hot loop; the `*_with` variants spread
//! it over a [`Parallelism`] budget with `hinn-par`'s fixed chunks. Each
//! distance is a pure function of its point, so the scored array — and the
//! selection made from it — is identical for every thread count.

use hinn_data::ColumnStore;
use hinn_linalg::vector::lp_dist;
use hinn_linalg::{Parallelism, Subspace};
use hinn_par::fill_chunks;

/// A Minkowski distance metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Metric {
    /// Manhattan distance.
    L1,
    /// Euclidean distance.
    L2,
    /// Chebyshev (max) distance.
    LInf,
    /// General `L_p`, including fractional `0 < p < 1`.
    Lp(f64),
}

impl Metric {
    /// Distance between two points under this metric.
    #[inline]
    pub fn dist(&self, x: &[f64], y: &[f64]) -> f64 {
        match self {
            Metric::L1 => lp_dist(x, y, 1.0),
            Metric::L2 => hinn_linalg::vector::dist(x, y),
            Metric::LInf => lp_dist(x, y, f64::INFINITY),
            Metric::Lp(p) => lp_dist(x, y, *p),
        }
    }
}

/// Indices of the `k` points nearest to `query`, closest first. Ties are
/// broken by index for determinism. Returns all points (sorted) when
/// `k >= points.len()`.
///
/// ```
/// use hinn_baselines::{knn_indices, Metric};
///
/// let points = vec![vec![0.0], vec![5.0], vec![1.0], vec![9.0]];
/// assert_eq!(knn_indices(&points, &[0.4], 2, Metric::L2), vec![0, 2]);
/// ```
pub fn knn_indices(points: &[Vec<f64>], query: &[f64], k: usize, metric: Metric) -> Vec<usize> {
    knn_indices_with(Parallelism::serial(), points, query, k, metric)
}

/// [`knn_indices`] with an explicit thread budget for the distance scan.
/// Identical results for every budget (each distance is a pure function of
/// its point; the selection runs on the calling thread).
pub fn knn_indices_with(
    par: Parallelism,
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
    metric: Metric,
) -> Vec<usize> {
    select_k(scan_distances(par, points, |p| metric.dist(p, query)), k)
}

/// [`knn_indices`] over columnar storage. Same results, bit-identical
/// distances — the L2 scan streams the store's contiguous columns through
/// the `hinn_linalg::simd` batch kernels instead of chasing one heap row
/// per point. Non-L2 metrics gather each row from the columns and fall
/// back to the scalar metric (correct, but no faster than the row scan).
pub fn knn_indices_cols(
    store: &ColumnStore,
    query: &[f64],
    k: usize,
    metric: Metric,
) -> Vec<usize> {
    knn_indices_cols_with(Parallelism::serial(), store, query, k, metric)
}

/// [`knn_indices_cols`] with an explicit thread budget. The fixed-chunk
/// schedule scans disjoint point ranges, and each per-point distance is
/// independent of its chunk, so results match every budget — and match
/// [`knn_indices_with`] on the same points exactly.
pub fn knn_indices_cols_with(
    par: Parallelism,
    store: &ColumnStore,
    query: &[f64],
    k: usize,
    metric: Metric,
) -> Vec<usize> {
    let _span = hinn_obs::span!("baselines.knn_scan");
    hinn_obs::counter("baselines.points_scanned", store.len() as u64);
    let mut scored: Vec<(f64, usize)> = vec![(0.0, 0); store.len()];
    fill_chunks(par, &mut scored, |start, slice| {
        let mut dists = hinn_cache::PooledF64::take_zeroed(slice.len());
        match metric {
            Metric::L2 => store.dist_scan_into(query, start, &mut dists),
            _ => {
                let mut row = hinn_cache::PooledF64::take_zeroed(store.dim());
                for (off, d) in dists.iter_mut().enumerate() {
                    store.gather_row(start + off, &mut row);
                    *d = metric.dist(&row, query);
                }
            }
        }
        for (off, slot) in slice.iter_mut().enumerate() {
            *slot = (dists[off], start + off);
        }
    });
    select_k(scored, k)
}

/// One columnar pass answering a whole batch of queries.
///
/// A single-query scan is memory-bound: it streams every column past the
/// core once per query. This variant walks the store in fixed chunks and
/// scans each chunk for *every* query while its columns are cache-hot, so
/// the dominant memory traffic is paid once per chunk instead of once per
/// query. Per-query results are bit-identical to [`knn_indices_cols`] —
/// each point's distance is the same ascending-dimension fold; only the
/// order the chunks are streamed in changes, and no distance depends on
/// it.
pub fn knn_indices_cols_batch(
    store: &ColumnStore,
    queries: &[&[f64]],
    k: usize,
    metric: Metric,
) -> Vec<Vec<usize>> {
    let _span = hinn_obs::span!("baselines.knn_scan_batch");
    hinn_obs::counter(
        "baselines.points_scanned",
        (store.len() * queries.len()) as u64,
    );
    let n = store.len();
    let k = k.min(n);
    // One bounded top-k heap per query instead of a full scored array:
    // the k smallest under `(total_cmp dist, index)` are the same set
    // whichever algorithm collects them, and the heaps keep the batch's
    // working set at O(queries·k) — materializing every score for every
    // query would dwarf the column traffic this function exists to save.
    let mut heaps: Vec<std::collections::BinaryHeap<Scored>> = queries
        .iter()
        .map(|_| std::collections::BinaryHeap::with_capacity(k + 1))
        .collect();
    let mut start = 0;
    while start < n {
        let len = hinn_par::CHUNK.min(n - start);
        let mut dists = hinn_cache::PooledF64::take_zeroed(len);
        let mut row = hinn_cache::PooledF64::take_zeroed(store.dim());
        for (q, heap) in queries.iter().zip(&mut heaps) {
            match metric {
                Metric::L2 => store.dist_scan_into(q, start, &mut dists),
                _ => {
                    for (off, d) in dists.iter_mut().enumerate() {
                        store.gather_row(start + off, &mut row);
                        *d = metric.dist(&row, q);
                    }
                }
            }
            for (off, &d) in dists.iter().enumerate() {
                let cand = Scored(d, start + off);
                if heap.len() < k {
                    heap.push(cand);
                } else if let Some(top) = heap.peek() {
                    if cand < *top {
                        heap.pop();
                        heap.push(cand);
                    }
                }
            }
        }
        start += len;
    }
    heaps
        .into_iter()
        .map(|h| h.into_sorted_vec().into_iter().map(|s| s.1).collect())
        .collect()
}

/// A scored point ordered like [`select_k`]'s comparator: `total_cmp` on
/// the distance (NaN greatest, hence never among the k nearest while
/// finite candidates remain), ties broken by index.
#[derive(Clone, Copy)]
struct Scored(f64, usize);

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl PartialEq for Scored {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for Scored {}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Approximate k-NN candidates over the store's f32 mirror (half the
/// memory traffic, double the SIMD lanes). Rankings can differ from the
/// exact scan where f32 rounding reorders near-ties, so this belongs on
/// the candidate-generation side of the f64-exact / f32-approximate
/// boundary: over-fetch and re-rank with an exact pass. L2 only.
pub fn knn_candidates_f32(store: &ColumnStore, query: &[f64], k: usize) -> Vec<usize> {
    let _span = hinn_obs::span!("baselines.knn_scan_f32");
    hinn_obs::counter("baselines.points_scanned", store.len() as u64);
    let qf: Vec<f32> = query.iter().map(|&v| v as f32).collect();
    let mut dists = vec![0.0f32; store.len()];
    store.dist_sq_scan_f32_into(&qf, 0, &mut dists);
    let scored = dists
        .into_iter()
        .enumerate()
        .map(|(i, d)| (f64::from(d), i))
        .collect();
    select_k(scored, k)
}

/// k-NN under the Euclidean metric *inside a subspace* (`Pdist` of §1.3).
pub fn knn_indices_in_subspace(
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
    subspace: &Subspace,
) -> Vec<usize> {
    knn_indices_in_subspace_with(Parallelism::serial(), points, query, k, subspace)
}

/// [`knn_indices_in_subspace`] with an explicit thread budget for the
/// projected-distance scan. Identical results for every budget.
pub fn knn_indices_in_subspace_with(
    par: Parallelism,
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
    subspace: &Subspace,
) -> Vec<usize> {
    select_k(
        scan_distances(par, points, |p| subspace.projected_distance(p, query)),
        k,
    )
}

/// Score every point with `dist`, chunked over the thread budget.
fn scan_distances<F>(par: Parallelism, points: &[Vec<f64>], dist: F) -> Vec<(f64, usize)>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let _span = hinn_obs::span!("baselines.knn_scan");
    hinn_obs::counter("baselines.points_scanned", points.len() as u64);
    let mut scored: Vec<(f64, usize)> = vec![(0.0, 0); points.len()];
    fill_chunks(par, &mut scored, |start, slice| {
        for (off, slot) in slice.iter_mut().enumerate() {
            let i = start + off;
            *slot = (dist(&points[i]), i);
        }
    });
    scored
}

/// Partial selection then sort of the head — O(N + k log k).
fn select_k(mut scored: Vec<(f64, usize)>, k: usize) -> Vec<usize> {
    let k = k.min(scored.len());
    // Distances are non-negative, so `total_cmp` matches the old partial
    // order; a poisoned (NaN) distance sorts last and is excluded from
    // the k nearest instead of panicking the scan.
    let by_dist = |a: &(f64, usize), b: &(f64, usize)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
    scored.select_nth_unstable_by(k.saturating_sub(1), by_dist);
    let mut head: Vec<(f64, usize)> = scored[..k].to_vec();
    head.sort_by(by_dist);
    head.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points() -> Vec<Vec<f64>> {
        // Points at x = 0, 1, 2, ..., 9 on a line.
        (0..10).map(|i| vec![i as f64, 0.0]).collect()
    }

    #[test]
    fn knn_on_a_line() {
        let pts = line_points();
        let nn = knn_indices(&pts, &[3.2, 0.0], 3, Metric::L2);
        assert_eq!(nn, vec![3, 4, 2]);
    }

    #[test]
    fn poisoned_point_is_excluded_from_the_k_nearest() {
        // NaN policy: a point with a NaN coordinate gets a NaN distance,
        // which sorts behind every finite one — it can never displace a
        // real neighbor, and the scan never panics.
        let mut pts = line_points();
        pts[4] = vec![f64::NAN, 0.0];
        let nn = knn_indices(&pts, &[3.2, 0.0], 3, Metric::L2);
        assert_eq!(nn, vec![3, 2, 5]);
    }

    #[test]
    fn k_zero_and_k_too_large() {
        let pts = line_points();
        assert!(knn_indices(&pts, &[0.0, 0.0], 0, Metric::L2).is_empty());
        let all = knn_indices(&pts, &[0.0, 0.0], 99, Metric::L2);
        assert_eq!(all.len(), 10);
        assert_eq!(all[0], 0);
        assert_eq!(all[9], 9);
    }

    #[test]
    fn metrics_rank_differently() {
        // Under L2, (3,3) [d=4.24] is closer than (0,5) [d=5];
        // under L1 they tie (6 vs 5 — actually (0,5) is closer);
        // under LInf (3,3) [3] is closer than (0,5) [5].
        let pts = vec![vec![3.0, 3.0], vec![0.0, 5.0]];
        let q = [0.0, 0.0];
        assert_eq!(knn_indices(&pts, &q, 1, Metric::L2), vec![0]);
        assert_eq!(knn_indices(&pts, &q, 1, Metric::L1), vec![1]);
        assert_eq!(knn_indices(&pts, &q, 1, Metric::LInf), vec![0]);
    }

    #[test]
    fn fractional_metric_runs() {
        let pts = line_points();
        let nn = knn_indices(&pts, &[5.0, 0.0], 2, Metric::Lp(0.5));
        assert_eq!(nn[0], 5);
    }

    #[test]
    fn ties_broken_by_index() {
        let pts = vec![vec![1.0], vec![-1.0], vec![1.0]];
        let nn = knn_indices(&pts, &[0.0], 3, Metric::L2);
        assert_eq!(nn, vec![0, 1, 2]);
    }

    #[test]
    fn subspace_knn_ignores_complement() {
        // Subspace = x-axis; y-coordinates must not matter.
        let s = Subspace::from_vectors(2, &[vec![1.0, 0.0]]);
        let pts = vec![vec![5.0, 0.0], vec![1.0, 100.0], vec![2.0, -50.0]];
        let nn = knn_indices_in_subspace(&pts, &[0.0, 0.0], 2, &s);
        assert_eq!(nn, vec![1, 2]);
    }

    #[test]
    fn full_subspace_matches_l2() {
        let pts = line_points();
        let s = Subspace::full(2);
        let a = knn_indices(&pts, &[4.1, 0.0], 5, Metric::L2);
        let b = knn_indices_in_subspace(&pts, &[4.1, 0.0], 5, &s);
        assert_eq!(a, b);
    }

    /// Deterministic pseudo-random cloud exercising ties and spread.
    fn cloud(n: usize, d: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                (0..d)
                    .map(|j| ((i * 37 + j * 101) % 97) as f64 * 0.13 - 6.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn columnar_scan_matches_row_scan_for_every_metric() {
        let pts = cloud(201, 7);
        let store = hinn_data::ColumnStore::from_rows(&pts);
        let q: Vec<f64> = (0..7).map(|j| j as f64 * 0.3 - 1.0).collect();
        for metric in [
            Metric::L1,
            Metric::L2,
            Metric::LInf,
            Metric::Lp(0.5),
            Metric::Lp(3.0),
        ] {
            let rows = knn_indices(&pts, &q, 10, metric);
            let cols = knn_indices_cols(&store, &q, 10, metric);
            assert_eq!(rows, cols, "{metric:?}: columnar scan must match rows");
        }
    }

    #[test]
    fn batched_columnar_scan_matches_per_query_results() {
        let pts = cloud(137, 6);
        let store = hinn_data::ColumnStore::from_rows(&pts);
        let queries: Vec<Vec<f64>> = (0..5)
            .map(|qi| (0..6).map(|j| (qi * 7 + j) as f64 * 0.11 - 1.5).collect())
            .collect();
        let q_refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        for metric in [Metric::L1, Metric::L2, Metric::LInf, Metric::Lp(0.5)] {
            let batch = knn_indices_cols_batch(&store, &q_refs, 9, metric);
            for (q, got) in queries.iter().zip(&batch) {
                let want = knn_indices_cols(&store, q, 9, metric);
                assert_eq!(got, &want, "{metric:?}: batch must match per-query scan");
            }
        }
    }

    #[test]
    fn columnar_scan_identical_across_thread_budgets() {
        let pts = cloud(150, 5);
        let store = hinn_data::ColumnStore::from_rows(&pts);
        let q = vec![0.0; 5];
        let serial = knn_indices_cols(&store, &q, 12, Metric::L2);
        let par = knn_indices_cols_with(Parallelism::fixed(4), &store, &q, 12, Metric::L2);
        assert_eq!(serial, par);
    }

    #[test]
    fn columnar_scan_excludes_poisoned_points() {
        let mut pts = line_points();
        pts[4] = vec![f64::NAN, 0.0];
        let store = hinn_data::ColumnStore::from_rows(&pts);
        let nn = knn_indices_cols(&store, &[3.2, 0.0], 3, Metric::L2);
        assert_eq!(nn, vec![3, 2, 5]);
    }

    #[test]
    fn f32_candidates_recover_exact_neighbors_on_separated_data() {
        // Well-separated distances: f32 rounding cannot reorder them, so
        // the approximate tier agrees with the exact scan here.
        let pts = cloud(100, 4);
        let store = hinn_data::ColumnStore::from_rows(&pts);
        let q = vec![0.25; 4];
        let exact = knn_indices(&pts, &q, 5, Metric::L2);
        let approx = knn_candidates_f32(&store, &q, 5);
        assert_eq!(exact, approx);
    }

    #[test]
    fn metric_dist_values() {
        let m = Metric::Lp(3.0);
        let d = m.dist(&[0.0, 0.0], &[1.0, 1.0]);
        assert!((d - 2f64.powf(1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(Metric::L1.dist(&[0.0], &[-2.0]), 2.0);
    }
}
