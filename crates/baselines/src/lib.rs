//! Automated (non-interactive) nearest-neighbor baselines.
//!
//! The paper compares its interactive system against fully automated
//! methods; this crate implements them:
//!
//! * [`knn`] — the exact full-dimensional k-NN scan under any Minkowski
//!   metric (the "L2 full dimensional method" of Table 2). With `N ≤ 5000`
//!   and `d ≤ 34`, a linear scan is exact and fast; the paper's argument is
//!   about *meaningfulness*, not index speed, so no approximate index is
//!   needed (or wanted) here.
//! * [`classifier`] — k-NN classification on top of any neighbor function
//!   (used for the Table 2 accuracy comparison).
//! * [`projected_nn`] — the automated *projected nearest neighbor* method of
//!   Hinneburg, Aggarwal & Keim (VLDB 2000), the paper's reference \[15\]:
//!   a single optimal discriminating projection is derived from the query
//!   neighborhood, and neighbors are ranked inside it — no human in the
//!   loop. The paper's §1 positions the interactive method as the
//!   multi-projection generalization of exactly this.
//! * [`distinctiveness`] — distinctiveness-sensitive ranking in the spirit
//!   of Katayama & Satoh (ICDE 2001), reference \[19\]: neighbors are
//!   re-scored by how much they stand out from their own local
//!   neighborhood.
//! * [`vafile`] — the VA-file of Weber, Schek & Blott (VLDB 1998),
//!   reference \[27\]: the canonical exact high-dimensional NN *index*.
//!   It returns the same answer as the linear scan, faster — underlining
//!   the paper's point that indexing speed does not buy meaningfulness.

pub mod classifier;
pub mod distinctiveness;
pub mod knn;
pub mod projected_nn;
pub mod vafile;

pub use classifier::knn_classify;
pub use distinctiveness::distinctiveness_knn;
pub use hinn_par::Parallelism;
pub use knn::{
    knn_candidates_f32, knn_indices, knn_indices_cols, knn_indices_cols_batch,
    knn_indices_cols_with, knn_indices_in_subspace, knn_indices_in_subspace_with, knn_indices_with,
    Metric,
};
pub use projected_nn::{projected_knn, ProjectedNnConfig};
pub use vafile::{VaFile, VaQueryStats};
