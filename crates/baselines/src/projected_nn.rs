//! Automated projected nearest-neighbor search, after Hinneburg, Aggarwal &
//! Keim, "What is the nearest neighbor in high dimensional spaces?"
//! (VLDB 2000) — reference \[15\] of the paper.
//!
//! The method derives a *single* discriminating projection from the query's
//! neighborhood and ranks neighbors inside it: take the `s` nearest points
//! in the full space, diagonalize their covariance, keep the directions in
//! which the neighborhood is tightest *relative to the whole data*
//! (smallest variance ratio `λᵢ/γᵢ`), and return the k-NN under the
//! projected Euclidean metric. The interactive system of the paper
//! generalizes this to *many* graded projections plus a human separator;
//! this baseline is the fully automated single-projection comparator.

use crate::knn::knn_indices_in_subspace;
use hinn_linalg::{covariance_matrix, jacobi_eigen, variance_along, Subspace};

/// Configuration of the automated projected-NN baseline.
#[derive(Clone, Copy, Debug)]
pub struct ProjectedNnConfig {
    /// Neighborhood size used to derive the projection. Clamped below by
    /// the data dimensionality (the paper's rule: support ≥ d).
    pub support: usize,
    /// Dimensionality of the discriminating projection.
    pub proj_dim: usize,
    /// Neighborhood/projection refinement rounds (≥ 1). As in \[15\] and
    /// Fig. 3 of the paper, the neighborhood and the subspace depend on one
    /// another, so the projection is re-derived from the neighborhood found
    /// inside the previous projection.
    pub refine_iters: usize,
}

impl Default for ProjectedNnConfig {
    fn default() -> Self {
        Self {
            support: 50,
            proj_dim: 4,
            refine_iters: 3,
        }
    }
}

/// The projection derived for a query plus the ranked neighbors inside it.
#[derive(Clone, Debug)]
pub struct ProjectedNnResult {
    /// Indices of the k nearest neighbors under the projected metric.
    pub neighbors: Vec<usize>,
    /// The discriminating subspace that was used.
    pub subspace: Subspace,
    /// Variance ratios `λᵢ/γᵢ` of the chosen directions (ascending).
    pub variance_ratios: Vec<f64>,
}

/// Run the projected-NN baseline: derive the discriminating projection for
/// `query` and return its `k` nearest neighbors inside that projection.
///
/// # Panics
/// Panics if `points` is empty or `proj_dim` is zero or exceeds `d`.
pub fn projected_knn(
    points: &[Vec<f64>],
    query: &[f64],
    k: usize,
    config: &ProjectedNnConfig,
) -> ProjectedNnResult {
    assert!(!points.is_empty(), "projected_knn: empty data");
    let d = points[0].len();
    assert!(
        config.proj_dim >= 1 && config.proj_dim <= d,
        "projected_knn: proj_dim must be in [1, d]"
    );
    assert!(
        config.refine_iters >= 1,
        "projected_knn: refine_iters must be ≥ 1"
    );
    let support = config.support.max(d).min(points.len());

    // The neighborhood and the projection depend on each other: start from
    // the full-space neighborhood and refine (cf. Fig. 3 of the paper).
    let mut subspace = Subspace::full(d);
    let mut variance_ratios = Vec::new();
    for _ in 0..config.refine_iters {
        // Step 1: the query's neighborhood inside the current subspace.
        let hood = knn_indices_in_subspace(points, query, support, &subspace);
        let hood_pts: Vec<Vec<f64>> = hood.iter().map(|&i| points[i].clone()).collect();

        // Step 2: principal components of the neighborhood (in ambient
        // coordinates — the covariance of the points themselves).
        let cov = covariance_matrix(&hood_pts);
        let eig = jacobi_eigen(&cov);

        // Step 3: variance ratio λᵢ/γᵢ per eigenvector; keep the smallest.
        let mut scored: Vec<(f64, usize)> = (0..d)
            .map(|i| {
                let dir = eig.vector(i);
                let gamma = variance_along(points, &dir).max(1e-12);
                (eig.values[i].max(0.0) / gamma, i)
            })
            .collect();
        // Variance ratios are non-negative; `total_cmp` keeps the order
        // total (NaN last) if an eigenvalue is ever poisoned.
        scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let chosen: Vec<Vec<f64>> = scored[..config.proj_dim]
            .iter()
            .map(|&(_, i)| eig.vector(i))
            .collect();
        variance_ratios = scored[..config.proj_dim].iter().map(|&(r, _)| r).collect();
        subspace = Subspace::from_vectors(d, &chosen);
    }

    // Step 4: rank inside the final projection.
    let neighbors = knn_indices_in_subspace(points, query, k, &subspace);
    ProjectedNnResult {
        neighbors,
        subspace,
        variance_ratios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{knn_indices, Metric};

    /// Data with a 2-of-6-dimensional cluster around the origin: cluster
    /// members are tight in dims 0,1 and uniform elsewhere; background is
    /// uniform everywhere.
    fn planted(n_cluster: usize, n_noise: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut pts = Vec::new();
        let mut members = Vec::new();
        for i in 0..n_cluster {
            let mut p: Vec<f64> = (0..6).map(|_| unif() * 100.0).collect();
            p[0] = 50.0 + (unif() - 0.5) * 2.0;
            p[1] = 50.0 + (unif() - 0.5) * 2.0;
            pts.push(p);
            members.push(i);
        }
        for _ in 0..n_noise {
            pts.push((0..6).map(|_| unif() * 100.0).collect());
        }
        (pts, members)
    }

    #[test]
    fn finds_cluster_members_that_full_l2_misses() {
        let (pts, members) = planted(40, 400);
        let query = vec![50.0, 50.0, 50.0, 50.0, 50.0, 50.0];
        let cfg = ProjectedNnConfig {
            support: 40,
            proj_dim: 2,
            refine_iters: 3,
        };
        let res = projected_knn(&pts, &query, 30, &cfg);
        let hits = res.neighbors.iter().filter(|i| members.contains(i)).count();
        let l2_hits = knn_indices(&pts, &query, 30, Metric::L2)
            .iter()
            .filter(|i| members.contains(i))
            .count();
        assert!(
            hits > l2_hits,
            "projected NN ({hits}/30) should beat full-dim L2 ({l2_hits}/30)"
        );
        assert!(
            hits >= 20,
            "projected NN should recover the planted cluster, hit {hits}/30"
        );
    }

    #[test]
    fn chosen_directions_have_small_ratios() {
        let (pts, _) = planted(40, 400);
        let query = vec![50.0; 6];
        let res = projected_knn(&pts, &query, 10, &ProjectedNnConfig::default());
        // Ratios ascend and are genuinely discriminative (≪ 1).
        for w in res.variance_ratios.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        assert!(res.variance_ratios[0] < 0.5);
    }

    #[test]
    fn subspace_dimension_matches_config() {
        let (pts, _) = planted(30, 100);
        let cfg = ProjectedNnConfig {
            support: 30,
            proj_dim: 3,
            refine_iters: 2,
        };
        let res = projected_knn(&pts, &[50.0; 6], 5, &cfg);
        assert_eq!(res.subspace.dim(), 3);
        assert_eq!(res.neighbors.len(), 5);
    }

    #[test]
    #[should_panic(expected = "proj_dim")]
    fn excessive_proj_dim_panics() {
        let (pts, _) = planted(10, 10);
        projected_knn(
            &pts,
            &[0.0; 6],
            3,
            &ProjectedNnConfig {
                support: 10,
                proj_dim: 7,
                refine_iters: 1,
            },
        );
    }
}
