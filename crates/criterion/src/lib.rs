//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This build environment has no crates-registry access, so the workspace
//! ships a small wall-clock harness with criterion's surface syntax:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs
//! `sample_size` timed samples; the report prints the minimum, median, and
//! mean per-iteration time. No statistical analysis, plots, or baselines —
//! numbers are for comparing variants within one run (e.g. the serial vs
//! parallel groups in `crates/bench/benches/`).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&format!("{}/{}", self.name, id.0), self.sample_size, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Close the group (no-op in the stub; criterion parity).
    pub fn finish(self) {}
}

/// A benchmark identifier (`name/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A two-part id: `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function_name}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

/// Passed to the closure under test; call [`Bencher::iter`] with the body.
pub struct Bencher {
    sample_size: usize,
    /// Collected per-iteration times, one per sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `body`: warm-up, then `sample_size` timed samples. Each
    /// sample runs the body enough times to amortize timer resolution.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut body: F) {
        // Warm-up and per-sample batch calibration: target ≥ ~1 ms/sample.
        let t0 = Instant::now();
        black_box(body());
        let one = t0.elapsed();
        let batch = if one >= Duration::from_millis(1) {
            1
        } else {
            (Duration::from_millis(1).as_nanos() / one.as_nanos().max(1) + 1) as usize
        };
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {id:<52} (no samples)");
        return;
    }
    b.samples.sort();
    let min = b.samples[0];
    let median = b.samples[b.samples.len() / 2];
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    println!(
        "  {id:<52} min {:>12}   med {:>12}   mean {:>12}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Define a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the given groups, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // `--test`, expecting a fast smoke run — both are fine to run.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("smoke/identity", |b| b.iter(|| black_box(21u64) * 2));
        let mut g = c.benchmark_group("smoke_group");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &x| {
            b.iter(|| x * x)
        });
        g.bench_function(BenchmarkId::new("sq", 9), |b| b.iter(|| 9u64 * 9));
        g.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
