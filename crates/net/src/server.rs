//! The TCP front-end: accept loop, per-connection deadlines, admission →
//! backpressure, shedding, and graceful drain.
//!
//! One thread accepts; each connection gets a worker thread (connections
//! are *bounded*, so the thread count is too — a refused connection gets
//! a typed `overloaded` reply, not a silent queue). Workers run a strict
//! read-dispatch-reply loop over [`crate::frame`] frames; every failure
//! mode maps to a typed reply, a typed close, or a recorded incident:
//!
//! | wire event                      | outcome                                             |
//! |---------------------------------|-----------------------------------------------------|
//! | clean close on a boundary       | worker exits, sessions stay live (warm tier)        |
//! | corrupt frame (checksum)        | `err kind=frame`, connection stays open             |
//! | oversized frame                 | `err kind=frame`, connection closed (misaligned)    |
//! | torn inbound frame              | incident postmortem, connection closed              |
//! | idle past the read deadline     | `net.idle_closed`, connection closed                |
//! | stall mid-frame past deadline   | incident postmortem, `net.stalled_read`, closed     |
//! | unparseable payload             | `err kind=parse` with the typed detail              |
//! | disconnect mid-submit (fault)   | incident + suspend; outcome retained for refetch    |
//!
//! Submits are guarded by the `(major, minor)` cursor
//! (`SessionManager::submit_at`), so at-least-once delivery from a
//! retrying client becomes at-most-once application; a duplicate submit
//! gets the *current* pending view back (resync), and a `Done` outcome is
//! retained in a bounded FIFO so a client that lost the reply can refetch
//! it with `view`.
//!
//! Opens pass three gates in order: the shedding ladder
//! ([`crate::shed`], which degrades before refusing), the per-tenant
//! governor ([`crate::fairness`]), and the manager's own admission bound.
//! Refusals are typed `overloaded` / `quota` replies with deterministic
//! retry hints — backpressure on the wire, not dropped connections.
//!
//! [`ServerHandle::shutdown`] drains gracefully: stop accepting, unblock
//! every worker's read, let in-flight requests complete, flush all hot
//! sessions to warm snapshots (`suspend_all`), and emit the accumulated
//! postmortems to stderr.

use crate::fairness::{AdmitError, TenantGovernor};
use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::proto::{
    error_reply, parse_request, render_reply, DoneSummary, EpochSummary, ErrorKind, ParseError,
    Reply, Request, StatsSummary, ViewSummary, WireError,
};
use crate::shed::{degrade, ShedLevel, ShedPolicy};
use hinn_core::{DatasetHandle, HinnError};
use hinn_serve::{ServeConfig, ServeError, SessionId, SessionManager, Step, ViewRequest};
use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of the TCP front-end around a [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct NetServerConfig {
    /// The session-manager configuration behind the listener.
    pub serve: ServeConfig,
    /// Address to bind (`127.0.0.1:0` by default: loopback, ephemeral
    /// port — read the actual address off the handle).
    pub addr: String,
    /// Maximum concurrent connections; the accept loop refuses past this
    /// with a typed `overloaded` reply (bounded worker threads).
    pub max_connections: usize,
    /// Per-frame payload bound.
    pub max_frame: usize,
    /// Per-read deadline. An idle connection is closed at this deadline;
    /// a read stalling *mid-frame* is recorded as a peer incident.
    pub read_timeout: Duration,
    /// Per-write deadline.
    pub write_timeout: Duration,
    /// Open sessions one tenant may hold.
    pub tenant_quota: usize,
    /// The overload-shedding ladder.
    pub shed: ShedPolicy,
    /// `Done` outcomes retained for refetch after a lost reply.
    pub retain_outcomes: usize,
    /// Base retry hint for refusals, milliseconds.
    pub retry_after_ms: u64,
}

impl NetServerConfig {
    /// Defaults around `serve`: loopback ephemeral port, 64 connections,
    /// 1 MiB frames, 5 s read / 5 s write deadlines, tenant quota 32,
    /// default shed ladder, 256 retained outcomes, 25 ms retry hint.
    pub fn new(serve: ServeConfig) -> Self {
        Self {
            serve,
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            tenant_quota: 32,
            shed: ShedPolicy::default(),
            retain_outcomes: 256,
            retry_after_ms: 25,
        }
    }

    /// Bound concurrent connections.
    pub fn with_max_connections(mut self, n: usize) -> Self {
        self.max_connections = n.max(1);
        self
    }

    /// Set both socket deadlines.
    pub fn with_deadlines(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    /// Bound per-tenant open sessions.
    pub fn with_tenant_quota(mut self, n: usize) -> Self {
        self.tenant_quota = n.max(1);
        self
    }

    /// Replace the shedding ladder.
    pub fn with_shed(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    /// Bound the retained-outcome FIFO.
    pub fn with_retained_outcomes(mut self, n: usize) -> Self {
        self.retain_outcomes = n;
        self
    }
}

/// What a graceful drain accomplished.
#[derive(Clone, Copy, Debug)]
pub struct DrainReport {
    /// Hot sessions flushed to warm snapshots.
    pub flushed: usize,
    /// Postmortems emitted to stderr during the drain.
    pub postmortems: usize,
}

/// Retained `Done` summaries: bounded FIFO keyed by session id.
struct OutcomeStore {
    map: HashMap<u64, DoneSummary>,
    order: VecDeque<u64>,
    cap: usize,
}

impl OutcomeStore {
    fn insert(&mut self, done: DoneSummary) {
        if self.cap == 0 {
            return;
        }
        if self.map.insert(done.session, done.clone()).is_none() {
            self.order.push_back(done.session);
            while self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn get(&self, session: u64) -> Option<DoneSummary> {
        self.map.get(&session).cloned()
    }

    fn remove(&mut self, session: u64) {
        if self.map.remove(&session).is_some() {
            self.order.retain(|&s| s != session);
        }
    }
}

/// State shared by the accept loop, every worker, and the handle.
struct Shared {
    manager: SessionManager,
    governor: TenantGovernor,
    config: NetServerConfig,
    stop: AtomicBool,
    conns: AtomicUsize,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Worker stream clones, so shutdown can unblock their reads.
    streams: Mutex<Vec<TcpStream>>,
    outcomes: Mutex<OutcomeStore>,
    /// session → tenant, for releasing the governor reservation when the
    /// session ends (done, closed, retired, evicted, failed).
    tenants: Mutex<HashMap<u64, String>>,
    /// session → shed level it was opened under (advertised on views).
    shed_of: Mutex<HashMap<u64, u8>>,
}

impl Shared {
    fn release_session(&self, session: u64) {
        let tenant = self
            .tenants
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&session);
        if let Some(tenant) = tenant {
            self.governor.release(&tenant);
        }
        self.shed_of
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&session);
    }

    fn shed_level_of(&self, session: u64) -> u8 {
        self.shed_of
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&session)
            .copied()
            .unwrap_or(0)
    }

    fn current_level(&self) -> ShedLevel {
        self.config
            .shed
            .level_for(self.manager.live_sessions(), self.config.serve.max_sessions)
    }
}

/// The front-end constructor. [`NetServer::bind`] returns a running
/// [`ServerHandle`].
pub struct NetServer;

impl NetServer {
    /// Bind the listener over the epoch-versioned dataset behind `data`,
    /// start the accept loop, and return the handle. The wire's `ingest`
    /// / `delete` / `epoch` / `rebase` verbs operate on this handle; open
    /// sessions answer from the epoch they pinned at open.
    ///
    /// # Errors
    /// [`HinnError`] when the serve configuration is invalid; the bind
    /// failure is wrapped the same way (`phase: "net.bind"`).
    pub fn bind(config: NetServerConfig, data: DatasetHandle) -> Result<ServerHandle, HinnError> {
        let manager = SessionManager::new(config.serve.clone(), data)?;
        let listener = TcpListener::bind(&config.addr).map_err(|e| HinnError::InvalidInput {
            phase: "net.bind",
            message: format!("cannot bind {}: {e}", config.addr),
        })?;
        let addr = listener.local_addr().map_err(|e| HinnError::InvalidInput {
            phase: "net.bind",
            message: format!("no local addr: {e}"),
        })?;
        let governor = TenantGovernor::new(
            config.serve.max_sessions,
            config.tenant_quota,
            // Fairness from the same occupancy the shed ladder first
            // reacts at: scarcity and degradation begin together.
            ((config.serve.max_sessions as f64) * config.shed.l1_at.min(1.0)) as usize,
        );
        let retain = config.retain_outcomes;
        let shared = Arc::new(Shared {
            manager,
            governor,
            config,
            stop: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            workers: Mutex::new(Vec::new()),
            streams: Mutex::new(Vec::new()),
            outcomes: Mutex::new(OutcomeStore {
                map: HashMap::new(),
                order: VecDeque::new(),
                cap: retain,
            }),
            tenants: Mutex::new(HashMap::new()),
            shed_of: Mutex::new(HashMap::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("hinn-net-accept".to_string())
            .spawn(move || accept_loop(&accept_shared, &listener))
            .map_err(|e| HinnError::InvalidInput {
                phase: "net.bind",
                message: format!("cannot spawn accept thread: {e}"),
            })?;
        Ok(ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// [`bind`](Self::bind) over a plain point set — the pre-epoch shim.
    /// Builds a single-epoch [`DatasetHandle`], so data validation
    /// (finite values, uniform dimensionality) happens here.
    ///
    /// # Errors
    /// As [`bind`](Self::bind), plus [`HinnError::InvalidInput`] when
    /// `points` is data a [`DatasetHandle`] refuses.
    #[deprecated(
        since = "0.1.0",
        note = "build a DatasetHandle and use NetServer::bind"
    )]
    pub fn bind_points(
        config: NetServerConfig,
        points: Arc<Vec<Vec<f64>>>,
    ) -> Result<ServerHandle, HinnError> {
        let data = DatasetHandle::new(&points).map_err(|e| HinnError::InvalidInput {
            phase: "net.bind",
            message: format!("NetServer::bind_points: {e}"),
        })?;
        Self::bind(config, data)
    }
}

/// A running front-end. Dropping the handle without
/// [`shutdown`](Self::shutdown) leaves the threads running detached;
/// call `shutdown` for the graceful drain.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The session manager behind the listener (tests inspect tiers and
    /// postmortems through this).
    pub fn manager(&self) -> &SessionManager {
        &self.shared.manager
    }

    /// The shed level a new open would currently be admitted under.
    pub fn current_shed_level(&self) -> ShedLevel {
        self.shared.current_level()
    }

    /// Graceful drain: stop accepting, unblock and join every worker
    /// (in-flight requests complete — a worker only exits between
    /// frames), flush all hot sessions to warm snapshots, and emit the
    /// accumulated postmortems to stderr as one-line JSON.
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Unblock every worker's pending read; writes still complete.
        for stream in self
            .shared
            .streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let workers = std::mem::take(
            &mut *self
                .shared
                .workers
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        for w in workers {
            let _ = w.join();
        }
        let flushed = self.shared.manager.suspend_all();
        hinn_obs::counter("net.drain.suspended", flushed as u64);
        let postmortems = self.shared.manager.take_postmortems();
        for p in &postmortems {
            eprintln!("{}", p.to_json());
        }
        DrainReport {
            flushed,
            postmortems: postmortems.len(),
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if shared.conns.load(Ordering::SeqCst) >= shared.config.max_connections {
            // Bounded accept: typed refusal, not a silent queue.
            hinn_obs::counter("net.conn.refused", 1);
            refuse_connection(shared, stream);
            continue;
        }
        hinn_obs::counter("net.conn.accepted", 1);
        shared.conns.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            shared
                .streams
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(clone);
        }
        let worker_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("hinn-net-worker".to_string())
            .spawn(move || {
                worker(&worker_shared, stream);
                worker_shared.conns.fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(handle) => shared
                .workers
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(handle),
            Err(_) => {
                // Spawn failure: undo the slot; the stream was moved into
                // the failed closure and is gone, which the client sees as
                // a transport error — a typed outcome on its side.
                shared.conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn refuse_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let reply = error_reply(
        ErrorKind::Overloaded,
        Some(shared.config.retry_after_ms),
        format!(
            "connection limit reached ({} connections)",
            shared.config.max_connections
        ),
    );
    let _ = write_frame(&mut stream, &render_reply(&reply), shared.config.max_frame);
}

/// What the worker does after sending (or deliberately not sending) the
/// reply for one request.
enum After {
    /// Keep serving this connection.
    Continue,
    /// Close it (misaligned stream, injected disconnect, drain).
    Close,
    /// Close *without* replying (the injected mid-submit disconnect).
    CloseSilently,
}

fn worker(shared: &Arc<Shared>, mut stream: TcpStream) {
    let peer = stream.peer_addr().ok();
    serve_connection(shared, &mut stream);
    // The accept loop registered a clone of this stream so a drain can
    // unblock the read; dropping only our copy would leave the socket
    // half-open (the peer never sees the close) and the registry growing
    // without bound. Shut the socket down for real and deregister.
    let _ = stream.shutdown(Shutdown::Both);
    if let Some(peer) = peer {
        shared
            .streams
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|s| s.peer_addr().ok() != Some(peer));
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut last_session: Option<u64> = None;
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // The `net.stall` fault turns this read into a deadline expiry —
        // the deterministic stand-in for a peer that stops sending
        // mid-frame.
        let read = if hinn_fault::point("net.stall") {
            Err(FrameError::TimedOut { started: true })
        } else {
            read_frame(stream, shared.config.max_frame)
        };
        let payload = match read {
            Ok(p) => p,
            Err(FrameError::Closed) => return,
            Err(FrameError::TimedOut { started: false }) => {
                hinn_obs::counter("net.idle_closed", 1);
                return;
            }
            Err(FrameError::TimedOut { started: true }) => {
                hinn_obs::counter("net.stalled_read", 1);
                if let Some(id) = last_session {
                    shared.manager.report_incident(
                        SessionId::from_raw(id),
                        "read stalled mid-frame past the socket deadline",
                    );
                }
                return;
            }
            Err(FrameError::Truncated { .. }) => {
                hinn_obs::counter("net.torn_frame", 1);
                if let Some(id) = last_session {
                    shared
                        .manager
                        .report_incident(SessionId::from_raw(id), "inbound frame torn mid-stream");
                }
                return;
            }
            Err(e @ FrameError::Corrupt { .. }) => {
                // The payload was fully consumed, so the stream is still
                // frame-aligned: refuse this message, keep the connection.
                hinn_obs::counter("net.frame_error", 1);
                let reply = error_reply(ErrorKind::Frame, None, e.to_string());
                if send(shared, stream, &reply).is_err() {
                    return;
                }
                continue;
            }
            Err(e @ FrameError::Oversized { .. }) => {
                // The oversized payload was never consumed: the stream is
                // misaligned and must close after the typed refusal.
                hinn_obs::counter("net.frame_error", 1);
                let reply = error_reply(ErrorKind::Frame, None, e.to_string());
                let _ = send(shared, stream, &reply);
                return;
            }
            Err(_) => return,
        };
        hinn_obs::counter("net.req", 1);
        let (reply, after) = match parse_request(&payload) {
            Ok(req) => {
                if let Some(id) = req_session(&req) {
                    last_session = Some(id);
                }
                dispatch(shared, req)
            }
            Err(e) => {
                hinn_obs::counter("net.parse_error", 1);
                (parse_error_reply(&e), After::Continue)
            }
        };
        match after {
            After::CloseSilently => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            After::Continue | After::Close => {
                if send(shared, stream, &reply).is_err() {
                    return;
                }
                if matches!(after, After::Close) {
                    return;
                }
            }
        }
    }
}

fn send(shared: &Arc<Shared>, stream: &mut TcpStream, reply: &Reply) -> Result<(), FrameError> {
    write_frame(stream, &render_reply(reply), shared.config.max_frame)
}

fn req_session(req: &Request) -> Option<u64> {
    match req {
        Request::Submit { session, .. }
        | Request::View { session }
        | Request::Suspend { session }
        | Request::Close { session }
        | Request::Retire { session }
        | Request::Rebase { session } => Some(*session),
        Request::Open { .. }
        | Request::Ingest { .. }
        | Request::Delete { .. }
        | Request::Epoch
        | Request::Stats
        | Request::Ping => None,
    }
}

fn parse_error_reply(e: &ParseError) -> Reply {
    error_reply(ErrorKind::Parse, None, e.to_string())
}

fn dispatch(shared: &Arc<Shared>, req: Request) -> (Reply, After) {
    match req {
        Request::Ping => (Reply::Pong, After::Continue),
        Request::Stats => (stats(shared), After::Continue),
        Request::Open { tenant, query } => open(shared, &tenant, &query),
        Request::Submit {
            session,
            major,
            minor,
            response,
        } => submit(shared, session, (major, minor), response),
        Request::View { session } => (view(shared, session), After::Continue),
        Request::Suspend { session } => (suspend(shared, session), After::Continue),
        Request::Close { session } => (close(shared, session), After::Continue),
        Request::Retire { session } => (retire(shared, session), After::Continue),
        Request::Ingest { rows, .. } => (ingest(shared, &rows), After::Continue),
        Request::Delete { ids, .. } => (delete(shared, &ids), After::Continue),
        Request::Epoch => (epoch(shared), After::Continue),
        Request::Rebase { session } => (rebase(shared, session), After::Continue),
    }
}

fn stats(shared: &Arc<Shared>) -> Reply {
    Reply::Stats(StatsSummary {
        live: shared.manager.live_sessions(),
        hot: shared.manager.hot_len(),
        warm: shared.manager.warm_len(),
        shed: shared.current_level().as_u8(),
    })
}

fn view_summary(shared: &Arc<Shared>, session: u64, request: &ViewRequest) -> ViewSummary {
    let ctx = request.context();
    let profile = request.profile();
    ViewSummary {
        session,
        major: ctx.major,
        minor: ctx.minor,
        alive: ctx.original_ids.len(),
        total: ctx.total_n,
        shed: shared.shed_level_of(session),
        query_density: profile.query_density(),
        max_density: profile.max_density(),
        // Every view advertises the epoch the session's answers are
        // relative to — a live session's pin, not the handle's current.
        epoch: shared
            .manager
            .session_epoch(SessionId::from_raw(session))
            .ok()
            .map(|(num, _)| num),
    }
}

/// Wrap a finished step: retain the outcome for refetch, release the
/// tenant reservation, build the reply.
fn finish(shared: &Arc<Shared>, session: u64, outcome: &hinn_serve::SearchOutcome) -> Reply {
    let done = DoneSummary {
        session,
        majors: outcome.majors_run,
        support: outcome.effective_support,
        degraded: outcome.degradations().len(),
        neighbors: outcome.neighbors.clone(),
        probabilities: outcome
            .neighbors
            .iter()
            .map(|&i| outcome.probabilities[i])
            .collect(),
    };
    shared
        .outcomes
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(done.clone());
    shared.release_session(session);
    Reply::Done(done)
}

fn open(shared: &Arc<Shared>, tenant: &str, query: &[f64]) -> (Reply, After) {
    if shared.stop.load(Ordering::SeqCst) {
        return (
            error_reply(ErrorKind::Draining, None, "server is draining"),
            After::Close,
        );
    }
    let level = shared.current_level();
    if level == ShedLevel::Refuse {
        hinn_obs::counter("net.refused.overload", 1);
        return (
            error_reply(
                ErrorKind::Overloaded,
                Some(shared.config.retry_after_ms),
                format!(
                    "shed ladder refused at {}/{} open sessions",
                    shared.manager.live_sessions(),
                    shared.config.serve.max_sessions
                ),
            ),
            After::Continue,
        );
    }
    if let Err(e) = shared.governor.try_admit(tenant) {
        return (governor_refusal(shared, tenant, &e), After::Continue);
    }
    let opened = if level.is_degraded() {
        shared
            .manager
            .open_with(query, degrade(&shared.config.serve.search, level))
    } else {
        shared.manager.open(query)
    };
    let (id, step) = match opened {
        Ok(ok) => ok,
        Err(e) => {
            shared.governor.release(tenant);
            return (serve_error_reply(shared, None, &e), After::Continue);
        }
    };
    let raw = id.raw();
    shared
        .tenants
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(raw, tenant.to_string());
    if level.is_degraded() {
        match level {
            ShedLevel::L1 => hinn_obs::counter("net.shed.l1", 1),
            ShedLevel::L2 => hinn_obs::counter("net.shed.l2", 1),
            ShedLevel::L3 => hinn_obs::counter("net.shed.l3", 1),
            ShedLevel::L0 | ShedLevel::Refuse => {}
        }
        shared
            .shed_of
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(raw, level.as_u8());
        shared
            .manager
            .note_load_shed(id, level.as_u8(), "opened degraded by the net shed ladder");
    }
    match step {
        Step::NeedResponse(request) => (
            Reply::View(view_summary(shared, raw, &request)),
            After::Continue,
        ),
        Step::Done(outcome) => (finish(shared, raw, &outcome), After::Continue),
    }
}

fn governor_refusal(shared: &Arc<Shared>, tenant: &str, e: &AdmitError) -> Reply {
    let hint = shared.config.retry_after_ms;
    match e {
        AdmitError::QuotaExceeded { held, quota } => {
            hinn_obs::counter("net.refused.quota", 1);
            error_reply(
                ErrorKind::QuotaExceeded,
                Some(hint),
                format!("tenant {tenant} holds {held} of {quota} sessions"),
            )
        }
        AdmitError::Full { live, max } => {
            hinn_obs::counter("net.refused.overload", 1);
            error_reply(
                ErrorKind::Overloaded,
                Some(hint),
                format!("{live} open sessions (max {max})"),
            )
        }
        AdmitError::Deferred { held, min_held } => {
            hinn_obs::counter("net.refused.fairness", 1);
            error_reply(
                ErrorKind::Overloaded,
                Some(hint),
                format!(
                    "fairness deferral: tenant {tenant} holds {held}, another active tenant \
                     holds {min_held}"
                ),
            )
        }
    }
}

fn submit(
    shared: &Arc<Shared>,
    session: u64,
    cursor: (usize, usize),
    response: hinn_serve::UserResponse,
) -> (Reply, After) {
    let id = SessionId::from_raw(session);
    match shared.manager.submit_at(id, cursor, response) {
        Ok(step) => {
            let (reply, done) = match step {
                Step::NeedResponse(request) => {
                    (Reply::View(view_summary(shared, session, &request)), false)
                }
                Step::Done(outcome) => (finish(shared, session, &outcome), true),
            };
            // The `net.disconnect` fault fires *after* the compute and
            // *before* the reply: the canonical mid-submit disconnect. The
            // response was applied exactly once (cursor guard); the
            // outcome, if any, is already retained for refetch; a live
            // session is flushed to the warm tier so nothing is lost.
            if hinn_fault::point("net.disconnect") {
                hinn_obs::counter("net.disconnect_mid_submit", 1);
                shared
                    .manager
                    .report_incident(id, "client disconnected mid-submit (injected)");
                if !done {
                    let _ = shared.manager.suspend(id);
                }
                return (reply, After::CloseSilently);
            }
            (reply, After::Continue)
        }
        Err(ServeError::CursorMismatch { .. }) => {
            // Duplicate or out-of-sync delivery: nothing was applied.
            // Resync the client by replying with the *current* pending
            // view instead of an error.
            (view(shared, session), After::Continue)
        }
        Err(e) => (
            serve_error_reply(shared, Some(session), &e),
            After::Continue,
        ),
    }
}

fn view(shared: &Arc<Shared>, session: u64) -> Reply {
    let id = SessionId::from_raw(session);
    match shared.manager.pending_view(id) {
        Ok(request) => Reply::View(view_summary(shared, session, &request)),
        Err(e @ ServeError::SessionFinished(_)) => {
            // A finished session with a retained outcome answers `view`
            // with the outcome again — the refetch path after a lost
            // `done` reply.
            let retained = shared
                .outcomes
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(session);
            match retained {
                Some(done) => Reply::Done(done),
                None => serve_error_reply(shared, Some(session), &e),
            }
        }
        Err(e) => serve_error_reply(shared, Some(session), &e),
    }
}

fn suspend(shared: &Arc<Shared>, session: u64) -> Reply {
    match shared.manager.suspend(SessionId::from_raw(session)) {
        Ok(()) => Reply::Suspended { session },
        Err(e) => serve_error_reply(shared, Some(session), &e),
    }
}

fn close(shared: &Arc<Shared>, session: u64) -> Reply {
    match shared.manager.close(SessionId::from_raw(session)) {
        Ok(()) => {
            shared.release_session(session);
            shared
                .outcomes
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove(session);
            Reply::Closed { session }
        }
        Err(e) => serve_error_reply(shared, Some(session), &e),
    }
}

fn retire(shared: &Arc<Shared>, session: u64) -> Reply {
    match shared.manager.retire(SessionId::from_raw(session)) {
        Ok(()) => {
            shared.release_session(session);
            Reply::Retired { session }
        }
        Err(e) => serve_error_reply(shared, Some(session), &e),
    }
}

fn ingest(shared: &Arc<Shared>, rows: &[Vec<f64>]) -> Reply {
    match shared.manager.ingest(rows) {
        Ok((epoch, fp)) => Reply::Epoch(EpochSummary {
            epoch,
            fingerprint: fp.0,
        }),
        Err(e) => serve_error_reply(shared, None, &e),
    }
}

fn delete(shared: &Arc<Shared>, ids: &[usize]) -> Reply {
    match shared.manager.delete(ids) {
        Ok((epoch, fp)) => Reply::Epoch(EpochSummary {
            epoch,
            fingerprint: fp.0,
        }),
        Err(e) => serve_error_reply(shared, None, &e),
    }
}

fn epoch(shared: &Arc<Shared>) -> Reply {
    let (epoch, fp) = shared.manager.current_epoch();
    Reply::Epoch(EpochSummary {
        epoch,
        fingerprint: fp.0,
    })
}

fn rebase(shared: &Arc<Shared>, session: u64) -> Reply {
    let id = SessionId::from_raw(session);
    match shared.manager.rebase(id) {
        Ok(Step::NeedResponse(request)) => Reply::View(view_summary(shared, session, &request)),
        Ok(Step::Done(outcome)) => finish(shared, session, &outcome),
        Err(e) => serve_error_reply(shared, Some(session), &e),
    }
}

/// Map a [`ServeError`] to its typed wire reply, releasing the tenant
/// reservation when the error means the session is gone for good.
fn serve_error_reply(shared: &Arc<Shared>, session: Option<u64>, e: &ServeError) -> Reply {
    let hint = shared.config.retry_after_ms;
    let (kind, retry) = match e {
        ServeError::AdmissionDenied { .. } => (ErrorKind::Overloaded, Some(hint)),
        ServeError::Overloaded { retry_after_ms, .. } => {
            (ErrorKind::Overloaded, Some(*retry_after_ms))
        }
        ServeError::UnknownSession(_) => (ErrorKind::UnknownSession, None),
        ServeError::SessionEvicted(_) => (ErrorKind::SessionEvicted, None),
        ServeError::SessionFinished(_) => (ErrorKind::SessionFinished, None),
        ServeError::Engine(HinnError::EpochMismatch { .. }) => (ErrorKind::EpochMismatch, None),
        ServeError::Engine(_) => (ErrorKind::Engine, None),
        ServeError::CursorMismatch { .. } => (ErrorKind::Internal, None),
    };
    // Evicted and engine-failed sessions are spent: free their tenant
    // slot so the refusals self-heal. An epoch mismatch is the exception:
    // the session's state is intact (nothing was applied) and `rebase`
    // is its documented way forward.
    let mismatch = matches!(kind, ErrorKind::EpochMismatch);
    if !mismatch
        && matches!(
            e,
            ServeError::SessionEvicted(_) | ServeError::Engine(_) | ServeError::SessionFinished(_)
        )
    {
        if let Some(session) = session {
            shared.release_session(session);
        }
    }
    // Every refusal is stamped with the dataset's current epoch, so an
    // epoch-aware client can reason about staleness without another
    // round trip.
    Reply::Error(WireError {
        kind,
        retry_after_ms: retry,
        epoch: Some(shared.manager.current_epoch().0),
        message: e.to_string(),
    })
}
