//! A blocking client with bounded, deterministic retry.
//!
//! [`NetClient`] owns one connection and reconnects lazily after any
//! transport failure. [`NetClient::call_with_retry`] layers a *bounded*
//! retry loop on top:
//!
//! * an `overloaded` / `quota` / `draining` refusal sleeps for the
//!   server's `retry_after_ms` hint (or the policy's deterministic
//!   attempt-indexed backoff) and retries;
//! * a transport error (torn frame, disconnect, timeout) drops the
//!   connection, reconnects, and retries the *same* request — safe even
//!   for submits, because the `(major, minor)` cursor guard makes a
//!   duplicate delivery a no-op resync (the server replies with the
//!   current view) instead of a double application;
//! * everything else (parse refusals, unknown session, engine errors)
//!   returns immediately — retrying can't help.
//!
//! Retries are *bounded* ([`RetryPolicy::max_attempts`]); exhaustion is
//! the typed [`ClientError::RetriesExhausted`], never a hang.
//!
//! [`NetClient::run_session`] drives a whole scripted session — the
//! replay half of the wire-vs-in-process bit-identity tests.

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::proto::{
    parse_reply, render_request, DoneSummary, EpochSummary, ErrorKind, ParseError, Reply, Request,
    WireError,
};
use hinn_user::UserResponse;
use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Bounded-retry policy with deterministic backoff.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts per call (first try included). Must be ≥ 1.
    pub max_attempts: usize,
    /// Backoff for attempt `i` (0-based) when the server gave no hint:
    /// `base_backoff_ms × (i + 1)` — linear, deterministic, no jitter.
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_ms: 10,
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, attempt: usize, hint: Option<u64>) -> Duration {
        Duration::from_millis(hint.unwrap_or(self.base_backoff_ms * (attempt as u64 + 1)))
    }
}

/// Everything a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write).
    Io(io::Error),
    /// Framing failure (torn/corrupt/oversized reply).
    Frame(FrameError),
    /// The reply did not parse.
    Parse(ParseError),
    /// The server refused with a typed error.
    Server(WireError),
    /// The bounded retry budget ran out; `last` is the final failure.
    RetriesExhausted {
        /// Attempts made.
        attempts: usize,
        /// The last failure, rendered.
        last: String,
    },
    /// The server answered with a reply that makes no sense for the
    /// request (protocol bug or version skew).
    UnexpectedReply(String),
    /// `run_session` ran out of scripted responses before `done`.
    ScriptExhausted {
        /// Views answered before the script ran dry.
        answered: usize,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Frame(e) => write!(f, "frame error: {e}"),
            Self::Parse(e) => write!(f, "reply parse error: {e}"),
            Self::Server(e) => write!(f, "server refusal: {e}"),
            Self::RetriesExhausted { attempts, last } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempts; last: {last}"
                )
            }
            Self::UnexpectedReply(r) => write!(f, "unexpected reply: {r}"),
            Self::ScriptExhausted { answered } => {
                write!(f, "response script ran dry after {answered} views")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection to a `hinn-net` server.
pub struct NetClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    read_timeout: Duration,
    write_timeout: Duration,
    max_frame: usize,
    retry: RetryPolicy,
}

impl NetClient {
    /// A client for `addr` with 5 s deadlines and the default retry
    /// policy. Connects lazily on the first call.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            stream: None,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_frame: DEFAULT_MAX_FRAME,
            retry: RetryPolicy::default(),
        }
    }

    /// Replace the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Set both socket deadlines.
    pub fn with_deadlines(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = read;
        self.write_timeout = write;
        self
    }

    fn connect(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.stream.is_none() {
            let stream = TcpStream::connect(self.addr).map_err(ClientError::Io)?;
            stream
                .set_read_timeout(Some(self.read_timeout))
                .map_err(ClientError::Io)?;
            stream
                .set_write_timeout(Some(self.write_timeout))
                .map_err(ClientError::Io)?;
            self.stream = Some(stream);
        }
        match self.stream.as_mut() {
            Some(s) => Ok(s),
            // Unreachable: just inserted above. Kept typed for the lint
            // wall rather than unwrapping.
            None => Err(ClientError::Io(io::Error::other("no stream"))),
        }
    }

    /// Drop the connection (the next call reconnects).
    pub fn disconnect(&mut self) {
        self.stream = None;
    }

    /// One round trip, no retry. Any transport/frame failure drops the
    /// connection so the next call starts clean.
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Frame`] on transport,
    /// [`ClientError::Parse`] on an unreadable reply. A typed server
    /// refusal is returned as `Ok(Reply::Error(_))` — refusals are
    /// protocol, not transport.
    pub fn call(&mut self, req: &Request) -> Result<Reply, ClientError> {
        let max_frame = self.max_frame;
        let payload = render_request(req);
        let stream = self.connect()?;
        if let Err(e) = write_frame(stream, &payload, max_frame) {
            self.stream = None;
            return Err(ClientError::Frame(e));
        }
        match read_frame(stream, max_frame) {
            Ok(bytes) => parse_reply(&bytes).map_err(ClientError::Parse),
            Err(e) => {
                self.stream = None;
                Err(ClientError::Frame(e))
            }
        }
    }

    /// [`call`](Self::call) under the bounded retry policy (see module
    /// docs for which failures retry).
    ///
    /// # Errors
    /// [`ClientError::Server`] for non-retryable refusals;
    /// [`ClientError::RetriesExhausted`] when the budget runs out.
    pub fn call_with_retry(&mut self, req: &Request) -> Result<Reply, ClientError> {
        let attempts = self.retry.max_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            match self.call(req) {
                Ok(Reply::Error(e)) if retryable(e.kind) => {
                    let backoff = self.retry.backoff(attempt, e.retry_after_ms);
                    last = e.to_string();
                    std::thread::sleep(backoff);
                }
                Ok(Reply::Error(e)) => return Err(ClientError::Server(e)),
                Ok(reply) => return Ok(reply),
                Err(ClientError::Io(e)) => {
                    // Reconnect-and-retry; the submit cursor guard makes
                    // the re-delivery safe.
                    last = e.to_string();
                    std::thread::sleep(self.retry.backoff(attempt, None));
                }
                Err(ClientError::Frame(e)) => {
                    last = e.to_string();
                    std::thread::sleep(self.retry.backoff(attempt, None));
                }
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted { attempts, last })
    }

    /// Drive one whole session: open, then answer each view with the next
    /// scripted response, until `done`. Views are answered *at their
    /// advertised cursor*, so retries and resyncs never double-apply; a
    /// view whose cursor moved past the script position (server resync
    /// after a duplicate) is simply answered with the response at the new
    /// position.
    ///
    /// Returns the outcome summary.
    ///
    /// # Errors
    /// Everything [`call_with_retry`](Self::call_with_retry) reports,
    /// plus [`ClientError::ScriptExhausted`] when the script is shorter
    /// than the session and [`ClientError::UnexpectedReply`] on protocol
    /// nonsense.
    pub fn run_session(
        &mut self,
        tenant: &str,
        query: &[f64],
        script: &[UserResponse],
    ) -> Result<DoneSummary, ClientError> {
        let mut reply = self.call_with_retry(&Request::Open {
            tenant: tenant.to_string(),
            query: query.to_vec(),
        })?;
        let mut answered = 0usize;
        loop {
            match reply {
                Reply::Done(done) => return Ok(done),
                Reply::View(view) => {
                    let Some(response) = script.get(answered) else {
                        return Err(ClientError::ScriptExhausted { answered });
                    };
                    answered += 1;
                    reply = self.call_with_retry(&Request::Submit {
                        session: view.session,
                        major: view.major,
                        minor: view.minor,
                        response: response.clone(),
                    })?;
                }
                Reply::Error(e) => return Err(ClientError::Server(e)),
                other => {
                    return Err(ClientError::UnexpectedReply(format!("{other:?}")));
                }
            }
        }
    }

    /// `view` shorthand: the resync primitive.
    ///
    /// # Errors
    /// As [`call_with_retry`](Self::call_with_retry).
    pub fn view(&mut self, session: u64) -> Result<Reply, ClientError> {
        self.call_with_retry(&Request::View { session })
    }

    /// `ping` shorthand.
    ///
    /// # Errors
    /// As [`call_with_retry`](Self::call_with_retry);
    /// [`ClientError::UnexpectedReply`] if the answer is not `pong`.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call_with_retry(&Request::Ping)? {
            Reply::Pong => Ok(()),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }

    /// Append `rows` to the served dataset; returns the new epoch.
    ///
    /// # Errors
    /// As [`call_with_retry`](Self::call_with_retry);
    /// [`ClientError::UnexpectedReply`] if the answer is not an epoch.
    pub fn ingest(&mut self, tenant: &str, rows: &[Vec<f64>]) -> Result<EpochSummary, ClientError> {
        self.expect_epoch(&Request::Ingest {
            tenant: tenant.to_string(),
            rows: rows.to_vec(),
        })
    }

    /// Tombstone rows by global id; returns the new epoch.
    ///
    /// # Errors
    /// As [`call_with_retry`](Self::call_with_retry);
    /// [`ClientError::UnexpectedReply`] if the answer is not an epoch.
    pub fn delete_rows(
        &mut self,
        tenant: &str,
        ids: &[usize],
    ) -> Result<EpochSummary, ClientError> {
        self.expect_epoch(&Request::Delete {
            tenant: tenant.to_string(),
            ids: ids.to_vec(),
        })
    }

    /// The dataset's current epoch.
    ///
    /// # Errors
    /// As [`call_with_retry`](Self::call_with_retry);
    /// [`ClientError::UnexpectedReply`] if the answer is not an epoch.
    pub fn epoch(&mut self) -> Result<EpochSummary, ClientError> {
        self.expect_epoch(&Request::Epoch)
    }

    /// Explicitly carry a session onto the dataset's current epoch. The
    /// reply is the session's next pending view (or its outcome, if the
    /// remap finished it) — both stamped with the new epoch.
    ///
    /// # Errors
    /// As [`call_with_retry`](Self::call_with_retry).
    pub fn rebase(&mut self, session: u64) -> Result<Reply, ClientError> {
        self.call_with_retry(&Request::Rebase { session })
    }

    fn expect_epoch(&mut self, req: &Request) -> Result<EpochSummary, ClientError> {
        match self.call_with_retry(req)? {
            Reply::Epoch(e) => Ok(e),
            Reply::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::UnexpectedReply(format!("{other:?}"))),
        }
    }
}

fn retryable(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::Overloaded | ErrorKind::QuotaExceeded)
}
