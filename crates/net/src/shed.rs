//! The overload-shedding ladder: degrade before refusing.
//!
//! Refusal is the *last* rung. As session occupancy climbs, the server
//! first admits new sessions under progressively cheaper configurations —
//! a coarser KDE grid, then fewer minor iterations per major, then a
//! shorter major-iteration budget — so that under load every user still
//! gets an answer, just a coarser one, exactly mirroring the engine's own
//! in-session degradation ladder (PR 3). Only past the final threshold do
//! new opens get a typed `overloaded` refusal with a retry hint.
//!
//! The ladder is *deterministic in the occupancy*: the same live-session
//! count always yields the same level and the same degraded
//! [`SearchConfig`], so a degraded session's outcome is reproducible by
//! re-running its transcript under the same level — which is how the soak
//! test pins shed determinism.
//!
//! Every shed decision is observable twice: the view reply carries the
//! session's level (`shed=` field), and the session's black box records a
//! `load_shed` degradation event via `SessionManager::note_load_shed`.

use hinn_core::SearchConfig;

/// How loaded the server is, as rungs of the shedding ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ShedLevel {
    /// Normal service: sessions open under the configured `SearchConfig`.
    L0,
    /// Coarser KDE grid (halved, floored at 16).
    L1,
    /// L1 plus at most 2 minor iterations per major.
    L2,
    /// Quarter grid, 1 minor per major, major budget clamped to 2.
    L3,
    /// Past the last threshold: refuse with `overloaded` + retry hint.
    Refuse,
}

impl ShedLevel {
    /// Wire encoding (the `shed=` field). `Refuse` never reaches a view
    /// reply; it encodes as 4 for completeness.
    pub fn as_u8(self) -> u8 {
        match self {
            Self::L0 => 0,
            Self::L1 => 1,
            Self::L2 => 2,
            Self::L3 => 3,
            Self::Refuse => 4,
        }
    }

    /// Is this a degraded (but still admitting) rung?
    pub fn is_degraded(self) -> bool {
        matches!(self, Self::L1 | Self::L2 | Self::L3)
    }
}

/// Occupancy thresholds for the ladder, as fractions of `max_sessions`.
#[derive(Clone, Copy, Debug)]
pub struct ShedPolicy {
    /// Occupancy fraction at which L1 starts (default 0.50).
    pub l1_at: f64,
    /// Occupancy fraction at which L2 starts (default 0.70).
    pub l2_at: f64,
    /// Occupancy fraction at which L3 starts (default 0.85).
    pub l3_at: f64,
    /// Occupancy fraction at which opens are refused (default 1.0 —
    /// refuse only when genuinely full).
    pub refuse_at: f64,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        Self {
            l1_at: 0.50,
            l2_at: 0.70,
            l3_at: 0.85,
            refuse_at: 1.0,
        }
    }
}

impl ShedPolicy {
    /// A policy that never sheds and refuses only at capacity — for
    /// bit-identity tests where degradation would be a confound.
    pub fn disabled() -> Self {
        Self {
            l1_at: f64::INFINITY,
            l2_at: f64::INFINITY,
            l3_at: f64::INFINITY,
            refuse_at: f64::INFINITY,
        }
    }

    /// The ladder rung for `live` open sessions out of `max`.
    pub fn level_for(&self, live: usize, max: usize) -> ShedLevel {
        if max == 0 {
            return ShedLevel::Refuse;
        }
        let occupancy = live as f64 / max as f64;
        if occupancy >= self.refuse_at {
            ShedLevel::Refuse
        } else if occupancy >= self.l3_at {
            ShedLevel::L3
        } else if occupancy >= self.l2_at {
            ShedLevel::L2
        } else if occupancy >= self.l1_at {
            ShedLevel::L1
        } else {
            ShedLevel::L0
        }
    }
}

/// The degraded configuration a session opens under at `level`. `L0`
/// returns `base` unchanged; every rung keeps the config valid
/// (`try_validate` holds whenever it held for `base`).
pub fn degrade(base: &SearchConfig, level: ShedLevel) -> SearchConfig {
    let mut c = base.clone();
    match level {
        ShedLevel::L0 | ShedLevel::Refuse => {}
        ShedLevel::L1 => {
            c.grid_n = (base.grid_n / 2).max(16);
        }
        ShedLevel::L2 => {
            c.grid_n = (base.grid_n / 2).max(16);
            c.max_minors = Some(cap_minors(base, 2));
        }
        ShedLevel::L3 => {
            c.grid_n = (base.grid_n / 4).max(16);
            c.max_minors = Some(cap_minors(base, 1));
            c.max_major_iterations = base.max_major_iterations.clamp(1, 2);
            c.min_major_iterations = base.min_major_iterations.min(c.max_major_iterations);
        }
    }
    c
}

/// Tighten the minor cap without ever *loosening* a cap the base config
/// already set.
fn cap_minors(base: &SearchConfig, cap: usize) -> usize {
    match base.max_minors {
        Some(existing) => existing.min(cap).max(1),
        None => cap.max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone_in_occupancy() {
        let p = ShedPolicy::default();
        let max = 100;
        let mut prev = ShedLevel::L0;
        for live in 0..=max {
            let level = p.level_for(live, max);
            assert!(level >= prev, "ladder went down at {live}/{max}");
            prev = level;
        }
        assert_eq!(p.level_for(0, max), ShedLevel::L0);
        assert_eq!(p.level_for(49, max), ShedLevel::L0);
        assert_eq!(p.level_for(50, max), ShedLevel::L1);
        assert_eq!(p.level_for(70, max), ShedLevel::L2);
        assert_eq!(p.level_for(85, max), ShedLevel::L3);
        assert_eq!(p.level_for(100, max), ShedLevel::Refuse);
        assert_eq!(p.level_for(5, 0), ShedLevel::Refuse);
    }

    #[test]
    fn every_rung_yields_a_valid_cheaper_config() {
        let base = SearchConfig {
            grid_n: 64,
            ..SearchConfig::default()
        };
        base.try_validate().expect("base valid");
        let mut prev_cost = usize::MAX;
        for level in [ShedLevel::L1, ShedLevel::L2, ShedLevel::L3] {
            let c = degrade(&base, level);
            c.try_validate().expect("degraded config stays valid");
            // A coarse cost proxy: grid cells × minors × majors.
            let minors = c.effective_minors(20);
            let cost = c.grid_n * c.grid_n * minors * c.max_major_iterations;
            assert!(cost < prev_cost, "{level:?} did not get cheaper");
            prev_cost = cost;
            assert!(level.is_degraded());
        }
        let untouched = degrade(&base, ShedLevel::L0);
        assert_eq!(untouched.grid_n, base.grid_n);
        assert_eq!(untouched.max_minors, base.max_minors);
        assert_eq!(untouched.max_major_iterations, base.max_major_iterations);
    }

    #[test]
    fn degrade_never_loosens_an_existing_minor_cap() {
        let base = SearchConfig::default().with_max_minors(1);
        let c = degrade(&base, ShedLevel::L2);
        assert_eq!(c.max_minors, Some(1), "L2's cap of 2 must not loosen 1");
    }

    #[test]
    fn disabled_policy_never_sheds() {
        let p = ShedPolicy::disabled();
        assert_eq!(p.level_for(999, 10), ShedLevel::L0);
        assert_eq!(p.level_for(10, 10), ShedLevel::L0);
    }
}
