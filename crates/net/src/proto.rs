//! The `hinn-session v1` message layer: typed requests and replies as
//! line-oriented text inside one frame.
//!
//! Every frame payload is UTF-8 text in the same versioned envelope the
//! session logs use (`hinn-user`'s recording format): the
//! [`hinn_user::recording::SESSION_WIRE_HEADER`] line, then a verb line,
//! then optional body lines. Submit bodies are literally the recording
//! format's response lines (`discard` | `threshold τ` | `polygon …`), so
//! a recorded session replays over the wire byte-for-byte.
//!
//! ```text
//! hinn-session v1
//! open tenant=alice query=50.0,50.0,49.5
//!
//! hinn-session v1
//! submit session=7 major=0 minor=1
//! threshold 0.25
//!
//! hinn-session v1
//! ok done session=7 majors=2 support=20 degraded=0
//! neighbors 3,5,9
//! probabilities 0.5,0.25,0.125
//! ```
//!
//! Parsing is *total*: every malformed input is a typed [`ParseError`],
//! never a panic and never a silent acceptance (`proto_proptests.rs`
//! hammers truncations, duplicated keys, and byte flips). Forward
//! tolerance matches the file format: `x-` prefixed lines are skipped and
//! unknown `key=value` fields on a verb line are ignored, but a
//! *duplicated* key — the classic smuggling vector — is always refused,
//! and a different major version is refused outright.
//!
//! All floats are rendered with `{:?}` (shortest round-trip form), so a
//! reply parsed back yields bit-identical values — the property the
//! wire-vs-in-process soak pins.

use crate::shed::ShedLevel;
use hinn_user::recording::{response_from_line, response_to_line, SESSION_WIRE_HEADER};
use hinn_user::UserResponse;
use std::fmt;
use std::fmt::Write as _;

/// One client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a session for `query` on behalf of `tenant`.
    Open {
        /// Tenant name (fairness/quota accounting key).
        tenant: String,
        /// The query point.
        query: Vec<f64>,
    },
    /// Submit the response to the pending view at `(major, minor)` — the
    /// cursor makes delivery at-most-once (see
    /// `SessionManager::submit_at`).
    Submit {
        /// Session id.
        session: u64,
        /// Major cursor of the view being answered.
        major: usize,
        /// Minor cursor of the view being answered.
        minor: usize,
        /// The user's response.
        response: UserResponse,
    },
    /// Re-fetch the pending view (or the retained outcome) — the resync
    /// step after a torn reply or reconnect.
    View {
        /// Session id.
        session: u64,
    },
    /// Suspend the session to the warm tier (client going away politely).
    Suspend {
        /// Session id.
        session: u64,
    },
    /// Close the session, dropping all its state.
    Close {
        /// Session id.
        session: u64,
    },
    /// Administratively retire the session (tombstone + `session.retired`).
    Retire {
        /// Session id.
        session: u64,
    },
    /// Append rows to the served dataset, advancing its epoch. Open
    /// sessions keep answering from the epoch they pinned at open.
    Ingest {
        /// Tenant name (accounting / audit key).
        tenant: String,
        /// The rows to append, one body line each.
        rows: Vec<Vec<f64>>,
    },
    /// Tombstone rows by global id, advancing the dataset epoch.
    Delete {
        /// Tenant name (accounting / audit key).
        tenant: String,
        /// Global row ids to tombstone.
        ids: Vec<usize>,
    },
    /// Query the dataset's current epoch.
    Epoch,
    /// Explicitly carry a session onto the dataset's current epoch (the
    /// opt-in escape from `epoch_mismatch`; see
    /// `SessionManager::rebase`).
    Rebase {
        /// Session id.
        session: u64,
    },
    /// Server load snapshot.
    Stats,
    /// Liveness probe.
    Ping,
}

/// The pending-view summary a client renders between submits.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewSummary {
    /// Session id.
    pub session: u64,
    /// Major cursor of the pending view.
    pub major: usize,
    /// Minor cursor of the pending view.
    pub minor: usize,
    /// Points still alive in the session.
    pub alive: usize,
    /// Points in the data set.
    pub total: usize,
    /// Overload-shedding level the session was opened under (0 = none).
    pub shed: u8,
    /// KDE density at the query's grid cell (bit-exact over the wire).
    pub query_density: f64,
    /// Maximum grid density (bit-exact over the wire).
    pub max_density: f64,
    /// The dataset epoch the session is pinned to, when the server speaks
    /// epochs. `None` from pre-epoch servers (the field is absent on the
    /// wire) — optional for forward tolerance in both directions.
    pub epoch: Option<u64>,
}

/// The dataset-epoch summary: the reply to `epoch`, `ingest`, and
/// `delete`.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochSummary {
    /// Epoch number (cumulative row operations).
    pub epoch: u64,
    /// The epoch's chained fingerprint (raw 128-bit value; rendered as
    /// zero-padded hex on the wire).
    pub fingerprint: u128,
}

/// The final outcome summary, bit-exact against the in-process
/// `SearchOutcome` fields it mirrors.
#[derive(Clone, Debug, PartialEq)]
pub struct DoneSummary {
    /// Session id.
    pub session: u64,
    /// Major iterations the session ran.
    pub majors: usize,
    /// Effective support of the answer.
    pub support: usize,
    /// Degradation-ladder rungs the session took (including load-shed).
    pub degraded: usize,
    /// Neighbor ids, best first.
    pub neighbors: Vec<usize>,
    /// Per-neighbor probabilities, aligned with `neighbors`.
    pub probabilities: Vec<f64>,
}

/// Server load snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsSummary {
    /// Open (hot + warm) sessions.
    pub live: usize,
    /// Resident hot engines.
    pub hot: usize,
    /// Warm snapshots.
    pub warm: usize,
    /// Shed level new opens would currently be admitted under.
    pub shed: u8,
}

/// Error kinds a server can put on the wire. Mirrors `ServeError` plus
/// the wire-only kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Load shed / accept queue full / fairness deferral: retry later.
    Overloaded,
    /// Per-tenant quota exhausted.
    QuotaExceeded,
    /// Unknown session id.
    UnknownSession,
    /// Session lost to the warm tier.
    SessionEvicted,
    /// Session already delivered its outcome (and it is no longer
    /// retained).
    SessionFinished,
    /// The session is pinned to a dataset epoch the server no longer
    /// offers for implicit resume; `rebase` is the opt-in escape.
    EpochMismatch,
    /// Engine failure (deadline, invalid input, …).
    Engine,
    /// The request did not parse.
    Parse,
    /// The request frame was damaged.
    Frame,
    /// The server is draining; no new work.
    Draining,
    /// Anything else.
    Internal,
}

impl ErrorKind {
    /// Stable wire token.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Overloaded => "overloaded",
            Self::QuotaExceeded => "quota",
            Self::UnknownSession => "unknown_session",
            Self::SessionEvicted => "evicted",
            Self::SessionFinished => "finished",
            Self::EpochMismatch => "epoch_mismatch",
            Self::Engine => "engine",
            Self::Parse => "parse",
            Self::Frame => "frame",
            Self::Draining => "draining",
            Self::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "overloaded" => Self::Overloaded,
            "quota" => Self::QuotaExceeded,
            "unknown_session" => Self::UnknownSession,
            "evicted" => Self::SessionEvicted,
            "finished" => Self::SessionFinished,
            "epoch_mismatch" => Self::EpochMismatch,
            "engine" => Self::Engine,
            "parse" => Self::Parse,
            "frame" => Self::Frame,
            "draining" => Self::Draining,
            "internal" => Self::Internal,
            _ => return None,
        })
    }
}

/// A typed error reply.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// Deterministic backoff hint, for the retryable kinds.
    pub retry_after_ms: Option<u64>,
    /// The dataset's current epoch at refusal time, when the server
    /// speaks epochs — lets an `epoch_mismatch` client decide whether to
    /// `rebase` without another round trip. Optional on the wire.
    pub epoch: Option<u64>,
    /// Human-readable detail (its own line, so it may contain spaces).
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)?;
        if let Some(ms) = self.retry_after_ms {
            write!(f, " (retry after {ms}ms)")?;
        }
        Ok(())
    }
}

/// One server reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Reply {
    /// The pending view to respond to.
    View(ViewSummary),
    /// The session's outcome.
    Done(DoneSummary),
    /// Suspended to the warm tier.
    Suspended {
        /// Session id.
        session: u64,
    },
    /// Closed; all state dropped.
    Closed {
        /// Session id.
        session: u64,
    },
    /// Retired; tombstoned and counted.
    Retired {
        /// Session id.
        session: u64,
    },
    /// The dataset epoch (answer to `epoch`, `ingest`, and `delete`).
    Epoch(EpochSummary),
    /// Load snapshot.
    Stats(StatsSummary),
    /// Liveness answer.
    Pong,
    /// Typed refusal.
    Error(WireError),
}

/// Every way a `hinn-session v1` message can fail to parse. Total and
/// typed: no input panics, nothing malformed is silently accepted.
#[derive(Clone, Debug, PartialEq)]
pub enum ParseError {
    /// The payload is not UTF-8 text.
    NotText,
    /// The payload has no content lines at all.
    Empty,
    /// The first line is not a `hinn-session` header.
    BadHeader(String),
    /// The header names a major version this parser does not speak.
    UnsupportedVersion(String),
    /// The verb token is not one this protocol defines.
    UnknownVerb(String),
    /// A required `key=value` field is absent.
    MissingField {
        /// The verb whose field is missing.
        verb: String,
        /// The missing key.
        key: String,
    },
    /// A field's value does not parse.
    BadField {
        /// The offending key.
        key: String,
        /// What was wrong with it.
        detail: String,
    },
    /// The same key appeared twice on one line — refused even for keys
    /// this parser ignores, because duplicated keys are how conflicting
    /// interpretations smuggle through forward-tolerant parsers.
    DuplicateKey(String),
    /// A verb that needs a body line (submit's response, done's vectors)
    /// did not get one.
    MissingBody(String),
    /// A body line (response / neighbors / probabilities) is malformed.
    BadBody(String),
    /// A non-extension line appeared where the message should have ended.
    TrailingContent(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotText => write!(f, "payload is not UTF-8 text"),
            Self::Empty => write!(f, "empty message"),
            Self::BadHeader(l) => write!(f, "bad header line {l:?}"),
            Self::UnsupportedVersion(l) => write!(f, "unsupported protocol version {l:?}"),
            Self::UnknownVerb(v) => write!(f, "unknown verb {v:?}"),
            Self::MissingField { verb, key } => {
                write!(f, "verb {verb:?} is missing its {key}= field")
            }
            Self::BadField { key, detail } => write!(f, "bad {key}= field: {detail}"),
            Self::DuplicateKey(k) => write!(f, "duplicated key {k:?}"),
            Self::MissingBody(what) => write!(f, "missing body line: {what}"),
            Self::BadBody(detail) => write!(f, "bad body line: {detail}"),
            Self::TrailingContent(l) => write!(f, "trailing content {l:?}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// `key=value` fields of one verb line, with duplicate refusal.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Fields<'a> {
    /// Parse every `key=value` token after the verb. Bare tokens (no `=`)
    /// are refused; unknown keys are kept (and ignored by the verbs), but
    /// duplicates of *any* key are a typed error.
    fn parse(tokens: impl Iterator<Item = &'a str>) -> Result<Self, ParseError> {
        let mut pairs: Vec<(&'a str, &'a str)> = Vec::new();
        for tok in tokens {
            let Some((key, value)) = tok.split_once('=') else {
                return Err(ParseError::BadField {
                    key: tok.to_string(),
                    detail: "expected key=value".to_string(),
                });
            };
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(ParseError::DuplicateKey(key.to_string()));
            }
            pairs.push((key, value));
        }
        Ok(Self { pairs })
    }

    fn get(&self, key: &str) -> Option<&'a str> {
        self.pairs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    fn require(&self, verb: &str, key: &str) -> Result<&'a str, ParseError> {
        self.get(key).ok_or_else(|| ParseError::MissingField {
            verb: verb.to_string(),
            key: key.to_string(),
        })
    }
}

fn bad_field(key: &str, detail: impl fmt::Display) -> ParseError {
    ParseError::BadField {
        key: key.to_string(),
        detail: detail.to_string(),
    }
}

fn parse_u64(key: &str, v: &str) -> Result<u64, ParseError> {
    v.parse().map_err(|e| bad_field(key, e))
}

fn parse_usize(key: &str, v: &str) -> Result<usize, ParseError> {
    v.parse().map_err(|e| bad_field(key, e))
}

fn parse_u8(key: &str, v: &str) -> Result<u8, ParseError> {
    v.parse().map_err(|e| bad_field(key, e))
}

fn parse_f64(key: &str, v: &str) -> Result<f64, ParseError> {
    v.parse().map_err(|e| bad_field(key, e))
}

/// Comma-separated floats (a query or probability vector).
fn parse_f64s(key: &str, v: &str) -> Result<Vec<f64>, ParseError> {
    if v.is_empty() {
        return Ok(Vec::new());
    }
    v.split(',').map(|s| parse_f64(key, s)).collect()
}

/// Comma-separated indices.
fn parse_usizes(key: &str, v: &str) -> Result<Vec<usize>, ParseError> {
    if v.is_empty() {
        return Ok(Vec::new());
    }
    v.split(',').map(|s| parse_usize(key, s)).collect()
}

fn join_f64s(xs: &[f64]) -> String {
    let mut out = String::new();
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x:?}");
    }
    out
}

fn join_usizes(xs: &[usize]) -> String {
    let mut out = String::new();
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out
}

/// Split a payload into its envelope: check the header, return the verb
/// line's tokens plus the remaining body lines (with `x-` extension lines
/// skipped everywhere, like the file format).
fn envelope(payload: &[u8]) -> Result<(Vec<&str>, Vec<&str>), ParseError> {
    let text = std::str::from_utf8(payload).map_err(|_| ParseError::NotText)?;
    let mut lines = text
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with("x-"));
    let header = lines.next().ok_or(ParseError::Empty)?;
    if header != SESSION_WIRE_HEADER {
        if header.starts_with("hinn-session ") {
            return Err(ParseError::UnsupportedVersion(header.to_string()));
        }
        return Err(ParseError::BadHeader(header.to_string()));
    }
    let verb_line = lines
        .next()
        .ok_or_else(|| ParseError::MissingBody("verb line".to_string()))?;
    Ok((verb_line.split_whitespace().collect(), lines.collect()))
}

fn no_trailing(body: &[&str]) -> Result<(), ParseError> {
    match body.first() {
        None => Ok(()),
        Some(l) => Err(ParseError::TrailingContent((*l).to_string())),
    }
}

/// Parse one request payload.
///
/// # Errors
/// A typed [`ParseError`] for every malformed input; see the enum.
pub fn parse_request(payload: &[u8]) -> Result<Request, ParseError> {
    let (tokens, body) = envelope(payload)?;
    let verb = *tokens.first().ok_or(ParseError::Empty)?;
    let fields = Fields::parse(tokens.iter().skip(1).copied())?;
    let session = |fields: &Fields| -> Result<u64, ParseError> {
        parse_u64("session", fields.require(verb, "session")?)
    };
    match verb {
        "open" => {
            no_trailing(&body)?;
            let tenant = fields.require(verb, "tenant")?.to_string();
            if tenant.is_empty() {
                return Err(bad_field("tenant", "must be non-empty"));
            }
            let query = parse_f64s("query", fields.require(verb, "query")?)?;
            if query.is_empty() {
                return Err(bad_field("query", "must be non-empty"));
            }
            if let Some(x) = query.iter().find(|x| !x.is_finite()) {
                return Err(bad_field("query", format!("non-finite coordinate {x:?}")));
            }
            Ok(Request::Open { tenant, query })
        }
        "submit" => {
            let session = session(&fields)?;
            let major = parse_usize("major", fields.require(verb, "major")?)?;
            let minor = parse_usize("minor", fields.require(verb, "minor")?)?;
            let line = body
                .first()
                .ok_or_else(|| ParseError::MissingBody("submit response line".to_string()))?;
            let response =
                response_from_line(line).map_err(|e| ParseError::BadBody(e.to_string()))?;
            no_trailing(&body[1..])?;
            Ok(Request::Submit {
                session,
                major,
                minor,
                response,
            })
        }
        "view" => {
            no_trailing(&body)?;
            Ok(Request::View {
                session: session(&fields)?,
            })
        }
        "suspend" => {
            no_trailing(&body)?;
            Ok(Request::Suspend {
                session: session(&fields)?,
            })
        }
        "close" => {
            no_trailing(&body)?;
            Ok(Request::Close {
                session: session(&fields)?,
            })
        }
        "retire" => {
            no_trailing(&body)?;
            Ok(Request::Retire {
                session: session(&fields)?,
            })
        }
        "ingest" => {
            let tenant = fields.require(verb, "tenant")?.to_string();
            if tenant.is_empty() {
                return Err(bad_field("tenant", "must be non-empty"));
            }
            if body.is_empty() {
                return Err(ParseError::MissingBody("ingest row lines".to_string()));
            }
            let mut rows = Vec::with_capacity(body.len());
            for line in &body {
                let Some(values) = line.strip_prefix("row ") else {
                    return Err(ParseError::BadBody(format!(
                        "expected a `row …` line, got {line:?}"
                    )));
                };
                let row = parse_f64s("row", values.trim())?;
                if row.is_empty() {
                    return Err(ParseError::BadBody("empty row".to_string()));
                }
                if let Some(x) = row.iter().find(|x| !x.is_finite()) {
                    return Err(ParseError::BadBody(format!("non-finite coordinate {x:?}")));
                }
                rows.push(row);
            }
            Ok(Request::Ingest { tenant, rows })
        }
        "delete" => {
            no_trailing(&body)?;
            let tenant = fields.require(verb, "tenant")?.to_string();
            if tenant.is_empty() {
                return Err(bad_field("tenant", "must be non-empty"));
            }
            let ids = parse_usizes("ids", fields.require(verb, "ids")?)?;
            if ids.is_empty() {
                return Err(bad_field("ids", "must be non-empty"));
            }
            Ok(Request::Delete { tenant, ids })
        }
        "epoch" => {
            no_trailing(&body)?;
            Ok(Request::Epoch)
        }
        "rebase" => {
            no_trailing(&body)?;
            Ok(Request::Rebase {
                session: session(&fields)?,
            })
        }
        "stats" => {
            no_trailing(&body)?;
            Ok(Request::Stats)
        }
        "ping" => {
            no_trailing(&body)?;
            Ok(Request::Ping)
        }
        other => Err(ParseError::UnknownVerb(other.to_string())),
    }
}

/// Render one request payload (canonical form; [`parse_request`] inverts
/// it exactly).
pub fn render_request(req: &Request) -> Vec<u8> {
    let mut out = String::from(SESSION_WIRE_HEADER);
    out.push('\n');
    match req {
        Request::Open { tenant, query } => {
            let _ = writeln!(out, "open tenant={tenant} query={}", join_f64s(query));
        }
        Request::Submit {
            session,
            major,
            minor,
            response,
        } => {
            let _ = writeln!(out, "submit session={session} major={major} minor={minor}");
            let _ = writeln!(out, "{}", response_to_line(response));
        }
        Request::View { session } => {
            let _ = writeln!(out, "view session={session}");
        }
        Request::Suspend { session } => {
            let _ = writeln!(out, "suspend session={session}");
        }
        Request::Close { session } => {
            let _ = writeln!(out, "close session={session}");
        }
        Request::Retire { session } => {
            let _ = writeln!(out, "retire session={session}");
        }
        Request::Ingest { tenant, rows } => {
            let _ = writeln!(out, "ingest tenant={tenant}");
            for row in rows {
                let _ = writeln!(out, "row {}", join_f64s(row));
            }
        }
        Request::Delete { tenant, ids } => {
            let _ = writeln!(out, "delete tenant={tenant} ids={}", join_usizes(ids));
        }
        Request::Epoch => out.push_str("epoch\n"),
        Request::Rebase { session } => {
            let _ = writeln!(out, "rebase session={session}");
        }
        Request::Stats => out.push_str("stats\n"),
        Request::Ping => out.push_str("ping\n"),
    }
    out.into_bytes()
}

/// Parse one reply payload.
///
/// # Errors
/// A typed [`ParseError`] for every malformed input.
pub fn parse_reply(payload: &[u8]) -> Result<Reply, ParseError> {
    let (tokens, body) = envelope(payload)?;
    let head = *tokens.first().ok_or(ParseError::Empty)?;
    match head {
        "err" => {
            let fields = Fields::parse(tokens.iter().skip(1).copied())?;
            let kind_tok = fields.require("err", "kind")?;
            let kind = ErrorKind::from_str(kind_tok)
                .ok_or_else(|| bad_field("kind", format!("unknown error kind {kind_tok:?}")))?;
            let retry_after_ms = fields
                .get("retry_after_ms")
                .map(|v| parse_u64("retry_after_ms", v))
                .transpose()?;
            let epoch = fields
                .get("epoch")
                .map(|v| parse_u64("epoch", v))
                .transpose()?;
            let message = body.first().map_or(String::new(), |l| (*l).to_string());
            no_trailing(body.get(1..).unwrap_or(&[]))?;
            Ok(Reply::Error(WireError {
                kind,
                retry_after_ms,
                epoch,
                message,
            }))
        }
        "ok" => {
            let what = *tokens
                .get(1)
                .ok_or_else(|| ParseError::MissingBody("ok sub-verb".to_string()))?;
            let fields = Fields::parse(tokens.iter().skip(2).copied())?;
            let session = |fields: &Fields| -> Result<u64, ParseError> {
                parse_u64("session", fields.require(what, "session")?)
            };
            match what {
                "view" => {
                    no_trailing(&body)?;
                    Ok(Reply::View(ViewSummary {
                        session: session(&fields)?,
                        major: parse_usize("major", fields.require(what, "major")?)?,
                        minor: parse_usize("minor", fields.require(what, "minor")?)?,
                        alive: parse_usize("alive", fields.require(what, "alive")?)?,
                        total: parse_usize("total", fields.require(what, "total")?)?,
                        shed: parse_u8("shed", fields.require(what, "shed")?)?,
                        query_density: parse_f64(
                            "query_density",
                            fields.require(what, "query_density")?,
                        )?,
                        max_density: parse_f64(
                            "max_density",
                            fields.require(what, "max_density")?,
                        )?,
                        // Absent from pre-epoch servers: optional, never
                        // required — forward tolerance both ways.
                        epoch: fields
                            .get("epoch")
                            .map(|v| parse_u64("epoch", v))
                            .transpose()?,
                    }))
                }
                "epoch" => {
                    no_trailing(&body)?;
                    let fp_hex = fields.require(what, "fp")?;
                    let fingerprint = u128::from_str_radix(fp_hex, 16)
                        .map_err(|e| bad_field("fp", format!("not 128-bit hex: {e}")))?;
                    Ok(Reply::Epoch(EpochSummary {
                        epoch: parse_u64("epoch", fields.require(what, "epoch")?)?,
                        fingerprint,
                    }))
                }
                "done" => {
                    // An empty list renders as a bare `neighbors` line once
                    // the envelope trims trailing whitespace — accept it.
                    let strip = |l: &&str, tag: &str| -> Option<String> {
                        if *l == tag {
                            return Some(String::new());
                        }
                        l.strip_prefix(tag)
                            .and_then(|rest| rest.strip_prefix(' '))
                            .map(str::to_string)
                    };
                    let neighbors_line = body
                        .first()
                        .and_then(|l| strip(l, "neighbors"))
                        .ok_or_else(|| ParseError::MissingBody("neighbors line".to_string()))?;
                    let probs_line = body
                        .get(1)
                        .and_then(|l| strip(l, "probabilities"))
                        .ok_or_else(|| ParseError::MissingBody("probabilities line".to_string()))?;
                    no_trailing(body.get(2..).unwrap_or(&[]))?;
                    let neighbors = parse_usizes("neighbors", neighbors_line.trim())?;
                    let probabilities = parse_f64s("probabilities", probs_line.trim())?;
                    if neighbors.len() != probabilities.len() {
                        return Err(ParseError::BadBody(format!(
                            "{} neighbors but {} probabilities",
                            neighbors.len(),
                            probabilities.len()
                        )));
                    }
                    Ok(Reply::Done(DoneSummary {
                        session: session(&fields)?,
                        majors: parse_usize("majors", fields.require(what, "majors")?)?,
                        support: parse_usize("support", fields.require(what, "support")?)?,
                        degraded: parse_usize("degraded", fields.require(what, "degraded")?)?,
                        neighbors,
                        probabilities,
                    }))
                }
                "suspended" => {
                    no_trailing(&body)?;
                    Ok(Reply::Suspended {
                        session: session(&fields)?,
                    })
                }
                "closed" => {
                    no_trailing(&body)?;
                    Ok(Reply::Closed {
                        session: session(&fields)?,
                    })
                }
                "retired" => {
                    no_trailing(&body)?;
                    Ok(Reply::Retired {
                        session: session(&fields)?,
                    })
                }
                "stats" => {
                    no_trailing(&body)?;
                    Ok(Reply::Stats(StatsSummary {
                        live: parse_usize("live", fields.require(what, "live")?)?,
                        hot: parse_usize("hot", fields.require(what, "hot")?)?,
                        warm: parse_usize("warm", fields.require(what, "warm")?)?,
                        shed: parse_u8("shed", fields.require(what, "shed")?)?,
                    }))
                }
                "pong" => {
                    no_trailing(&body)?;
                    Ok(Reply::Pong)
                }
                other => Err(ParseError::UnknownVerb(format!("ok {other}"))),
            }
        }
        other => Err(ParseError::UnknownVerb(other.to_string())),
    }
}

/// Render one reply payload (canonical form; [`parse_reply`] inverts it
/// exactly, bit-for-bit on every float).
pub fn render_reply(reply: &Reply) -> Vec<u8> {
    let mut out = String::from(SESSION_WIRE_HEADER);
    out.push('\n');
    match reply {
        Reply::View(v) => {
            let _ = write!(
                out,
                "ok view session={} major={} minor={} alive={} total={} shed={} \
                 query_density={:?} max_density={:?}",
                v.session,
                v.major,
                v.minor,
                v.alive,
                v.total,
                v.shed,
                v.query_density,
                v.max_density
            );
            if let Some(epoch) = v.epoch {
                let _ = write!(out, " epoch={epoch}");
            }
            out.push('\n');
        }
        Reply::Done(d) => {
            let _ = writeln!(
                out,
                "ok done session={} majors={} support={} degraded={}",
                d.session, d.majors, d.support, d.degraded
            );
            let _ = writeln!(out, "neighbors {}", join_usizes(&d.neighbors));
            let _ = writeln!(out, "probabilities {}", join_f64s(&d.probabilities));
        }
        Reply::Suspended { session } => {
            let _ = writeln!(out, "ok suspended session={session}");
        }
        Reply::Closed { session } => {
            let _ = writeln!(out, "ok closed session={session}");
        }
        Reply::Retired { session } => {
            let _ = writeln!(out, "ok retired session={session}");
        }
        Reply::Epoch(e) => {
            let _ = writeln!(out, "ok epoch epoch={} fp={:032x}", e.epoch, e.fingerprint);
        }
        Reply::Stats(s) => {
            let _ = writeln!(
                out,
                "ok stats live={} hot={} warm={} shed={}",
                s.live, s.hot, s.warm, s.shed
            );
        }
        Reply::Pong => out.push_str("ok pong\n"),
        Reply::Error(e) => {
            let _ = write!(out, "err kind={}", e.kind.as_str());
            if let Some(ms) = e.retry_after_ms {
                let _ = write!(out, " retry_after_ms={ms}");
            }
            if let Some(epoch) = e.epoch {
                let _ = write!(out, " epoch={epoch}");
            }
            out.push('\n');
            if !e.message.is_empty() {
                // The message gets its own line so it may contain spaces;
                // newlines inside it would smuggle lines, so flatten them.
                let _ = writeln!(out, "{}", e.message.replace(['\n', '\r'], " "));
            }
        }
    }
    out.into_bytes()
}

/// Convenience: an error reply.
pub fn error_reply(
    kind: ErrorKind,
    retry_after_ms: Option<u64>,
    message: impl Into<String>,
) -> Reply {
    Reply::Error(WireError {
        kind,
        retry_after_ms,
        epoch: None,
        message: message.into(),
    })
}

/// The shed level a view reply advertises.
pub fn shed_to_u8(level: ShedLevel) -> u8 {
    level.as_u8()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let bytes = render_request(&req);
        assert_eq!(parse_request(&bytes).expect("parse"), req);
    }

    fn round_trip_reply(reply: Reply) {
        let bytes = render_reply(&reply);
        assert_eq!(parse_reply(&bytes).expect("parse"), reply);
    }

    #[test]
    fn requests_round_trip_bit_exactly() {
        round_trip_request(Request::Open {
            tenant: "alice".to_string(),
            query: vec![50.0, -0.125, 1e-300, f64::MIN_POSITIVE],
        });
        round_trip_request(Request::Submit {
            session: 7,
            major: 1,
            minor: 3,
            response: UserResponse::Threshold(0.257_843_123),
        });
        round_trip_request(Request::Submit {
            session: 7,
            major: 0,
            minor: 0,
            response: UserResponse::Discard,
        });
        round_trip_request(Request::View { session: 42 });
        round_trip_request(Request::Suspend { session: 42 });
        round_trip_request(Request::Close { session: 42 });
        round_trip_request(Request::Retire { session: 42 });
        round_trip_request(Request::Ingest {
            tenant: "alice".to_string(),
            rows: vec![vec![1.0, -0.125, 1e-300], vec![4.0, 5.0, 6.0]],
        });
        round_trip_request(Request::Delete {
            tenant: "alice".to_string(),
            ids: vec![0, 7, 199],
        });
        round_trip_request(Request::Epoch);
        round_trip_request(Request::Rebase { session: 42 });
        round_trip_request(Request::Stats);
        round_trip_request(Request::Ping);
    }

    #[test]
    fn replies_round_trip_bit_exactly() {
        round_trip_reply(Reply::View(ViewSummary {
            session: 9,
            major: 0,
            minor: 1,
            alive: 187,
            total: 200,
            shed: 2,
            query_density: 0.123_456_789_012_345_6,
            max_density: 0.999_999_999_999_999_9,
            epoch: Some(207),
        }));
        round_trip_reply(Reply::View(ViewSummary {
            session: 9,
            major: 0,
            minor: 1,
            alive: 187,
            total: 200,
            shed: 0,
            query_density: 0.5,
            max_density: 1.0,
            epoch: None,
        }));
        round_trip_reply(Reply::Epoch(EpochSummary {
            epoch: 207,
            fingerprint: 0x00ab_cdef_0123_4567_89ab_cdef_0123_4567,
        }));
        round_trip_reply(Reply::Done(DoneSummary {
            session: 9,
            majors: 2,
            support: 20,
            degraded: 1,
            neighbors: vec![3, 5, 9],
            probabilities: vec![0.5, 0.25, 1e-17],
        }));
        // Empty lists render as bare `neighbors` / `probabilities` lines
        // once the envelope trims trailing whitespace — still invertible.
        round_trip_reply(Reply::Done(DoneSummary {
            session: 9,
            majors: 2,
            support: 20,
            degraded: 0,
            neighbors: Vec::new(),
            probabilities: Vec::new(),
        }));
        round_trip_reply(Reply::Suspended { session: 1 });
        round_trip_reply(Reply::Closed { session: 1 });
        round_trip_reply(Reply::Retired { session: 1 });
        round_trip_reply(Reply::Stats(StatsSummary {
            live: 3,
            hot: 2,
            warm: 1,
            shed: 0,
        }));
        round_trip_reply(Reply::Pong);
        round_trip_reply(Reply::Error(WireError {
            kind: ErrorKind::Overloaded,
            retry_after_ms: Some(25),
            epoch: None,
            message: "admission denied: 8 open sessions (max 8)".to_string(),
        }));
        round_trip_reply(Reply::Error(WireError {
            kind: ErrorKind::EpochMismatch,
            retry_after_ms: None,
            epoch: Some(212),
            message: "session pinned epoch 200; dataset is at 212".to_string(),
        }));
        round_trip_reply(Reply::Error(WireError {
            kind: ErrorKind::Parse,
            retry_after_ms: None,
            epoch: None,
            message: String::new(),
        }));
    }

    #[test]
    fn epoch_fields_are_optional_and_ingest_bodies_are_strict() {
        // A pre-epoch `ok view` line (no epoch=) still parses: None.
        let old = b"hinn-session v1\nok view session=1 major=0 minor=1 alive=5 total=9 shed=0 \
                    query_density=0.5 max_density=1.0\n";
        let Reply::View(v) = parse_reply(old).expect("old view") else {
            panic!("not a view");
        };
        assert_eq!(v.epoch, None);
        // A mangled epoch= is a typed refusal, not a silent None.
        let bad = b"hinn-session v1\nok view session=1 major=0 minor=1 alive=5 total=9 shed=0 \
                    query_density=0.5 max_density=1.0 epoch=xyz\n";
        assert!(matches!(parse_reply(bad), Err(ParseError::BadField { .. })));
        // Same on err replies.
        let Reply::Error(e) =
            parse_reply(b"hinn-session v1\nerr kind=engine\nboom\n").expect("old err")
        else {
            panic!("not an error");
        };
        assert_eq!(e.epoch, None);
        // Ingest refuses empty batches, non-`row` body lines, and
        // non-finite coordinates.
        assert!(matches!(
            parse_request(b"hinn-session v1\ningest tenant=a\n"),
            Err(ParseError::MissingBody(_))
        ));
        assert!(matches!(
            parse_request(b"hinn-session v1\ningest tenant=a\nnot-a-row 1,2\n"),
            Err(ParseError::BadBody(_))
        ));
        assert!(matches!(
            parse_request(b"hinn-session v1\ningest tenant=a\nrow 1.0,NaN\n"),
            Err(ParseError::BadBody(_))
        ));
        // Delete refuses empty id lists; epoch fingerprints must be hex.
        assert!(matches!(
            parse_request(b"hinn-session v1\ndelete tenant=a ids=\n"),
            Err(ParseError::BadField { .. })
        ));
        assert!(matches!(
            parse_reply(b"hinn-session v1\nok epoch epoch=5 fp=zz\n"),
            Err(ParseError::BadField { .. })
        ));
    }

    #[test]
    fn duplicated_keys_are_refused_even_unknown_ones() {
        let payload = b"hinn-session v1\nview session=1 session=2\n";
        assert_eq!(
            parse_request(payload),
            Err(ParseError::DuplicateKey("session".to_string()))
        );
        // Unknown keys are ignored individually but still refused in
        // duplicate — no conflicting-interpretation smuggling.
        let payload = b"hinn-session v1\nview session=1 zzz=a zzz=b\n";
        assert_eq!(
            parse_request(payload),
            Err(ParseError::DuplicateKey("zzz".to_string()))
        );
    }

    #[test]
    fn forward_tolerance_skips_x_lines_and_unknown_fields() {
        let payload =
            b"x-trace id=99\nhinn-session v1\nview session=5 x_new_field=yes\nx-footer done\n";
        assert_eq!(parse_request(payload), Ok(Request::View { session: 5 }));
    }

    #[test]
    fn version_and_header_refusals_are_typed() {
        assert_eq!(
            parse_request(b"hinn-session v2\nping\n"),
            Err(ParseError::UnsupportedVersion(
                "hinn-session v2".to_string()
            ))
        );
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert_eq!(parse_request(b""), Err(ParseError::Empty));
        assert_eq!(parse_request(&[0xFF, 0xFE, 0x00]), Err(ParseError::NotText));
        assert!(matches!(
            parse_request(b"hinn-session v1\nexplode session=1\n"),
            Err(ParseError::UnknownVerb(_))
        ));
        assert!(matches!(
            parse_request(b"hinn-session v1\nopen tenant=a query=1,2\ntrailing junk\n"),
            Err(ParseError::TrailingContent(_))
        ));
    }

    #[test]
    fn submit_embeds_the_recording_format() {
        let payload =
            b"hinn-session v1\nsubmit session=3 major=0 minor=2\npolygon 1.0,0.0,-3.5;0.0,1.0,2.0\n";
        let req = parse_request(payload).expect("parse");
        let Request::Submit { response, .. } = req else {
            panic!("not a submit");
        };
        assert!(matches!(response, UserResponse::Polygon(ref l) if l.len() == 2));
        // A malformed response line is a typed body error.
        assert!(matches!(
            parse_request(b"hinn-session v1\nsubmit session=3 major=0 minor=0\npolygon nope\n"),
            Err(ParseError::BadBody(_))
        ));
        // A missing response line too.
        assert!(matches!(
            parse_request(b"hinn-session v1\nsubmit session=3 major=0 minor=0\n"),
            Err(ParseError::MissingBody(_))
        ));
    }

    #[test]
    fn non_finite_query_coordinates_are_refused() {
        for bad in ["NaN", "inf", "-inf"] {
            let payload = format!("hinn-session v1\nopen tenant=a query=1.0,{bad}\n");
            assert!(
                matches!(
                    parse_request(payload.as_bytes()),
                    Err(ParseError::BadField { .. })
                ),
                "{bad} slipped through"
            );
        }
    }
}
