//! Networked serving front-end for interactive nearest-neighbor search.
//!
//! `hinn-net` puts the [`hinn_serve::SessionManager`] behind a TCP
//! listener speaking `hinn-session v1` over length-prefixed frames — a
//! zero-dependency `std::net` stack whose load-bearing property is
//! *typed refusal everywhere*: no wire input, fault injection, or
//! overload condition may panic the server, lose a session, or corrupt
//! an outcome.
//!
//! The layers, bottom up:
//!
//! * [`frame`] — `[len][checksum][payload]` framing. Truncation,
//!   oversize, corruption, deadline expiry, and clean close are each a
//!   distinct [`frame::FrameError`] variant.
//! * [`proto`] — the message layer: typed [`proto::Request`] /
//!   [`proto::Reply`] with a total parser ([`proto::ParseError`] for
//!   every malformed input; property-tested against truncations,
//!   duplicated keys, and byte flips). Submit bodies reuse the
//!   `hinn-session v1` recording format, so a recorded session replays
//!   over the wire byte-for-byte.
//! * [`shed`] — the overload ladder: degrade (coarser KDE grid, fewer
//!   minors, shorter major budget) *before* refusing; refusals carry a
//!   deterministic retry hint.
//! * [`fairness`] — per-tenant quotas plus a least-held admission rule
//!   that makes greedy tenants interleave deterministically once
//!   sessions are scarce.
//! * [`server`] — the accept loop, per-connection deadlines, admission →
//!   backpressure mapping, outcome retention for at-most-once submits,
//!   connection postmortems, and graceful drain (in-flight submits
//!   complete, hot sessions flush to warm snapshots).
//! * [`client`] — a blocking client with bounded, deterministic
//!   retry/backoff that honors `overloaded` retry hints and resyncs via
//!   `view` after a torn reply.
//!
//! Fault points (`hinn-fault`): `net.torn_frame` tears a write in half,
//! `net.disconnect` drops a connection after compute but before the
//! reply, `net.stall` turns a read into a deadline expiry. The fault
//! suite (`tests/net_faults.rs`) drives all three plus overload and
//! drain; the soak (`tests/net_soak.rs`) proves outcomes served over the
//! wire are bit-identical to in-process runs across thread budgets.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod fairness;
pub mod frame;
pub mod proto;
pub mod server;
pub mod shed;

pub use client::{ClientError, NetClient, RetryPolicy};
pub use fairness::{AdmitError, TenantGovernor};
pub use frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
pub use proto::{
    parse_reply, parse_request, render_reply, render_request, DoneSummary, EpochSummary, ErrorKind,
    ParseError, Reply, Request, StatsSummary, ViewSummary, WireError,
};
pub use server::{NetServer, NetServerConfig, ServerHandle};
pub use shed::{degrade, ShedLevel, ShedPolicy};
