//! Per-tenant admission: quotas plus deterministic round-robin fairness.
//!
//! The manager's `max_sessions` bound is global; without per-tenant
//! accounting one greedy client opening sessions in a tight loop starves
//! everyone else. The [`TenantGovernor`] adds two rules in front of the
//! manager's own admission check:
//!
//! * **quota** — no tenant may hold more than `quota` open sessions,
//!   ever;
//! * **fairness** — once total occupancy reaches the *scarce zone*
//!   (`fairness_start` sessions), a tenant is admitted only if its count
//!   is not above the minimum count among active tenants. Two greedy
//!   tenants therefore interleave 1:1 deterministically (each admission
//!   raises the admitted tenant's count above the other's, so the next
//!   grant goes to the other), rather than racing to whoever's packets
//!   arrive faster.
//!
//! Admission *reserves* the slot (the count is incremented inside the
//! governor's lock before the expensive open runs), so the quota is exact
//! under concurrency; a failed open must [`TenantGovernor::release`] the
//! reservation.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Why an open was not admitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant holds `held` of its `quota` allowed sessions.
    QuotaExceeded {
        /// Sessions the tenant already holds.
        held: usize,
        /// The per-tenant bound.
        quota: usize,
    },
    /// Total occupancy is at the global bound.
    Full {
        /// Open sessions across all tenants.
        live: usize,
        /// The global bound.
        max: usize,
    },
    /// In the scarce zone and another active tenant holds fewer
    /// sessions: yield, retry shortly.
    Deferred {
        /// Sessions this tenant holds.
        held: usize,
        /// The minimum held by any *other* active tenant (who goes first).
        min_held: usize,
    },
}

/// Per-tenant session accounting. `BTreeMap` keeps iteration (and thus
/// the fairness rule) deterministic in the tenant names.
#[derive(Debug)]
pub struct TenantGovernor {
    max_sessions: usize,
    quota: usize,
    fairness_start: usize,
    counts: Mutex<BTreeMap<String, usize>>,
}

impl TenantGovernor {
    /// A governor over `max_sessions` total, `quota` per tenant, with the
    /// fairness rule active from `fairness_start` total open sessions.
    pub fn new(max_sessions: usize, quota: usize, fairness_start: usize) -> Self {
        Self {
            max_sessions,
            quota: quota.max(1),
            fairness_start,
            counts: Mutex::new(BTreeMap::new()),
        }
    }

    /// Try to admit one open for `tenant`, reserving the slot on success.
    ///
    /// # Errors
    /// A typed [`AdmitError`]; the slot is *not* reserved on error.
    pub fn try_admit(&self, tenant: &str) -> Result<(), AdmitError> {
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        let held = counts.get(tenant).copied().unwrap_or(0);
        if held >= self.quota {
            return Err(AdmitError::QuotaExceeded {
                held,
                quota: self.quota,
            });
        }
        let live: usize = counts.values().sum();
        if live >= self.max_sessions {
            return Err(AdmitError::Full {
                live,
                max: self.max_sessions,
            });
        }
        if live >= self.fairness_start {
            // Scarce zone: a tenant may grow only while no *other* active
            // tenant holds fewer sessions. Two greedy tenants therefore
            // ping-pong deterministically (each grant tips the balance to
            // the other); a sole tenant is never blocked by the rule.
            let min_others = counts
                .iter()
                .filter(|(name, &c)| c > 0 && name.as_str() != tenant)
                .map(|(_, &c)| c)
                .min();
            if let Some(min_held) = min_others {
                if held > min_held {
                    return Err(AdmitError::Deferred { held, min_held });
                }
            }
        }
        *counts.entry(tenant.to_string()).or_insert(0) += 1;
        Ok(())
    }

    /// Release one reservation for `tenant` (session finished, closed,
    /// evicted-and-discovered, or its open failed).
    pub fn release(&self, tenant: &str) {
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(c) = counts.get_mut(tenant) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                counts.remove(tenant);
            }
        }
    }

    /// Sessions `tenant` currently holds.
    pub fn held(&self, tenant: &str) -> usize {
        self.counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Total reserved sessions across tenants.
    pub fn live(&self) -> usize {
        self.counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_is_exact() {
        let g = TenantGovernor::new(100, 3, 100);
        for _ in 0..3 {
            g.try_admit("alice").expect("under quota");
        }
        assert_eq!(
            g.try_admit("alice"),
            Err(AdmitError::QuotaExceeded { held: 3, quota: 3 })
        );
        g.release("alice");
        g.try_admit("alice").expect("freed a slot");
    }

    #[test]
    fn full_is_typed() {
        let g = TenantGovernor::new(2, 10, 100);
        g.try_admit("a").expect("1/2");
        g.try_admit("b").expect("2/2");
        assert_eq!(g.try_admit("c"), Err(AdmitError::Full { live: 2, max: 2 }));
    }

    #[test]
    fn greedy_tenants_interleave_deterministically_in_the_scarce_zone() {
        // Scarce from the first session.
        let g = TenantGovernor::new(100, 100, 0);
        // A sole tenant is never blocked by the fairness rule.
        for _ in 0..3 {
            g.try_admit("greedy").expect("sole tenant");
        }
        // A newcomer with fewer sessions goes first…
        g.try_admit("meek").expect("newcomer goes first");
        // …and now blocks the greedy tenant until it catches up.
        assert_eq!(
            g.try_admit("greedy"),
            Err(AdmitError::Deferred {
                held: 3,
                min_held: 1
            })
        );
        g.try_admit("meek").expect("2 ≤ 3");
        g.try_admit("meek").expect("3 ≤ 3");
        // Tied: both may grow, and each grant tips the balance to the
        // other — a deterministic 1:1 ping-pong from here on.
        g.try_admit("greedy").expect("tied");
        assert!(matches!(
            g.try_admit("greedy"),
            Err(AdmitError::Deferred { .. })
        ));
        g.try_admit("meek").expect("meek's turn");
        assert_eq!(g.held("greedy"), 4);
        assert_eq!(g.held("meek"), 4);
        assert_eq!(g.live(), 8);
    }

    #[test]
    fn fairness_is_dormant_below_the_scarce_zone() {
        let g = TenantGovernor::new(100, 100, 50);
        for i in 0..49 {
            g.try_admit("greedy")
                .unwrap_or_else(|e| panic!("{i}: {e:?}"));
        }
        assert_eq!(g.live(), 49);
    }
}
