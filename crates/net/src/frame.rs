//! Length-prefixed framing with an integrity checksum.
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! [u32 BE payload length][u32 BE FNV-1a checksum of payload][payload]
//! ```
//!
//! The codec's entire contract is *typed refusal*: a truncated, oversized,
//! or corrupt frame is a [`FrameError`] variant, never a panic and never a
//! silently mis-parsed payload. The checksum is what turns a byte flip —
//! which could otherwise decode into a *different valid message* — into a
//! typed [`FrameError::Corrupt`] before the payload is ever interpreted.
//!
//! Reads distinguish a clean close (EOF on a frame boundary,
//! [`FrameError::Closed`]) from a torn frame (EOF mid-frame,
//! [`FrameError::Truncated`]) and from a read deadline expiring
//! ([`FrameError::TimedOut`], which records whether the frame had
//! started — a stalled *mid-frame* read is a peer incident, an idle
//! timeout is routine housekeeping).
//!
//! The fault point `net.torn_frame` lives in [`write_frame`]: when it
//! fires, half the frame is written and the call reports
//! [`FrameError::Injected`] so the caller knows the stream is now
//! unusable — exactly what a connection dying mid-write looks like to the
//! peer.

use std::fmt;
use std::io::{self, Read, Write};

/// Default upper bound on one frame's payload (1 MiB). A `done` reply for
/// a 200k-point data set is well under this; anything larger is refused
/// before allocation.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Everything the framing layer can refuse with. Every variant is a
/// *typed* outcome — the codec never panics on wire bytes.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the stream on a frame boundary (clean EOF).
    Closed,
    /// The stream ended mid-frame: the peer died or tore the write.
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
    /// The declared payload length exceeds the configured bound; refused
    /// before any payload allocation.
    Oversized {
        /// Declared payload length.
        len: usize,
        /// The configured bound.
        max: usize,
    },
    /// The payload does not match its header checksum: a byte flip or a
    /// torn-and-respliced stream.
    Corrupt {
        /// Checksum declared in the header.
        declared: u32,
        /// Checksum of the payload actually read.
        actual: u32,
    },
    /// The read deadline expired.
    TimedOut {
        /// Whether any bytes of the frame had arrived: `true` is a peer
        /// stalling mid-frame, `false` is an idle connection.
        started: bool,
    },
    /// The `net.torn_frame` fault point fired: half the frame was written
    /// and the stream is no longer usable.
    Injected,
    /// Any other transport error.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Closed => write!(f, "connection closed on a frame boundary"),
            Self::Truncated { missing } => {
                write!(f, "stream ended mid-frame ({missing} bytes missing)")
            }
            Self::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte bound")
            }
            Self::Corrupt { declared, actual } => write!(
                f,
                "frame checksum mismatch (declared {declared:#010x}, actual {actual:#010x})"
            ),
            Self::TimedOut { started } => {
                if *started {
                    write!(f, "read stalled mid-frame past the deadline")
                } else {
                    write!(f, "idle past the read deadline")
                }
            }
            Self::Injected => write!(f, "torn frame injected (net.torn_frame)"),
            Self::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// FNV-1a over the payload, folded to 32 bits.
pub fn checksum(payload: &[u8]) -> u32 {
    let mut h = 0xcbf29ce484222325u64;
    for b in payload {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h ^ (h >> 32)) as u32
}

/// Classify an `io::Error` from a read with a deadline set.
fn read_error(e: io::Error, started: bool) -> FrameError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => FrameError::TimedOut { started },
        io::ErrorKind::UnexpectedEof => FrameError::Truncated { missing: 0 },
        _ => FrameError::Io(e),
    }
}

/// Read exactly `buf.len()` bytes. `consumed_any` says whether earlier
/// bytes of this frame already arrived (for EOF/timeout classification).
fn read_full(r: &mut impl Read, buf: &mut [u8], mut consumed_any: bool) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if consumed_any {
                    return Err(FrameError::Truncated {
                        missing: buf.len() - filled,
                    });
                }
                return Err(FrameError::Closed);
            }
            Ok(n) => {
                filled += n;
                consumed_any = true;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(read_error(e, consumed_any || filled > 0)),
        }
    }
    Ok(())
}

/// Read one frame, enforcing `max` on the declared payload length.
///
/// # Errors
/// Every refusal is a typed [`FrameError`]; see the module docs for the
/// taxonomy. After [`FrameError::Oversized`] the stream is misaligned
/// (the payload was never consumed) and must be closed.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    read_full(r, &mut header, false)?;
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let declared = u32::from_be_bytes([header[4], header[5], header[6], header[7]]);
    if len > max {
        return Err(FrameError::Oversized { len, max });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, true)?;
    let actual = checksum(&payload);
    if actual != declared {
        return Err(FrameError::Corrupt { declared, actual });
    }
    Ok(payload)
}

/// Write one frame. Consults the `net.torn_frame` fault point: when it
/// fires, only the first half of the encoded frame is written (then
/// flushed) and the call reports [`FrameError::Injected`] — the
/// deterministic stand-in for a connection dying mid-write.
///
/// # Errors
/// [`FrameError::Oversized`] when `payload` exceeds `max` (nothing is
/// written); [`FrameError::Io`] on transport errors;
/// [`FrameError::Injected`] under the fault.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.len() > max {
        return Err(FrameError::Oversized {
            len: payload.len(),
            max,
        });
    }
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&checksum(payload).to_be_bytes());
    buf.extend_from_slice(payload);
    if hinn_fault::point("net.torn_frame") {
        let half = buf.len() / 2;
        let _ = w.write_all(&buf[..half]);
        let _ = w.flush();
        return Err(FrameError::Injected);
    }
    w.write_all(&buf).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::sync::Arc;

    fn encode(payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, payload, DEFAULT_MAX_FRAME).expect("encode");
        buf
    }

    #[test]
    fn round_trip() {
        let payload = b"hinn-session v1\nping\n".to_vec();
        let bytes = encode(&payload);
        let mut r = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME).expect("read"),
            payload
        );
        // The stream is now at a clean boundary.
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let bytes = encode(b"hello frame");
        for cut in 1..bytes.len() {
            let mut r = Cursor::new(bytes[..cut].to_vec());
            match read_frame(&mut r, DEFAULT_MAX_FRAME) {
                Err(FrameError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        // Zero bytes is a clean close, not a tear.
        let mut r = Cursor::new(Vec::new());
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn every_byte_flip_is_refused_or_detected() {
        let bytes = encode(b"the payload under test");
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut flipped = bytes.clone();
                flipped[i] ^= 1 << bit;
                let mut r = Cursor::new(flipped);
                match read_frame(&mut r, DEFAULT_MAX_FRAME) {
                    // A flip in the length header can declare a longer
                    // frame (Truncated/Oversized), a flip in checksum or
                    // payload must be Corrupt. A shorter declared length
                    // also lands on Corrupt: the checksum no longer
                    // matches the shortened payload.
                    Err(
                        FrameError::Corrupt { .. }
                        | FrameError::Truncated { .. }
                        | FrameError::Oversized { .. },
                    ) => {}
                    other => panic!("flip {i}:{bit} slipped through: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn oversized_is_refused_before_allocation() {
        let mut bytes = encode(b"x");
        // Declare a 3 GiB payload.
        bytes[..4].copy_from_slice(&(3u32 << 30).to_be_bytes());
        let mut r = Cursor::new(bytes);
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Oversized {
                max: DEFAULT_MAX_FRAME,
                ..
            })
        ));
        // And the writer refuses symmetrically.
        let big = vec![0u8; 32];
        let mut out = Vec::new();
        assert!(matches!(
            write_frame(&mut out, &big, 16),
            Err(FrameError::Oversized { len: 32, max: 16 })
        ));
        assert!(out.is_empty(), "nothing written on refusal");
    }

    #[test]
    fn torn_frame_fault_reports_injected_and_halves_the_write() {
        let plan = Arc::new(
            hinn_fault::FaultPlan::new().with("net.torn_frame", hinn_fault::FaultMode::Once),
        );
        let _g = hinn_fault::install_local(plan.clone());
        let mut out = Vec::new();
        let err = write_frame(&mut out, b"will be torn", DEFAULT_MAX_FRAME).expect_err("torn");
        assert!(matches!(err, FrameError::Injected), "{err}");
        assert!(
            !out.is_empty() && out.len() < 8 + 12,
            "half a frame on the wire"
        );
        assert_eq!(plan.fired("net.torn_frame"), 1);
        // The peer reading those bytes sees a typed tear.
        let mut r = Cursor::new(out);
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Truncated { .. })
        ));
    }
}
