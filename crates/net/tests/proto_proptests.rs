//! Property-based robustness of the `hinn-session v1` wire parser.
//!
//! The contract under test: parsing is *total* — for any byte sequence,
//! [`parse_request`] / [`parse_reply`] return either a correct value or a
//! typed [`ParseError`]; they never panic (a panic fails the proptest
//! outright) and never silently accept a structurally damaged message
//! (duplicated keys are the canonical smuggling vector and must always be
//! refused). Payload *integrity* against truncation and bit rot is the
//! framing layer's checksum's job; here we additionally pin that even
//! when such damage reaches the text parser it stays typed and
//! self-consistent.

use hinn_net::proto::{
    parse_reply, parse_request, render_reply, render_request, DoneSummary, ErrorKind, ParseError,
    Reply, Request, ViewSummary, WireError,
};
use hinn_user::UserResponse;
use proptest::prelude::*;

/// Lowercase-ascii tenant names (the stub proptest has no regex-string
/// strategy).
fn tenant_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..26, 1..9).prop_map(|v| {
        v.into_iter()
            .map(|c| (b'a' + c as u8) as char)
            .collect::<String>()
    })
}

/// Printable-ascii free text.
fn printable(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..95, 0..max).prop_map(|v| {
        v.into_iter()
            .map(|c| (0x20 + c as u8) as char)
            .collect::<String>()
    })
}

fn arbitrary_request() -> impl Strategy<Value = Request> {
    let open = (
        tenant_name(),
        proptest::collection::vec(-1.0e9..1.0e9f64, 1..12),
    )
        .prop_map(|(tenant, query)| Request::Open { tenant, query });
    let submit = (
        0u64..1_000_000,
        0usize..20,
        0usize..20,
        prop_oneof![
            Just(UserResponse::Discard),
            (1.0e-12..1.0e6f64).prop_map(UserResponse::Threshold),
        ],
    )
        .prop_map(|(session, major, minor, response)| Request::Submit {
            session,
            major,
            minor,
            response,
        });
    let id = 0u64..1_000_000;
    prop_oneof![
        open,
        submit,
        id.clone().prop_map(|session| Request::View { session }),
        id.clone().prop_map(|session| Request::Suspend { session }),
        id.clone().prop_map(|session| Request::Close { session }),
        id.prop_map(|session| Request::Retire { session }),
        Just(Request::Stats),
        Just(Request::Ping),
    ]
}

fn arbitrary_reply() -> impl Strategy<Value = Reply> {
    let view = (
        0u64..1_000_000,
        0usize..10,
        0usize..10,
        0usize..100_000,
        0usize..100_000,
        (0u32..4, -1.0e6..1.0e6f64, -1.0e6..1.0e6f64),
    )
        .prop_map(|(session, major, minor, alive, total, (shed, qd, md))| {
            Reply::View(ViewSummary {
                session,
                major,
                minor,
                alive,
                total,
                shed: shed as u8,
                query_density: qd,
                max_density: md,
            })
        });
    let done = (
        0u64..1_000_000,
        1usize..10,
        1usize..100,
        0usize..5,
        proptest::collection::vec((0usize..100_000, 0.0..1.0f64), 0..20),
    )
        .prop_map(|(session, majors, support, degraded, pairs)| {
            let (neighbors, probabilities) = pairs.into_iter().unzip();
            Reply::Done(DoneSummary {
                session,
                majors,
                support,
                degraded,
                neighbors,
                probabilities,
            })
        });
    let err = (0u64..1000, printable(40)).prop_map(|(ms, message)| {
        Reply::Error(WireError {
            kind: ErrorKind::Overloaded,
            retry_after_ms: Some(ms),
            message,
        })
    });
    prop_oneof![
        view,
        done,
        err,
        (0u64..1000).prop_map(|session| Reply::Suspended { session }),
        (0u64..1000).prop_map(|session| Reply::Closed { session }),
        Just(Reply::Pong),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonical round trip: bit-exact on every float.
    #[test]
    fn requests_round_trip(req in arbitrary_request()) {
        let bytes = render_request(&req);
        prop_assert_eq!(parse_request(&bytes).unwrap(), req);
    }

    #[test]
    fn replies_round_trip(reply in arbitrary_reply()) {
        let bytes = render_reply(&reply);
        prop_assert_eq!(parse_reply(&bytes).unwrap(), reply);
    }

    /// Truncation at every byte offset: the parser is total — a typed
    /// error or a self-consistent value, never a panic.
    #[test]
    fn truncated_requests_never_panic(req in arbitrary_request(), frac in 0.0..1.0f64) {
        let bytes = render_request(&req);
        let cut = ((bytes.len() as f64) * frac) as usize;
        match parse_request(&bytes[..cut]) {
            Err(_) => {} // typed refusal
            Ok(r) => {
                // A truncation that still parses (e.g. a shortened float)
                // must at least be a self-consistent message — rendering
                // and re-parsing it is the identity.
                let again = render_request(&r);
                prop_assert_eq!(parse_request(&again).unwrap(), r);
            }
        }
    }

    #[test]
    fn truncated_replies_never_panic(reply in arbitrary_reply(), frac in 0.0..1.0f64) {
        let bytes = render_reply(&reply);
        let cut = ((bytes.len() as f64) * frac) as usize;
        match parse_reply(&bytes[..cut]) {
            Err(_) => {}
            Ok(r) => {
                let again = render_reply(&r);
                prop_assert_eq!(parse_reply(&again).unwrap(), r);
            }
        }
    }

    /// A flipped bit anywhere: typed error or a value — never a panic —
    /// and a flip inside the header line is always refused.
    #[test]
    fn byte_flips_never_panic(
        req in arbitrary_request(),
        pos_frac in 0.0..1.0f64,
        bit in 0usize..8,
    ) {
        let mut bytes = render_request(&req);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let _ = parse_request(&bytes); // totality is the assertion
        // "hinn-session v1" occupies bytes 0..15; any flip there changes
        // the header and must be refused with a typed error.
        if pos < 15 {
            prop_assert!(
                matches!(
                    parse_request(&bytes),
                    Err(ParseError::BadHeader(_)
                        | ParseError::UnsupportedVersion(_)
                        | ParseError::NotText
                        | ParseError::Empty
                        | ParseError::MissingBody(_))
                ),
                "header flip at byte {} was accepted", pos
            );
        }
    }

    /// Duplicating any `key=value` token is always the typed
    /// `DuplicateKey` refusal.
    #[test]
    fn duplicated_keys_are_always_refused(req in arbitrary_request()) {
        let bytes = render_request(&req);
        let text = String::from_utf8(bytes).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // lines[1] is the verb line; stats/ping have no fields to dup.
        let tokens: Vec<String> =
            lines[1].split_whitespace().map(String::from).collect();
        if tokens.len() >= 2 {
            let dup = tokens[1].clone();
            lines[1] = format!("{} {}", lines[1], dup);
            let damaged = lines.join("\n");
            let key = dup.split('=').next().unwrap().to_string();
            prop_assert_eq!(
                parse_request(damaged.as_bytes()),
                Err(ParseError::DuplicateKey(key))
            );
        }
    }

    /// Arbitrary garbage bytes: totality, nothing more.
    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(0u32..256, 0..200)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let _ = parse_request(&bytes);
        let _ = parse_reply(&bytes);
    }
}
