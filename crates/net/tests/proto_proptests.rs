//! Property-based robustness of the `hinn-session v1` wire parser.
//!
//! The contract under test: parsing is *total* — for any byte sequence,
//! [`parse_request`] / [`parse_reply`] return either a correct value or a
//! typed [`ParseError`]; they never panic (a panic fails the proptest
//! outright) and never silently accept a structurally damaged message
//! (duplicated keys are the canonical smuggling vector and must always be
//! refused). Payload *integrity* against truncation and bit rot is the
//! framing layer's checksum's job; here we additionally pin that even
//! when such damage reaches the text parser it stays typed and
//! self-consistent.

use hinn_net::proto::{
    parse_reply, parse_request, render_reply, render_request, DoneSummary, EpochSummary, ErrorKind,
    ParseError, Reply, Request, ViewSummary, WireError,
};
use hinn_user::UserResponse;
use proptest::prelude::*;

/// Lowercase-ascii tenant names (the stub proptest has no regex-string
/// strategy).
fn tenant_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..26, 1..9).prop_map(|v| {
        v.into_iter()
            .map(|c| (b'a' + c as u8) as char)
            .collect::<String>()
    })
}

/// Printable-ascii free text.
fn printable(max: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(0u32..95, 0..max).prop_map(|v| {
        v.into_iter()
            .map(|c| (0x20 + c as u8) as char)
            .collect::<String>()
    })
}

/// `Option<u64>` epochs — the stub proptest has no `option::of`, so a
/// two-valued discriminant picks the arm.
fn optional_epoch() -> impl Strategy<Value = Option<u64>> {
    (0u32..2, 0u64..1_000_000).prop_map(|(some, epoch)| (some == 1).then_some(epoch))
}

fn arbitrary_request() -> impl Strategy<Value = Request> {
    let open = (
        tenant_name(),
        proptest::collection::vec(-1.0e9..1.0e9f64, 1..12),
    )
        .prop_map(|(tenant, query)| Request::Open { tenant, query });
    let submit = (
        0u64..1_000_000,
        0usize..20,
        0usize..20,
        prop_oneof![
            Just(UserResponse::Discard),
            (1.0e-12..1.0e6f64).prop_map(UserResponse::Threshold),
        ],
    )
        .prop_map(|(session, major, minor, response)| Request::Submit {
            session,
            major,
            minor,
            response,
        });
    let ingest = (
        tenant_name(),
        proptest::collection::vec(proptest::collection::vec(-1.0e9..1.0e9f64, 1..8), 1..5),
    )
        .prop_map(|(tenant, rows)| Request::Ingest { tenant, rows });
    let delete = (
        tenant_name(),
        proptest::collection::vec(0usize..100_000, 1..8),
    )
        .prop_map(|(tenant, ids)| Request::Delete { tenant, ids });
    let id = 0u64..1_000_000;
    prop_oneof![
        open,
        submit,
        ingest,
        delete,
        id.clone().prop_map(|session| Request::View { session }),
        id.clone().prop_map(|session| Request::Suspend { session }),
        id.clone().prop_map(|session| Request::Close { session }),
        id.clone().prop_map(|session| Request::Retire { session }),
        id.prop_map(|session| Request::Rebase { session }),
        Just(Request::Stats),
        Just(Request::Ping),
        Just(Request::Epoch),
    ]
}

fn arbitrary_reply() -> impl Strategy<Value = Reply> {
    let view = (
        0u64..1_000_000,
        0usize..10,
        0usize..10,
        0usize..100_000,
        0usize..100_000,
        (
            (0u32..4, -1.0e6..1.0e6f64, -1.0e6..1.0e6f64),
            optional_epoch(),
        ),
    )
        .prop_map(
            |(session, major, minor, alive, total, ((shed, qd, md), epoch))| {
                Reply::View(ViewSummary {
                    session,
                    major,
                    minor,
                    alive,
                    total,
                    shed: shed as u8,
                    query_density: qd,
                    max_density: md,
                    epoch,
                })
            },
        );
    let done = (
        0u64..1_000_000,
        1usize..10,
        1usize..100,
        0usize..5,
        proptest::collection::vec((0usize..100_000, 0.0..1.0f64), 0..20),
    )
        .prop_map(|(session, majors, support, degraded, pairs)| {
            let (neighbors, probabilities) = pairs.into_iter().unzip();
            Reply::Done(DoneSummary {
                session,
                majors,
                support,
                degraded,
                neighbors,
                probabilities,
            })
        });
    let err = (0u64..1000, optional_epoch(), printable(40)).prop_map(|(ms, epoch, message)| {
        Reply::Error(WireError {
            kind: ErrorKind::Overloaded,
            retry_after_ms: Some(ms),
            epoch,
            message,
        })
    });
    let epoch = (0u64..1_000_000, proptest::collection::vec(0u32..256, 16)).prop_map(
        |(epoch, fp_bytes)| {
            let fingerprint = fp_bytes
                .into_iter()
                .fold(0u128, |acc, b| (acc << 8) | u128::from(b as u8));
            Reply::Epoch(EpochSummary { epoch, fingerprint })
        },
    );
    prop_oneof![
        view,
        done,
        err,
        epoch,
        (0u64..1000).prop_map(|session| Reply::Suspended { session }),
        (0u64..1000).prop_map(|session| Reply::Closed { session }),
        Just(Reply::Pong),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Canonical round trip: bit-exact on every float.
    #[test]
    fn requests_round_trip(req in arbitrary_request()) {
        let bytes = render_request(&req);
        prop_assert_eq!(parse_request(&bytes).unwrap(), req);
    }

    #[test]
    fn replies_round_trip(reply in arbitrary_reply()) {
        let bytes = render_reply(&reply);
        prop_assert_eq!(parse_reply(&bytes).unwrap(), reply);
    }

    /// Truncation at every byte offset: the parser is total — a typed
    /// error or a self-consistent value, never a panic.
    #[test]
    fn truncated_requests_never_panic(req in arbitrary_request(), frac in 0.0..1.0f64) {
        let bytes = render_request(&req);
        let cut = ((bytes.len() as f64) * frac) as usize;
        match parse_request(&bytes[..cut]) {
            Err(_) => {} // typed refusal
            Ok(r) => {
                // A truncation that still parses (e.g. a shortened float)
                // must at least be a self-consistent message — rendering
                // and re-parsing it is the identity.
                let again = render_request(&r);
                prop_assert_eq!(parse_request(&again).unwrap(), r);
            }
        }
    }

    #[test]
    fn truncated_replies_never_panic(reply in arbitrary_reply(), frac in 0.0..1.0f64) {
        let bytes = render_reply(&reply);
        let cut = ((bytes.len() as f64) * frac) as usize;
        match parse_reply(&bytes[..cut]) {
            Err(_) => {}
            Ok(r) => {
                let again = render_reply(&r);
                prop_assert_eq!(parse_reply(&again).unwrap(), r);
            }
        }
    }

    /// A flipped bit anywhere: typed error or a value — never a panic —
    /// and a flip inside the header line is always refused.
    #[test]
    fn byte_flips_never_panic(
        req in arbitrary_request(),
        pos_frac in 0.0..1.0f64,
        bit in 0usize..8,
    ) {
        let mut bytes = render_request(&req);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        let _ = parse_request(&bytes); // totality is the assertion
        // "hinn-session v1" occupies bytes 0..15; any flip there changes
        // the header and must be refused with a typed error.
        if pos < 15 {
            prop_assert!(
                matches!(
                    parse_request(&bytes),
                    Err(ParseError::BadHeader(_)
                        | ParseError::UnsupportedVersion(_)
                        | ParseError::NotText
                        | ParseError::Empty
                        | ParseError::MissingBody(_))
                ),
                "header flip at byte {} was accepted", pos
            );
        }
    }

    /// Duplicating any `key=value` token is always the typed
    /// `DuplicateKey` refusal.
    #[test]
    fn duplicated_keys_are_always_refused(req in arbitrary_request()) {
        let bytes = render_request(&req);
        let text = String::from_utf8(bytes).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        // lines[1] is the verb line; stats/ping have no fields to dup.
        let tokens: Vec<String> =
            lines[1].split_whitespace().map(String::from).collect();
        if tokens.len() >= 2 {
            let dup = tokens[1].clone();
            lines[1] = format!("{} {}", lines[1], dup);
            let damaged = lines.join("\n");
            let key = dup.split('=').next().unwrap().to_string();
            prop_assert_eq!(
                parse_request(damaged.as_bytes()),
                Err(ParseError::DuplicateKey(key))
            );
        }
    }

    /// Forward tolerance of the `epoch=` field: a pre-epoch peer that
    /// omits it from a `view` or `err` line yields the same reply with
    /// `epoch: None` — never a refusal, never a silent default.
    #[test]
    fn missing_epoch_field_parses_to_none(reply in arbitrary_reply()) {
        // Only view/err carry an optional epoch; other replies skip the case.
        let case = match &reply {
            Reply::View(view) => view.epoch.map(|epoch| {
                let mut bare = view.clone();
                bare.epoch = None;
                (epoch, Reply::View(bare))
            }),
            Reply::Error(err) => err.epoch.map(|epoch| {
                let mut bare = err.clone();
                bare.epoch = None;
                (epoch, Reply::Error(bare))
            }),
            _ => None,
        };
        if let Some((epoch, stripped)) = case {
            let text = String::from_utf8(render_reply(&reply)).unwrap();
            let token = format!(" epoch={epoch}");
            prop_assert!(text.contains(&token), "epoch field missing from render");
            let damaged = text.replacen(&token, "", 1);
            prop_assert_eq!(parse_reply(damaged.as_bytes()).unwrap(), stripped);
        }
    }

    /// Arbitrary garbage bytes: totality, nothing more.
    #[test]
    fn arbitrary_bytes_never_panic(raw in proptest::collection::vec(0u32..256, 0..200)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let _ = parse_request(&bytes);
        let _ = parse_reply(&bytes);
    }
}
