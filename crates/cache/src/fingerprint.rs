//! 128-bit content fingerprints (FNV-1a) over exact input bits.
//!
//! Cache keys must identify the *full* input of the computation they
//! memoize, so the hasher consumes `f64` values by their IEEE-754 bit
//! patterns ([`f64::to_bits`]) — two inputs that differ in the last ulp
//! (or in the sign of zero) are different keys. 128 bits make an
//! accidental collision astronomically unlikely (~2⁻⁶⁴ across 2³² distinct
//! keys), which is the correctness argument for treating "same
//! fingerprint" as "same input" throughout the workspace.

/// A 128-bit content fingerprint. Construct with [`Fnv128`] or the
/// convenience constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Fingerprint of a flat `f64` slice (bit patterns plus length).
    pub fn of_f64s(values: &[f64]) -> Self {
        let mut h = Fnv128::new();
        h.write_usize(values.len());
        h.write_f64s(values);
        h.finish()
    }

    /// Fingerprint of a point set: every coordinate's bit pattern plus the
    /// outer and inner lengths (so `[[1.0],[2.0]]` ≠ `[[1.0,2.0]]`).
    pub fn of_points(points: &[Vec<f64>]) -> Self {
        let mut h = Fnv128::new();
        h.write_usize(points.len());
        for p in points {
            h.write_usize(p.len());
            h.write_f64s(p);
        }
        h.finish()
    }
}

/// Incremental FNV-1a hasher over 128 bits.
///
/// Cloneable so a common key prefix (e.g. dataset + query) can be hashed
/// once and forked per lookup.
#[derive(Clone, Debug)]
pub struct Fnv128 {
    state: u128,
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Fnv128 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Absorb one byte.
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= b as u128;
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    /// Absorb a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a `usize` (as `u64`, so fingerprints are width-portable).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorb one `f64` by bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a slice of `f64` bit patterns (no length — callers that need
    /// length-disambiguation write it explicitly).
    pub fn write_f64s(&mut self, values: &[f64]) {
        for &v in values {
            self.write_f64(v);
        }
    }

    /// Absorb a string (bytes plus length, so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Absorb an existing fingerprint (for key composition).
    pub fn write_fingerprint(&mut self, fp: Fingerprint) {
        self.write_bytes(&fp.0.to_le_bytes());
    }

    /// The fingerprint of everything absorbed so far.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl Default for Fnv128 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(Fnv128::new().finish().0, FNV_OFFSET);
    }

    #[test]
    fn distinguishes_bit_patterns() {
        let a = Fingerprint::of_f64s(&[0.0]);
        let b = Fingerprint::of_f64s(&[-0.0]);
        assert_ne!(a, b, "±0.0 are different inputs");
        let c = Fingerprint::of_f64s(&[1.0]);
        let d = Fingerprint::of_f64s(&[1.0 + f64::EPSILON]);
        assert_ne!(c, d, "one-ulp difference must change the key");
    }

    #[test]
    fn distinguishes_shapes() {
        let a = Fingerprint::of_points(&[vec![1.0], vec![2.0]]);
        let b = Fingerprint::of_points(&[vec![1.0, 2.0]]);
        assert_ne!(a, b);
        assert_ne!(
            Fingerprint::of_f64s(&[]),
            Fingerprint::of_f64s(&[0.0]),
            "length is part of the key"
        );
    }

    #[test]
    fn deterministic_across_calls() {
        let pts = vec![vec![1.5, -2.25, 3.0], vec![0.1, 0.2, 0.3]];
        assert_eq!(Fingerprint::of_points(&pts), Fingerprint::of_points(&pts));
    }

    #[test]
    fn prefix_forking_composes() {
        let mut prefix = Fnv128::new();
        prefix.write_str("dataset");
        let mut a = prefix.clone();
        a.write_u64(1);
        let mut b = prefix.clone();
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
        let mut whole = Fnv128::new();
        whole.write_str("dataset");
        whole.write_u64(1);
        assert_eq!(a.finish(), whole.finish());
    }
}
