//! Shared-artifact caching and amortized batch serving.
//!
//! The ROADMAP's "heavy traffic from millions of users" north star asks
//! the engine to stop recomputing dataset-global work for every query of
//! a batch: the whole-data statistics the `λᵢ/γᵢ` grading divides by, the
//! VA-file structure of the baseline filter, and the KDE grids of views
//! the session has already rendered. This crate is the infrastructure for
//! that amortization, shared by `hinn-core`, `hinn-kde`, and
//! `hinn-baselines`:
//!
//! - [`Fingerprint`]/[`Fnv128`]: 128-bit content fingerprints over the
//!   exact bit patterns of the inputs. Every cache in the workspace is
//!   **content-addressed** — a key is a fingerprint of everything the
//!   cached value depends on, so invalidation is structural (a changed
//!   input is a different key) and a hit can only ever return the exact
//!   bits a recomputation would produce.
//! - [`LruCache`]: a capacity-bounded, least-recently-used map from
//!   fingerprints to [`Arc`](std::sync::Arc)-shared values. Capacity 0
//!   disables it (every lookup computes; nothing is stored, no metrics
//!   are emitted), which is how the engine's "cache off" configuration is
//!   implemented. Hits, misses, and evictions are reported through
//!   `hinn-obs` as `cache.hit` / `cache.miss` / `cache.evict`.
//! - [`pool`]: thread-local reuse of `Vec<f64>` scratch buffers for the
//!   KDE hot loop (`p × p` partial grids and kernel row/column scratch).
//! - [`DatasetArtifacts`]/[`ArtifactStore`]: a per-dataset store of
//!   derived artifacts (global mean/covariance, per-direction variances,
//!   scaling statistics, the VA-file), computed once and shared via `Arc`
//!   across all queries of a batch and across repeated sessions on the
//!   same dataset (a bounded process-global registry keyed by the dataset
//!   fingerprint).
//!
//! # Determinism
//!
//! The workspace invariant — warm and cold runs are bit-identical for
//! every thread budget — holds because every cached value is the output
//! of a pure deterministic function and its key fingerprints *all* of
//! that function's inputs (full `f64` bit patterns, never rounded). A hit
//! therefore returns exactly what the miss path would have computed; the
//! only thing scheduling can change is *which* entries are resident, and
//! residency is unobservable in results. No cache in this crate ever
//! stores an algebraic shortcut (e.g. a variance reconstructed from a
//! covariance quadratic form): floating-point non-associativity would
//! make such a value differ in final bits from the scan it replaces.

pub mod artifacts;
pub mod fingerprint;
pub mod lru;
pub mod policy;
pub mod pool;

pub use artifacts::{ArtifactStore, DatasetArtifacts};
pub use fingerprint::{Fingerprint, Fnv128};
pub use lru::LruCache;
pub use policy::CachePolicy;
pub use pool::PooledF64;

/// Serializes unit tests that emit or assert on the process-global
/// telemetry sink (`hinn_obs::install` is global, so a concurrently
/// running cache operation in another test would pollute the counters).
#[cfg(test)]
pub(crate) mod testlock {
    use std::sync::{Mutex, MutexGuard};
    static LOCK: Mutex<()> = Mutex::new(());
    pub(crate) fn exclusive() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
