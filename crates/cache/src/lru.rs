//! A deterministic, capacity-bounded LRU cache of `Arc`-shared values.
//!
//! Keys are content [`Fingerprint`]s, so a resident value is by
//! construction the exact output of the computation the caller would
//! otherwise run (see the crate docs' determinism argument). Concurrent
//! use is safe: values are pure functions of their keys, so while the
//! *residency* of entries depends on thread interleaving, no observable
//! result does. Two racing misses on the same key may both compute; the
//! first insertion wins and both callers receive bit-identical values.
//!
//! Telemetry: each probe emits `cache.hit` or `cache.miss`, each eviction
//! `cache.evict` (via `hinn-obs`, no-ops unless a recorder is installed).
//! A capacity-0 cache is *disabled*: it always computes, stores nothing,
//! and stays silent.

use crate::fingerprint::Fingerprint;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

struct Slot<V> {
    value: Arc<V>,
    last_used: u64,
}

struct Inner<V> {
    map: HashMap<u128, Slot<V>>,
    tick: u64,
}

/// See the module docs.
pub struct LruCache<V> {
    capacity: usize,
    inner: Mutex<Inner<V>>,
}

impl<V> LruCache<V> {
    /// A cache holding at most `capacity` values (0 = disabled).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A capacity-0 cache computes everything and stores nothing.
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Resident entries (0 when disabled).
    pub fn len(&self) -> usize {
        if self.is_disabled() {
            return 0;
        }
        self.lock().map.len()
    }

    /// Is the cache empty (always true when disabled)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every resident entry.
    pub fn clear(&self) {
        if self.is_disabled() {
            return;
        }
        self.lock().map.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<V>> {
        // A panic while holding the lock leaves the map structurally
        // valid (no partial mutation spans an unwind point), so poisoning
        // is recovered rather than propagated.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Look up `key`, bumping its recency. Emits `cache.hit`/`cache.miss`.
    pub fn get(&self, key: Fingerprint) -> Option<Arc<V>> {
        if self.is_disabled() {
            return None;
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key.0) {
            Some(slot) => {
                slot.last_used = tick;
                hinn_obs::counter("cache.hit", 1);
                Some(slot.value.clone())
            }
            None => {
                hinn_obs::counter("cache.miss", 1);
                None
            }
        }
    }

    /// Insert `value` under `key`, evicting the least-recently-used entry
    /// if the cache is full. If the key is already resident (e.g. a racing
    /// miss computed the same value), the existing entry is kept — both
    /// are bit-identical by the purity contract. Returns the resident
    /// `Arc`.
    pub fn insert(&self, key: Fingerprint, value: V) -> Arc<V> {
        if self.is_disabled() {
            return Arc::new(value);
        }
        let mut inner = self.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(slot) = inner.map.get_mut(&key.0) {
            slot.last_used = tick;
            return slot.value.clone();
        }
        if inner.map.len() >= self.capacity {
            // Deterministic victim: the smallest last-used tick, with the
            // key ordering breaking (impossible-in-practice) tick ties.
            if let Some(&victim) = inner
                .map
                .iter()
                .min_by(|a, b| a.1.last_used.cmp(&b.1.last_used).then(a.0.cmp(b.0)))
                .map(|(k, _)| k)
            {
                inner.map.remove(&victim);
                hinn_obs::counter("cache.evict", 1);
            }
        }
        let value = Arc::new(value);
        inner.map.insert(
            key.0,
            Slot {
                value: value.clone(),
                last_used: tick,
            },
        );
        value
    }

    /// Remove `key`'s entry, returning it if it was resident. Unlike
    /// eviction this is a caller-initiated *ownership transfer* — used by
    /// stores whose values are checked out and re-inserted under the same
    /// key (e.g. suspended-session snapshots) — so it emits no
    /// `cache.evict` and bumps no probe counters.
    pub fn remove(&self, key: Fingerprint) -> Option<Arc<V>> {
        if self.is_disabled() {
            return None;
        }
        self.lock().map.remove(&key.0).map(|slot| slot.value)
    }

    /// The memoization workhorse: return the resident value for `key`, or
    /// compute it with `build` (outside the lock) and insert it. Disabled
    /// caches just call `build`.
    pub fn get_or_insert_with<F>(&self, key: Fingerprint, build: F) -> Arc<V>
    where
        F: FnOnce() -> V,
    {
        if self.is_disabled() {
            return Arc::new(build());
        }
        if let Some(v) = self.get(key) {
            return v;
        }
        self.insert(key, build())
    }

    /// Fallible [`get_or_insert_with`](LruCache::get_or_insert_with):
    /// errors are returned to the caller and never cached (a transient
    /// failure must not poison later lookups).
    pub fn get_or_try_insert_with<F, E>(&self, key: Fingerprint, build: F) -> Result<Arc<V>, E>
    where
        F: FnOnce() -> Result<V, E>,
    {
        if self.is_disabled() {
            return build().map(Arc::new);
        }
        if let Some(v) = self.get(key) {
            return Ok(v);
        }
        Ok(self.insert(key, build()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(k: u128) -> Fingerprint {
        Fingerprint(k)
    }

    // Every test takes the crate test lock: cache operations emit global
    // telemetry, and a concurrently installed recorder in another test
    // would otherwise see this test's counters.

    #[test]
    fn hit_returns_the_stored_value() {
        let _x = crate::testlock::exclusive();
        let c: LruCache<u64> = LruCache::new(4);
        let a = c.get_or_insert_with(fp(1), || 42);
        let b = c.get_or_insert_with(fp(1), || panic!("must not recompute"));
        assert_eq!(*a, 42);
        assert!(Arc::ptr_eq(&a, &b), "hit shares the same allocation");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let _x = crate::testlock::exclusive();
        let c: LruCache<u64> = LruCache::new(2);
        c.insert(fp(1), 10);
        c.insert(fp(2), 20);
        assert!(c.get(fp(1)).is_some()); // 2 is now the LRU entry
        c.insert(fp(3), 30);
        assert_eq!(c.len(), 2);
        assert!(c.get(fp(2)).is_none(), "LRU entry evicted");
        assert!(c.get(fp(1)).is_some());
        assert!(c.get(fp(3)).is_some());
    }

    #[test]
    fn remove_transfers_ownership_out() {
        let _x = crate::testlock::exclusive();
        let c: LruCache<u64> = LruCache::new(2);
        c.insert(fp(1), 10);
        let taken = c.remove(fp(1));
        assert_eq!(taken.as_deref(), Some(&10));
        assert!(c.remove(fp(1)).is_none(), "second remove finds nothing");
        // The slot is genuinely free again: a re-insert under the same key
        // stores the *new* value (insert keeps existing entries otherwise).
        let v = c.insert(fp(1), 11);
        assert_eq!(*v, 11);
    }

    #[test]
    fn capacity_zero_disables_storage() {
        let _x = crate::testlock::exclusive();
        let c: LruCache<u64> = LruCache::new(0);
        let mut calls = 0;
        for _ in 0..3 {
            let v = c.get_or_insert_with(fp(7), || {
                calls += 1;
                9
            });
            assert_eq!(*v, 9);
        }
        assert_eq!(calls, 3, "disabled cache always computes");
        assert_eq!(c.len(), 0);
        assert!(c.is_disabled());
    }

    #[test]
    fn errors_are_not_cached() {
        let _x = crate::testlock::exclusive();
        let c: LruCache<u64> = LruCache::new(4);
        let r: Result<_, &str> = c.get_or_try_insert_with(fp(5), || Err("transient"));
        assert!(r.is_err());
        assert_eq!(c.len(), 0);
        let ok: Result<_, &str> = c.get_or_try_insert_with(fp(5), || Ok(1));
        assert_eq!(*ok.unwrap(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn duplicate_insert_keeps_first_value() {
        let _x = crate::testlock::exclusive();
        let c: LruCache<u64> = LruCache::new(4);
        let a = c.insert(fp(1), 1);
        let b = c.insert(fp(1), 2);
        assert_eq!(*a, 1);
        assert_eq!(*b, 1, "first insertion wins");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn concurrent_use_is_safe_and_consistent() {
        let _x = crate::testlock::exclusive();
        let c: Arc<LruCache<u64>> = Arc::new(LruCache::new(8));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..100u128 {
                        let k = i % 16;
                        let v = c.get_or_insert_with(fp(k), || k as u64);
                        assert_eq!(*v, k as u64, "values are pure functions of keys");
                    }
                    let _ = t;
                });
            }
        });
    }

    #[test]
    fn counters_flow_to_obs() {
        let _x = crate::testlock::exclusive();
        let rec = Arc::new(hinn_obs::SessionRecorder::new());
        let report = {
            let _g = hinn_obs::install(rec.clone());
            let c: LruCache<u64> = LruCache::new(1);
            c.get_or_insert_with(fp(1), || 1); // miss
            c.get_or_insert_with(fp(1), || 1); // hit
            c.get_or_insert_with(fp(2), || 2); // miss + evict
            rec.report()
        };
        assert_eq!(report.counter("cache.hit"), 1);
        assert_eq!(report.counter("cache.miss"), 2);
        assert_eq!(report.counter("cache.evict"), 1);
    }

    #[test]
    fn disabled_cache_emits_no_counters() {
        let _x = crate::testlock::exclusive();
        let rec = Arc::new(hinn_obs::SessionRecorder::new());
        let report = {
            let _g = hinn_obs::install(rec.clone());
            let c: LruCache<u64> = LruCache::new(0);
            c.get_or_insert_with(fp(1), || 1);
            c.get_or_insert_with(fp(1), || 1);
            rec.report()
        };
        assert_eq!(report.counter("cache.hit"), 0);
        assert_eq!(report.counter("cache.miss"), 0);
    }
}
