//! Per-dataset derived artifacts, computed once and shared.
//!
//! A [`DatasetArtifacts`] is the cache home for everything derivable from
//! one immutable point set: global mean and covariance, per-direction
//! variances, scaling statistics, the VA-file of the baseline filter.
//! The store is type-erased ([`ArtifactStore`]) so downstream crates
//! (`hinn-core`, `hinn-baselines`) can park their own artifact types here
//! without this crate depending on them — keys are a static name plus a
//! `u64` parameter (e.g. `("baselines.vafile", bits)`).
//!
//! [`DatasetArtifacts::for_points`] routes through a small process-global
//! registry keyed by the dataset's content fingerprint, so *repeated
//! sessions on the same dataset* — the batch-serving steady state — share
//! one `Arc` and therefore one copy of every artifact.

use crate::fingerprint::Fingerprint;
use std::any::Any;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

type StoredArtifact = Arc<dyn Any + Send + Sync>;

/// A name-keyed store of `Arc`-shared artifacts (see module docs).
///
/// Artifacts are insert-once: the first computation for a key is kept and
/// every later request shares it. Probes emit `cache.hit`/`cache.miss`.
#[derive(Default)]
pub struct ArtifactStore {
    inner: Mutex<BTreeMap<(&'static str, u64), StoredArtifact>>,
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored artifacts.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<(&'static str, u64), StoredArtifact>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Peek at the artifact under `(name, param)` without computing —
    /// `None` when absent or stored under a different type. Epoch-chained
    /// index builders use this to find a predecessor epoch's structure to
    /// extend instead of rebuilding from scratch.
    pub fn get<T>(&self, name: &'static str, param: u64) -> Option<Arc<T>>
    where
        T: Send + Sync + 'static,
    {
        self.lock()
            .get(&(name, param))
            .cloned()
            .and_then(|stored| stored.downcast::<T>().ok())
    }

    /// The artifact under `(name, param)`, computing and storing it with
    /// `build` on first request. `build` runs outside the lock; if two
    /// threads race, the first insertion wins (both computed the same
    /// value — artifacts are pure functions of the dataset and the key).
    ///
    /// Returns `None` only if the stored artifact under this key has a
    /// different type than `T` — a programming error (two call sites
    /// sharing a name but not a type); callers treat it as a miss that
    /// cannot be stored.
    pub fn get_or_insert<T, F>(&self, name: &'static str, param: u64, build: F) -> Option<Arc<T>>
    where
        T: Send + Sync + 'static,
        F: FnOnce() -> T,
    {
        if let Some(stored) = self.lock().get(&(name, param)).cloned() {
            hinn_obs::counter("cache.hit", 1);
            return stored.downcast::<T>().ok();
        }
        hinn_obs::counter("cache.miss", 1);
        let value = Arc::new(build());
        let mut inner = self.lock();
        let slot = inner
            .entry((name, param))
            .or_insert_with(|| value.clone() as StoredArtifact);
        slot.clone().downcast::<T>().ok()
    }
}

impl std::fmt::Debug for ArtifactStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let keys: Vec<_> = self.lock().keys().cloned().collect();
        f.debug_struct("ArtifactStore")
            .field("keys", &keys)
            .finish()
    }
}

/// Everything derived from one immutable dataset (see module docs).
#[derive(Debug)]
pub struct DatasetArtifacts {
    fingerprint: Fingerprint,
    n_points: usize,
    dims: usize,
    store: ArtifactStore,
}

/// Bounded process-global registry of datasets recently served.
const REGISTRY_CAPACITY: usize = 8;
static REGISTRY: Mutex<Vec<(u128, Arc<DatasetArtifacts>, u64)>> = Mutex::new(Vec::new());
static REGISTRY_TICK: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl DatasetArtifacts {
    /// Compute the artifacts shell for `points` (fingerprint + empty
    /// store). Prefer [`DatasetArtifacts::for_points`], which shares the
    /// shell across sessions.
    pub fn compute(points: &[Vec<f64>]) -> Self {
        Self {
            fingerprint: Fingerprint::of_points(points),
            n_points: points.len(),
            dims: points.first().map(|p| p.len()).unwrap_or(0),
            store: ArtifactStore::new(),
        }
    }

    /// The shared artifacts of `points`: hashes the dataset (`O(n·d)`) and
    /// returns the registry's `Arc` for that fingerprint, creating (and,
    /// beyond [`REGISTRY_CAPACITY`] datasets, evicting least-recently
    /// used) as needed.
    pub fn for_points(points: &[Vec<f64>]) -> Arc<Self> {
        let fp = Fingerprint::of_points(points);
        let tick = REGISTRY_TICK.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = reg.iter_mut().find(|(k, _, _)| *k == fp.0) {
            entry.2 = tick;
            hinn_obs::counter("cache.hit", 1);
            return entry.1.clone();
        }
        hinn_obs::counter("cache.miss", 1);
        if reg.len() >= REGISTRY_CAPACITY {
            if let Some(pos) = reg
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
            {
                reg.swap_remove(pos);
                hinn_obs::counter("cache.evict", 1);
            }
        }
        let arts = Arc::new(Self {
            fingerprint: fp,
            n_points: points.len(),
            dims: points.first().map(|p| p.len()).unwrap_or(0),
            store: ArtifactStore::new(),
        });
        reg.push((fp.0, arts.clone(), tick));
        arts
    }

    /// The shared artifacts of a dataset already identified by a content
    /// fingerprint — the epoch path: `EpochSnapshot`s carry their chained
    /// fingerprint, so sharing the shell is `O(1)` instead of the
    /// `O(n·d)` re-hash [`DatasetArtifacts::for_points`] pays. Uses the
    /// same registry (same LRU bound, same hit/miss/evict counters); the
    /// caller supplies the shape the shell reports.
    pub fn for_fingerprint(fp: Fingerprint, n_points: usize, dims: usize) -> Arc<Self> {
        let tick = REGISTRY_TICK.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(entry) = reg.iter_mut().find(|(k, _, _)| *k == fp.0) {
            entry.2 = tick;
            hinn_obs::counter("cache.hit", 1);
            return entry.1.clone();
        }
        hinn_obs::counter("cache.miss", 1);
        if reg.len() >= REGISTRY_CAPACITY {
            if let Some(pos) = reg
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
            {
                reg.swap_remove(pos);
                hinn_obs::counter("cache.evict", 1);
            }
        }
        let arts = Arc::new(Self {
            fingerprint: fp,
            n_points,
            dims,
            store: ArtifactStore::new(),
        });
        reg.push((fp.0, arts.clone(), tick));
        arts
    }

    /// Peek the registry for a fingerprint without creating a shell (and
    /// without touching its LRU position or counters) — for opportunistic
    /// reuse, e.g. extending a predecessor epoch's index instead of
    /// rebuilding. `None` when the dataset was never registered or has
    /// been evicted.
    pub fn lookup(fp: Fingerprint) -> Option<Arc<Self>> {
        let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        reg.iter()
            .find(|(k, _, _)| *k == fp.0)
            .map(|(_, arts, _)| arts.clone())
    }

    /// The dataset's content fingerprint.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fingerprint
    }

    /// Number of points in the dataset.
    pub fn n_points(&self) -> usize {
        self.n_points
    }

    /// Dimensionality of the dataset.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The artifact store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(seed: f64) -> Vec<Vec<f64>> {
        (0..10)
            .map(|i| vec![seed + i as f64, seed * 2.0 - i as f64])
            .collect()
    }

    #[test]
    fn store_computes_once_per_key() {
        let _x = crate::testlock::exclusive();
        let store = ArtifactStore::new();
        let mut calls = 0;
        for _ in 0..3 {
            let v: Arc<Vec<f64>> = store
                .get_or_insert("test.mean", 0, || {
                    calls += 1;
                    vec![1.0, 2.0]
                })
                .expect("consistent type");
            assert_eq!(*v, vec![1.0, 2.0]);
        }
        assert_eq!(calls, 1);
        assert_eq!(store.len(), 1);
        // A different param is a different artifact.
        let _: Option<Arc<Vec<f64>>> = store.get_or_insert("test.mean", 1, || vec![9.0]);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn store_type_mismatch_is_none_not_panic() {
        let _x = crate::testlock::exclusive();
        let store = ArtifactStore::new();
        let _: Option<Arc<u64>> = store.get_or_insert("test.poly", 0, || 5u64);
        let wrong: Option<Arc<String>> = store.get_or_insert("test.poly", 0, || "x".to_string());
        assert!(wrong.is_none(), "type mismatch must surface as None");
    }

    #[test]
    fn same_dataset_shares_one_arc() {
        let _x = crate::testlock::exclusive();
        let a = DatasetArtifacts::for_points(&pts(1.0));
        let b = DatasetArtifacts::for_points(&pts(1.0));
        assert!(Arc::ptr_eq(&a, &b), "registry must share the shell");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.n_points(), 10);
        assert_eq!(a.dims(), 2);
        let c = DatasetArtifacts::for_points(&pts(2.0));
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn artifacts_persist_across_sessions_on_one_dataset() {
        let _x = crate::testlock::exclusive();
        let data = pts(3.5);
        let mut calls = 0;
        for _ in 0..3 {
            // A fresh `for_points` per "session" still finds the artifact.
            let arts = DatasetArtifacts::for_points(&data);
            let _: Option<Arc<f64>> = arts.store().get_or_insert("test.stat", 7, || {
                calls += 1;
                42.0
            });
        }
        assert_eq!(calls, 1, "artifact computed once across sessions");
    }

    #[test]
    fn get_peeks_without_computing() {
        let _x = crate::testlock::exclusive();
        let store = ArtifactStore::new();
        assert!(store.get::<u64>("test.peek", 0).is_none());
        let _: Option<Arc<u64>> = store.get_or_insert("test.peek", 0, || 11u64);
        assert_eq!(store.get::<u64>("test.peek", 0).as_deref(), Some(&11));
        assert!(
            store.get::<String>("test.peek", 0).is_none(),
            "type mismatch must surface as None"
        );
    }

    #[test]
    fn for_fingerprint_shares_the_shell_with_for_points() {
        let _x = crate::testlock::exclusive();
        let data = pts(9.0);
        let a = DatasetArtifacts::for_points(&data);
        let b = DatasetArtifacts::for_fingerprint(a.fingerprint(), data.len(), 2);
        assert!(
            Arc::ptr_eq(&a, &b),
            "fingerprint route must share the shell"
        );
        let c = DatasetArtifacts::for_fingerprint(Fingerprint(0xDEAD), 3, 4);
        assert_eq!(c.n_points(), 3);
        assert_eq!(c.dims(), 4);
        let d = DatasetArtifacts::for_fingerprint(Fingerprint(0xDEAD), 3, 4);
        assert!(Arc::ptr_eq(&c, &d));
    }

    #[test]
    fn registry_is_bounded() {
        let _x = crate::testlock::exclusive();
        for i in 0..(2 * REGISTRY_CAPACITY) {
            let _ = DatasetArtifacts::for_points(&pts(100.0 + i as f64));
        }
        let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        assert!(reg.len() <= REGISTRY_CAPACITY);
    }
}
