//! Thread-local reuse of `f64` scratch buffers.
//!
//! The KDE hot loop allocates the same shapes over and over — a `p × p`
//! partial grid and two length-`p` kernel scratch vectors per chunk of
//! data points, for every minor iteration of every query. [`PooledF64`]
//! keeps returned buffers on a small per-thread free list so steady-state
//! serving stops hitting the allocator.
//!
//! Determinism: [`PooledF64::take_zeroed`] hands out buffers whose every
//! element is `0.0` — exactly what `vec![0.0; len]` yields — so pooled and
//! fresh buffers are indistinguishable to the computation. The pool is
//! thread-local, so there is no cross-thread coupling to schedule against.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Per-thread free list size; excess buffers drop back to the allocator.
const MAX_POOLED: usize = 16;

thread_local! {
    static POOL: RefCell<Vec<Vec<f64>>> = const { RefCell::new(Vec::new()) };
}

/// An owned `f64` buffer drawn from (and returned to) the calling
/// thread's pool. Dereferences to `[f64]`.
#[derive(Debug)]
pub struct PooledF64 {
    buf: Vec<f64>,
}

impl PooledF64 {
    /// A buffer of `len` zeros — bit-identical to `vec![0.0; len]`.
    pub fn take_zeroed(len: usize) -> Self {
        let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        Self { buf }
    }

    /// The buffer length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for PooledF64 {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.buf
    }
}

impl DerefMut for PooledF64 {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf
    }
}

impl Drop for PooledF64 {
    fn drop(&mut self) {
        if self.buf.capacity() == 0 {
            return;
        }
        let buf = std::mem::take(&mut self.buf);
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_start_zeroed() {
        {
            let mut b = PooledF64::take_zeroed(8);
            for v in b.iter_mut() {
                *v = 7.5;
            }
        } // returned to the pool dirty
        let b = PooledF64::take_zeroed(8);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffer must be zeroed");
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn resize_across_lengths_is_safe() {
        drop(PooledF64::take_zeroed(4));
        let big = PooledF64::take_zeroed(32);
        assert_eq!(big.len(), 32);
        assert!(big.iter().all(|&v| v == 0.0));
        drop(big);
        let small = PooledF64::take_zeroed(2);
        assert_eq!(small.len(), 2);
    }

    #[test]
    fn reuses_the_same_allocation() {
        // Warm the pool, then check the capacity survives the round trip.
        drop(PooledF64::take_zeroed(100));
        let b = PooledF64::take_zeroed(10);
        assert!(b.buf.capacity() >= 100, "allocation was reused");
    }

    #[test]
    fn pool_is_bounded() {
        let held: Vec<PooledF64> = (0..2 * MAX_POOLED)
            .map(|_| PooledF64::take_zeroed(4))
            .collect();
        drop(held);
        POOL.with(|p| assert!(p.borrow().len() <= MAX_POOLED));
    }
}
