//! Capacity policy for the engine's session-level caches.

/// How much each session-level cache may hold. A capacity of 0 disables
/// that cache (compute-always); [`CachePolicy::disabled`] turns every
/// cache off, which is the reference configuration the equivalence tests
/// compare warm runs against.
///
/// Capacities bound *entries*, not bytes. The big-ticket entries are the
/// per-subspace projected coordinates (`n × l` floats each), which is why
/// their default capacity is the smallest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachePolicy {
    /// Per-view projection results (the output of the Fig. 3 halving
    /// pipeline, including its degradation events).
    pub projection_capacity: usize,
    /// Rendered KDE visual profiles (grid + bandwidth + query cell).
    pub profile_capacity: usize,
    /// Per-direction data variances `γᵢ` (the denominators of the
    /// `λᵢ/γᵢ` grading).
    pub gamma_capacity: usize,
    /// Whole-data coordinates projected into a search subspace.
    pub coords_capacity: usize,
}

impl Default for CachePolicy {
    fn default() -> Self {
        Self {
            projection_capacity: 64,
            profile_capacity: 64,
            gamma_capacity: 512,
            coords_capacity: 4,
        }
    }
}

impl CachePolicy {
    /// Every cache off: the engine recomputes everything, byte-for-byte
    /// the pre-cache behavior.
    pub fn disabled() -> Self {
        Self {
            projection_capacity: 0,
            profile_capacity: 0,
            gamma_capacity: 0,
            coords_capacity: 0,
        }
    }

    /// Is every cache off?
    pub fn is_disabled(&self) -> bool {
        self.projection_capacity == 0
            && self.profile_capacity == 0
            && self.gamma_capacity == 0
            && self.coords_capacity == 0
    }

    /// A uniform small policy, handy for eviction-heavy tests.
    pub fn with_uniform_capacity(capacity: usize) -> Self {
        Self {
            projection_capacity: capacity,
            profile_capacity: capacity,
            gamma_capacity: capacity,
            coords_capacity: capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_enabled() {
        assert!(!CachePolicy::default().is_disabled());
    }

    #[test]
    fn disabled_is_disabled() {
        assert!(CachePolicy::disabled().is_disabled());
        assert_eq!(
            CachePolicy::with_uniform_capacity(0),
            CachePolicy::disabled()
        );
        assert!(!CachePolicy::with_uniform_capacity(1).is_disabled());
    }
}
