//! Model-based property tests of [`hinn_cache::LruCache`] (ISSUE 6
//! satellite 3).
//!
//! PR 5's session manager leans on three `LruCache` behaviors that were
//! until now only exercised indirectly through `serve_soak`: `remove` is
//! an ownership *transfer* (the slot is genuinely free afterwards),
//! eviction follows the tick order exactly (least-recently-used first,
//! key-ordered on ties), and capacity 0 disables storage entirely. These
//! tests replay arbitrary operation sequences against a transparent
//! reference model and require the cache to agree with it at every step.

use hinn_cache::{Fingerprint, LruCache};
use proptest::prelude::*;

/// The reference model: a plain vector of `(key, value, last_used)`
/// entries plus the same tick counter the implementation keeps.
#[derive(Default)]
struct Model {
    entries: Vec<(u128, u64, u64)>,
    tick: u64,
    capacity: usize,
}

impl Model {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            ..Self::default()
        }
    }

    fn position(&self, key: u128) -> Option<usize> {
        self.entries.iter().position(|&(k, _, _)| k == key)
    }

    /// Mirror of `LruCache::get`: bump tick, bump recency on hit.
    fn get(&mut self, key: u128) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        match self.position(key) {
            Some(i) => {
                self.entries[i].2 = tick;
                Some(self.entries[i].1)
            }
            None => None,
        }
    }

    /// Mirror of `LruCache::insert`: first insertion wins; a full cache
    /// evicts the entry with the smallest `(last_used, key)`.
    fn insert(&mut self, key: u128, value: u64) -> u64 {
        if self.capacity == 0 {
            return value;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(i) = self.position(key) {
            self.entries[i].2 = tick;
            return self.entries[i].1;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, &(k, _, t))| (t, k))
                .map(|(i, _)| i)
            {
                self.entries.remove(victim);
            }
        }
        self.entries.push((key, value, tick));
        value
    }

    /// Mirror of `LruCache::remove`: ownership transfer, no tick bump.
    fn remove(&mut self, key: u128) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        self.position(key).map(|i| self.entries.remove(i).1)
    }
}

/// One scripted operation: `(kind, key, value)`.
type Op = (u32, u64, u64);

fn apply(cache: &LruCache<u64>, model: &mut Model, op: Op) {
    let (kind, key, value) = op;
    let fp = Fingerprint(key as u128);
    match kind % 4 {
        0 => {
            let got = cache.get(fp).map(|v| *v);
            assert_eq!(got, model.get(key as u128), "get({key}) diverged");
        }
        1 => {
            let got = *cache.insert(fp, value);
            assert_eq!(got, model.insert(key as u128, value), "insert({key})");
        }
        2 => {
            let got = cache.remove(fp).map(|v| *v);
            assert_eq!(got, model.remove(key as u128), "remove({key}) diverged");
        }
        _ => {
            // get_or_insert_with is exactly get-then-insert-on-miss.
            let got = *cache.get_or_insert_with(fp, || value);
            let expect = match model.get(key as u128) {
                Some(v) => v,
                None => model.insert(key as u128, value),
            };
            assert_eq!(got, expect, "get_or_insert({key}) diverged");
        }
    }
    // Step invariants: same residency, bounded occupancy.
    assert_eq!(cache.len(), model.entries.len(), "len diverged");
    assert!(cache.len() <= cache.capacity(), "capacity exceeded");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The cache agrees with the reference model on every operation of an
    /// arbitrary script, over a small key space (to force collisions,
    /// re-inserts, and evictions) and capacities 1..=5.
    #[test]
    fn cache_matches_reference_model(
        capacity in 1..6usize,
        ops in proptest::collection::vec((0..4u32, 0..9u64, 0..1000u64), 1..120),
    ) {
        let cache: LruCache<u64> = LruCache::new(capacity);
        let mut model = Model::new(capacity);
        for op in ops {
            apply(&cache, &mut model, op);
        }
    }

    /// Capacity 0 stores nothing, returns nothing, and always recomputes.
    #[test]
    fn capacity_zero_never_stores(
        ops in proptest::collection::vec((0..4u32, 0..9u64, 0..1000u64), 1..60),
    ) {
        let cache: LruCache<u64> = LruCache::new(0);
        let mut model = Model::new(0);
        prop_assert!(cache.is_disabled());
        for op in ops {
            apply(&cache, &mut model, op);
            prop_assert_eq!(cache.len(), 0);
        }
    }

    /// `remove` frees the slot for real: a later insert under the same key
    /// stores the *new* value (a mere eviction-count bump would keep the
    /// stale one), and the removed value survives as a plain `Arc`.
    #[test]
    fn remove_is_an_ownership_transfer(
        key in 0..9u64,
        first in 0..1000u64,
        second in 1000..2000u64,
    ) {
        let cache: LruCache<u64> = LruCache::new(3);
        cache.insert(Fingerprint(key as u128), first);
        let taken = cache.remove(Fingerprint(key as u128));
        prop_assert_eq!(taken.as_deref(), Some(&first));
        prop_assert_eq!(cache.remove(Fingerprint(key as u128)), None);
        let resident = cache.insert(Fingerprint(key as u128), second);
        prop_assert_eq!(*resident, second, "slot must be genuinely free");
    }
}

/// Deterministic tick-order eviction, pinned without the model: touch
/// order dictates the victim exactly.
#[test]
fn eviction_follows_touch_order_exactly() {
    let cache: LruCache<u64> = LruCache::new(3);
    for k in 0..3u128 {
        cache.insert(Fingerprint(k), k as u64);
    }
    // Touch 0 and 2; 1 becomes the LRU entry.
    assert!(cache.get(Fingerprint(0)).is_some());
    assert!(cache.get(Fingerprint(2)).is_some());
    cache.insert(Fingerprint(9), 9);
    assert!(cache.get(Fingerprint(1)).is_none(), "LRU victim was 1");
    for k in [0u128, 2, 9] {
        assert!(cache.get(Fingerprint(k)).is_some(), "{k} must survive");
    }
}
