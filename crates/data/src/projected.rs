//! Synthetic projected-cluster generator, after the data generation method
//! of Aggarwal & Yu, SIGMOD 2000 (reference \[4\] of the paper).
//!
//! §4.1: "We generated a set of sparse synthetic data sets in high
//! dimensionality, such that projected clusters were embedded in lower
//! dimensional subspaces. … These data sets contain 6-dimensional projected
//! clusters embedded in 20 dimensional data", `N = 5000`.
//!
//! Each cluster lives in its own low-dimensional subspace: along the
//! cluster's subspace directions the points concentrate tightly around an
//! anchor; along every other direction they are spread uniformly across the
//! whole data range, so the cluster is invisible in full dimensionality —
//! the regime in which the paper's interactive method earns its keep. Both
//! axis-parallel ("Case 1") and arbitrarily-oriented ("Case 2") subspaces
//! are supported, mirroring the generalized projected clusters of \[4\].
//! As in \[4\], consecutive clusters inherit about half of their subspace
//! dimensions from the previous cluster, producing realistic overlap.

use crate::dataset::Dataset;
use hinn_linalg::Subspace;
use rand::Rng;

/// Draw a standard normal deviate (Box–Muller; the offline `rand` has no
/// normal distribution without `rand_distr`).
pub fn randn<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Subspace orientation of the generated clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Orientation {
    /// Cluster subspaces are spanned by original attributes (Case 1).
    AxisParallel,
    /// Cluster subspaces are arbitrary orthonormal systems (Case 2).
    Arbitrary,
}

/// Parameters of the projected-cluster generator.
#[derive(Clone, Debug)]
pub struct ProjectedClusterSpec {
    /// Dataset name used in reports.
    pub name: String,
    /// Total number of points `N` (clusters + outliers).
    pub n_points: usize,
    /// Full dimensionality `d`.
    pub dim: usize,
    /// Number of projected clusters `k`.
    pub n_clusters: usize,
    /// Dimensionality of each cluster's subspace (the paper's 6).
    pub cluster_dim: usize,
    /// Fraction of points generated as uniform outliers.
    pub outlier_fraction: f64,
    /// Data range: every coordinate lies in `[0, range]`.
    pub range: f64,
    /// Base standard deviation of a cluster along its subspace directions
    /// (multiplied by a per-direction factor in `[0.5, 1.5]`).
    pub spread: f64,
    /// Axis-parallel (Case 1) or arbitrary (Case 2) subspaces.
    pub orientation: Orientation,
}

impl ProjectedClusterSpec {
    /// "Case 1" of §4.1: `N = 5000`, `d = 20`, 6-d axis-parallel clusters.
    pub fn case1() -> Self {
        Self {
            name: "Synthetic 1 (Case 1)".into(),
            n_points: 5000,
            dim: 20,
            n_clusters: 5,
            cluster_dim: 6,
            outlier_fraction: 0.05,
            range: 100.0,
            spread: 2.0,
            orientation: Orientation::AxisParallel,
        }
    }

    /// "Case 2" of §4.1: as Case 1 but with arbitrarily-oriented
    /// (generalized) cluster subspaces.
    pub fn case2() -> Self {
        Self {
            name: "Synthetic 2 (Case 2)".into(),
            orientation: Orientation::Arbitrary,
            ..Self::case1()
        }
    }

    /// A small, fast instance for tests and doc examples.
    pub fn small_test() -> Self {
        Self {
            name: "small-test".into(),
            n_points: 300,
            dim: 8,
            n_clusters: 2,
            cluster_dim: 4,
            outlier_fraction: 0.05,
            range: 100.0,
            spread: 2.0,
            orientation: Orientation::AxisParallel,
        }
    }

    fn validate(&self) {
        assert!(self.n_points > 0, "spec: n_points must be positive");
        assert!(self.dim >= 2, "spec: need at least 2 dimensions");
        assert!(self.n_clusters > 0, "spec: need at least one cluster");
        assert!(
            self.cluster_dim >= 1 && self.cluster_dim <= self.dim,
            "spec: cluster_dim must be in [1, dim]"
        );
        assert!(
            (0.0..1.0).contains(&self.outlier_fraction),
            "spec: outlier_fraction must be in [0, 1)"
        );
        assert!(
            self.range > 0.0 && self.spread > 0.0,
            "spec: range/spread must be positive"
        );
    }
}

/// Ground truth for one generated cluster (used by evaluation code).
#[derive(Clone, Debug)]
pub struct ClusterInfo {
    /// The cluster's subspace in ambient coordinates.
    pub subspace: Subspace,
    /// The anchor point around which the cluster concentrates.
    pub anchor: Vec<f64>,
    /// Per-subspace-direction standard deviations.
    pub sigmas: Vec<f64>,
    /// Number of points generated for this cluster.
    pub size: usize,
}

/// Generate the dataset and return the full ground truth.
pub fn generate_projected_clusters_detailed<R: Rng>(
    spec: &ProjectedClusterSpec,
    rng: &mut R,
) -> (Dataset, Vec<ClusterInfo>) {
    spec.validate();
    let d = spec.dim;
    let n_out = (spec.n_points as f64 * spec.outlier_fraction).round() as usize;
    let n_clustered = spec.n_points - n_out;

    // Cluster sizes: proportions drawn uniformly from [1, 2], normalized
    // (mirrors the randomized proportions of [4]).
    let raw: Vec<f64> = (0..spec.n_clusters)
        .map(|_| rng.gen_range(1.0..2.0))
        .collect();
    let total: f64 = raw.iter().sum();
    let mut sizes: Vec<usize> = raw
        .iter()
        .map(|r| ((r / total) * n_clustered as f64).floor() as usize)
        .collect();
    let assigned: usize = sizes.iter().sum();
    // Distribute the rounding remainder.
    for i in 0..(n_clustered - assigned) {
        sizes[i % spec.n_clusters] += 1;
    }

    let mut points = Vec::with_capacity(spec.n_points);
    let mut labels = Vec::with_capacity(spec.n_points);
    let mut infos = Vec::with_capacity(spec.n_clusters);
    let mut prev_dims: Vec<usize> = Vec::new();

    for (c, &size) in sizes.iter().enumerate() {
        let subspace = match spec.orientation {
            Orientation::AxisParallel => {
                let dims = pick_dims_with_inheritance(d, spec.cluster_dim, &prev_dims, rng);
                prev_dims = dims.clone();
                let basis: Vec<Vec<f64>> = dims
                    .iter()
                    .map(|&i| {
                        let mut e = vec![0.0; d];
                        e[i] = 1.0;
                        e
                    })
                    .collect();
                Subspace::from_vectors(d, &basis)
            }
            Orientation::Arbitrary => random_subspace(d, spec.cluster_dim, rng),
        };
        let anchor: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..spec.range)).collect();
        let sigmas: Vec<f64> = (0..subspace.dim())
            .map(|_| spec.spread * rng.gen_range(0.5..1.5))
            .collect();
        let anchor_coords = subspace.project(&anchor);

        for _ in 0..size {
            // Start from a uniform full-space point, then overwrite its
            // component inside the cluster subspace with anchor + Gaussian.
            let mut x: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..spec.range)).collect();
            let x_coords = subspace.project(&x);
            for k in 0..subspace.dim() {
                let target = anchor_coords[k] + sigmas[k] * randn(rng);
                let delta = target - x_coords[k];
                hinn_linalg::vector::axpy(delta, &subspace.basis()[k], &mut x);
            }
            points.push(x);
            labels.push(Some(c));
        }
        infos.push(ClusterInfo {
            subspace,
            anchor,
            sigmas,
            size,
        });
    }

    for _ in 0..n_out {
        points.push((0..d).map(|_| rng.gen_range(0.0..spec.range)).collect());
        labels.push(None);
    }

    (Dataset::new(spec.name.clone(), points, labels), infos)
}

/// Generate the dataset only (ground-truth labels included in the dataset).
///
/// ```
/// use hinn_data::projected::{generate_projected_clusters, ProjectedClusterSpec};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let data = generate_projected_clusters(&ProjectedClusterSpec::small_test(), &mut rng);
/// assert_eq!(data.len(), 300);
/// assert_eq!(data.dim(), 8);
/// assert_eq!(data.n_classes(), 2);
/// ```
pub fn generate_projected_clusters<R: Rng>(spec: &ProjectedClusterSpec, rng: &mut R) -> Dataset {
    generate_projected_clusters_detailed(spec, rng).0
}

/// Choose `k` distinct dimensions out of `d`, inheriting about half from
/// the previous cluster's dimensions when possible (as in \[4\]).
fn pick_dims_with_inheritance<R: Rng>(
    d: usize,
    k: usize,
    prev: &[usize],
    rng: &mut R,
) -> Vec<usize> {
    let inherit = if prev.is_empty() {
        0
    } else {
        (k / 2).min(prev.len())
    };
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    // Inherit a random subset of the previous dims.
    let mut prev_pool: Vec<usize> = prev.to_vec();
    for _ in 0..inherit {
        let idx = rng.gen_range(0..prev_pool.len());
        chosen.push(prev_pool.swap_remove(idx));
    }
    // Fill the rest from the unchosen dimensions.
    let mut pool: Vec<usize> = (0..d).filter(|i| !chosen.contains(i)).collect();
    while chosen.len() < k {
        let idx = rng.gen_range(0..pool.len());
        chosen.push(pool.swap_remove(idx));
    }
    chosen.sort_unstable();
    chosen
}

/// A uniformly random `k`-dimensional orthonormal subspace of `R^d`
/// (Gaussian vectors + Gram–Schmidt).
pub fn random_subspace<R: Rng>(d: usize, k: usize, rng: &mut R) -> Subspace {
    let mut s = Subspace::empty(d);
    while s.dim() < k {
        let v: Vec<f64> = (0..d).map(|_| randn(rng)).collect();
        s.try_extend(&v);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20000;
        let sample: Vec<f64> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean: f64 = sample.iter().sum::<f64>() / n as f64;
        let var: f64 = sample.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sizes_and_labels_add_up() {
        let spec = ProjectedClusterSpec::small_test();
        let mut rng = StdRng::seed_from_u64(2);
        let (ds, infos) = generate_projected_clusters_detailed(&spec, &mut rng);
        assert_eq!(ds.len(), spec.n_points);
        assert_eq!(ds.dim(), spec.dim);
        assert_eq!(infos.len(), spec.n_clusters);
        let clustered: usize = infos.iter().map(|i| i.size).sum();
        assert_eq!(clustered + ds.outliers().len(), spec.n_points);
        for (c, info) in infos.iter().enumerate() {
            assert_eq!(ds.cluster_members(c).len(), info.size);
        }
    }

    #[test]
    fn clusters_are_tight_in_their_subspace_and_spread_outside() {
        let spec = ProjectedClusterSpec::small_test();
        let mut rng = StdRng::seed_from_u64(3);
        let (ds, infos) = generate_projected_clusters_detailed(&spec, &mut rng);
        for (c, info) in infos.iter().enumerate() {
            let members = ds.cluster_members(c);
            let pts: Vec<Vec<f64>> = members.iter().map(|&i| ds.points[i].clone()).collect();
            // Variance inside the cluster subspace is ~spread², i.e. tiny
            // relative to the uniform variance range²/12 ≈ 833.
            for e in info.subspace.basis() {
                let v = hinn_linalg::stats::variance_along(&pts, e);
                assert!(v < 30.0, "cluster {c} too loose in its subspace: {v}");
            }
            // Variance in the complement is on the uniform scale.
            let comp = Subspace::full(spec.dim).complement_within(&info.subspace);
            let mut loose = 0;
            for e in comp.basis() {
                if hinn_linalg::stats::variance_along(&pts, e) > 200.0 {
                    loose += 1;
                }
            }
            assert!(
                loose >= comp.dim() / 2,
                "cluster {c} should be spread in most complement directions"
            );
        }
    }

    #[test]
    fn axis_parallel_subspaces_use_original_axes() {
        let spec = ProjectedClusterSpec::small_test();
        let mut rng = StdRng::seed_from_u64(4);
        let (_, infos) = generate_projected_clusters_detailed(&spec, &mut rng);
        for info in &infos {
            for e in info.subspace.basis() {
                let nonzero = e.iter().filter(|v| v.abs() > 1e-9).count();
                assert_eq!(nonzero, 1, "axis-parallel basis vector must be an axis");
            }
        }
    }

    #[test]
    fn arbitrary_subspaces_are_oblique() {
        let mut spec = ProjectedClusterSpec::small_test();
        spec.orientation = Orientation::Arbitrary;
        let mut rng = StdRng::seed_from_u64(5);
        let (_, infos) = generate_projected_clusters_detailed(&spec, &mut rng);
        let any_oblique = infos.iter().any(|info| {
            info.subspace
                .basis()
                .iter()
                .any(|e| e.iter().filter(|v| v.abs() > 1e-6).count() > 1)
        });
        assert!(any_oblique, "arbitrary orientation produced only axes");
    }

    #[test]
    fn outlier_fraction_respected() {
        let mut spec = ProjectedClusterSpec::small_test();
        spec.outlier_fraction = 0.10;
        spec.n_points = 1000;
        let mut rng = StdRng::seed_from_u64(6);
        let ds = generate_projected_clusters(&spec, &mut rng);
        assert_eq!(ds.outliers().len(), 100);
    }

    #[test]
    fn points_within_reasonable_range() {
        let spec = ProjectedClusterSpec::small_test();
        let mut rng = StdRng::seed_from_u64(7);
        let ds = generate_projected_clusters(&spec, &mut rng);
        // Gaussian offsets can stray slightly past the range; allow slack.
        for p in &ds.points {
            for &v in p {
                assert!(v > -40.0 && v < 140.0, "coordinate {v} wildly out of range");
            }
        }
    }

    #[test]
    fn dim_inheritance_gives_distinct_sorted_dims() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = pick_dims_with_inheritance(20, 6, &[], &mut rng);
        assert_eq!(a.len(), 6);
        let b = pick_dims_with_inheritance(20, 6, &a, &mut rng);
        assert_eq!(b.len(), 6);
        let mut bs = b.clone();
        bs.dedup();
        assert_eq!(bs.len(), 6, "dims must be distinct");
        let shared = b.iter().filter(|x| a.contains(x)).count();
        assert!(
            shared >= 3,
            "should inherit about half the dims, got {shared}"
        );
    }

    #[test]
    fn random_subspace_is_orthonormal() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = random_subspace(10, 4, &mut rng);
        assert_eq!(s.dim(), 4);
        assert!(s.is_orthonormal(1e-9));
    }

    #[test]
    fn case_specs_match_paper() {
        let c1 = ProjectedClusterSpec::case1();
        assert_eq!(c1.n_points, 5000);
        assert_eq!(c1.dim, 20);
        assert_eq!(c1.cluster_dim, 6);
        assert_eq!(c1.orientation, Orientation::AxisParallel);
        let c2 = ProjectedClusterSpec::case2();
        assert_eq!(c2.orientation, Orientation::Arbitrary);
        assert_eq!(c2.n_points, 5000);
    }

    #[test]
    #[should_panic(expected = "cluster_dim")]
    fn invalid_spec_panics() {
        let mut spec = ProjectedClusterSpec::small_test();
        spec.cluster_dim = 99;
        let mut rng = StdRng::seed_from_u64(10);
        generate_projected_clusters(&spec, &mut rng);
    }
}
