//! Workload generation and dataset handling for `hinn`.
//!
//! The paper's empirical section (§4) uses three families of data:
//!
//! 1. **Synthetic projected-cluster data** ("Case 1" / "Case 2", §4.1):
//!    `N = 5000` points in `d = 20` dimensions with 6-dimensional projected
//!    clusters embedded, generated "with the same parameters used in \[4\]"
//!    (Aggarwal & Yu, SIGMOD 2000). [`projected`] re-implements that
//!    generator, in both axis-parallel and arbitrarily-oriented flavors.
//! 2. **Uniformly distributed data** (§4.2) as the canonical *meaningless*
//!    high-dimensional workload — [`uniform`].
//! 3. **UCI `ionosphere` and `segmentation`** (§4.3). This environment has
//!    no network access, so [`uci`] ships statistically-matched synthetic
//!    re-creations (same `N`, `d`, class structure; class signal carried by
//!    low-dimensional subspaces and diluted by noisy dimensions — the same
//!    mechanism that makes full-dimensional L2 underperform in the paper).
//!    The substitution is documented in `DESIGN.md`.
//!
//! [`dataset`] defines the common [`Dataset`] container, and [`csv`]
//! persists datasets as plain CSV for external inspection.

pub mod column_store;
pub mod csv;
pub mod dataset;
pub mod epoch;
pub mod projected;
pub mod scaling;
pub mod uci;
pub mod uci_load;
pub mod uniform;

pub use column_store::ColumnStore;
pub use dataset::Dataset;
pub use epoch::{DatasetHandle, EpochError, EpochSnapshot, StreamingStats};
pub use projected::{generate_projected_clusters, ProjectedClusterSpec};
pub use scaling::FeatureScaler;
pub use uci::{simulated_ionosphere, simulated_segmentation};
pub use uci_load::{load_ionosphere, load_segmentation};
pub use uniform::{gaussian_blob, uniform_hypercube};
