//! The common labeled-point-set container used throughout `hinn`.

use std::sync::{Arc, OnceLock};

/// A point set with optional per-point class/cluster labels.
///
/// `labels[i] == None` marks an outlier / unlabeled point. All points share
/// one dimensionality, enforced at construction.
///
/// The columnar view ([`Dataset::columns`]) is built lazily on first use
/// and cached (along with its f32 mirror) for the dataset's lifetime, so
/// callers stop re-transposing at every kernel boundary. The row fields
/// stay public for construction-time convenience; mutating `points` after
/// the columnar cache materialized leaves the cache stale — treat a
/// `Dataset` as frozen once it is being read.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable dataset name (used in experiment reports).
    pub name: String,
    /// The points, one `Vec<f64>` row per point.
    pub points: Vec<Vec<f64>>,
    /// Per-point label; `None` = outlier/unlabeled.
    pub labels: Vec<Option<usize>>,
    /// Lazily built, shared columnar view (clones share the cache).
    columns: OnceLock<Arc<crate::ColumnStore>>,
}

impl Dataset {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics if `points` is empty, rows are ragged, or label count differs
    /// from point count.
    pub fn new(name: impl Into<String>, points: Vec<Vec<f64>>, labels: Vec<Option<usize>>) -> Self {
        assert!(!points.is_empty(), "Dataset: empty point set");
        let d = points[0].len();
        assert!(d > 0, "Dataset: zero-dimensional points");
        assert!(
            points.iter().all(|p| p.len() == d),
            "Dataset: ragged point set"
        );
        assert_eq!(
            points.len(),
            labels.len(),
            "Dataset: label/point count mismatch"
        );
        Self {
            name: name.into(),
            points,
            labels,
            columns: OnceLock::new(),
        }
    }

    /// Construct with all points unlabeled.
    pub fn unlabeled(name: impl Into<String>, points: Vec<Vec<f64>>) -> Self {
        let labels = vec![None; points.len()];
        Self::new(name, points, labels)
    }

    /// Number of points `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` iff the dataset holds no points (never true post-construction;
    /// provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.points[0].len()
    }

    /// Number of distinct (non-outlier) labels.
    ///
    /// Counts *distinct* label values, as documented. (This used to
    /// return `max_label + 1`, so sparse label ids like `{0, 5}` reported
    /// six classes — wrong for any consumer sizing per-class work or
    /// computing per-class rates over labels that are not dense from 0.)
    pub fn n_classes(&self) -> usize {
        self.labels
            .iter()
            .flatten()
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// The columnar (structure-of-arrays) view of the points — one
    /// contiguous column per dimension, the layout the
    /// `hinn_linalg::simd` batch kernels scan. Transposed once on first
    /// use and cached (clones share the cache), so repeated kernel calls
    /// and the lazily built f32 mirror amortize across the dataset's
    /// lifetime.
    pub fn columns(&self) -> &Arc<crate::ColumnStore> {
        self.columns
            .get_or_init(|| Arc::new(crate::ColumnStore::from_rows(&self.points)))
    }

    /// The columnar view, freshly transposed per call.
    #[deprecated(
        since = "0.1.0",
        note = "use Dataset::columns(), which transposes once and caches the store"
    )]
    pub fn column_store(&self) -> crate::ColumnStore {
        crate::ColumnStore::from_rows(&self.points)
    }

    /// Indices of points carrying label `c`.
    pub fn cluster_members(&self, c: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| **l == Some(c))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of outliers (unlabeled points).
    pub fn outliers(&self) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_none())
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-dimension `(min, max)` bounding box.
    pub fn bounding_box(&self) -> Vec<(f64, f64)> {
        let d = self.dim();
        let mut bb = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
        for p in &self.points {
            for (b, &v) in bb.iter_mut().zip(p) {
                b.0 = b.0.min(v);
                b.1 = b.1.max(v);
            }
        }
        bb
    }

    /// Z-score standardization (per dimension, population σ). Dimensions
    /// with zero variance are left centered but unscaled. Returns the
    /// transformed dataset; `self` is unchanged.
    pub fn standardized(&self) -> Dataset {
        let mean = hinn_linalg::stats::mean_vector(&self.points);
        let var = hinn_linalg::stats::coordinate_variances(&self.points);
        let points = self
            .points
            .iter()
            .map(|p| {
                p.iter()
                    .zip(&mean)
                    .zip(&var)
                    .map(|((x, m), v)| {
                        let c = x - m;
                        if *v > 1e-24 {
                            c / v.sqrt()
                        } else {
                            c
                        }
                    })
                    .collect()
            })
            .collect();
        Dataset {
            name: format!("{} (standardized)", self.name),
            points,
            labels: self.labels.clone(),
            columns: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                vec![0.0, 1.0],
                vec![2.0, 3.0],
                vec![4.0, -1.0],
                vec![6.0, 7.0],
            ],
            vec![Some(0), Some(1), Some(0), None],
        )
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.n_classes(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn n_classes_counts_distinct_labels_not_max_plus_one() {
        // Regression: sparse label ids {0, 5} used to report 6 classes.
        let d = Dataset::new(
            "sparse",
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![Some(0), Some(5), Some(5)],
        );
        assert_eq!(d.n_classes(), 2);
        // Labels not containing 0 at all.
        let d = Dataset::new(
            "shifted",
            vec![vec![0.0], vec![1.0]],
            vec![Some(7), Some(9)],
        );
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn column_store_round_trips() {
        let d = toy();
        let s = d.columns();
        assert_eq!(s.len(), d.len());
        assert_eq!(s.dim(), d.dim());
        for i in 0..d.len() {
            assert_eq!(s.row(i), d.points[i]);
        }
    }

    #[test]
    fn columns_cache_is_shared_across_clones() {
        let d = toy();
        let first = Arc::as_ptr(d.columns());
        assert_eq!(Arc::as_ptr(d.columns()), first, "second call rebuilt");
        let c = d.clone();
        assert_eq!(Arc::as_ptr(c.columns()), first, "clone lost the cache");
    }

    #[test]
    fn cluster_members_and_outliers() {
        let d = toy();
        assert_eq!(d.cluster_members(0), vec![0, 2]);
        assert_eq!(d.cluster_members(1), vec![1]);
        assert_eq!(d.cluster_members(7), Vec::<usize>::new());
        assert_eq!(d.outliers(), vec![3]);
    }

    #[test]
    fn bounding_box_correct() {
        let d = toy();
        assert_eq!(d.bounding_box(), vec![(0.0, 6.0), (-1.0, 7.0)]);
    }

    #[test]
    fn standardization_centers_and_scales() {
        let d = toy().standardized();
        let mean = hinn_linalg::stats::mean_vector(&d.points);
        let var = hinn_linalg::stats::coordinate_variances(&d.points);
        for m in mean {
            assert!(m.abs() < 1e-12);
        }
        for v in var {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn standardization_handles_constant_dimension() {
        let d = Dataset::unlabeled(
            "const",
            vec![vec![1.0, 5.0], vec![2.0, 5.0], vec![3.0, 5.0]],
        );
        let s = d.standardized();
        for p in &s.points {
            assert_eq!(p[1], 0.0, "constant dimension should center to zero");
            assert!(p[1].is_finite());
        }
    }

    #[test]
    fn unlabeled_constructor() {
        let d = Dataset::unlabeled("u", vec![vec![1.0]]);
        assert_eq!(d.n_classes(), 0);
        assert_eq!(d.outliers(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_points_panic() {
        Dataset::unlabeled("bad", vec![vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    #[should_panic(expected = "label/point count mismatch")]
    fn label_mismatch_panics() {
        Dataset::new("bad", vec![vec![1.0]], vec![]);
    }
}
