//! Feature scaling.
//!
//! Real datasets mix attribute scales (the UCI ionosphere attributes live
//! in `[-1, 1]`, segmentation attributes span orders of magnitude), while
//! everything downstream — Euclidean distances, variance ratios, KDE
//! bandwidths — implicitly assumes comparable scales. These transforms
//! are fit on a dataset and reapplied to external queries, so a query
//! point travels through the same coordinates as the data it is searched
//! against.

use crate::dataset::Dataset;

/// A fitted per-dimension affine transform `x ↦ (x − offset) · scale`.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureScaler {
    offset: Vec<f64>,
    scale: Vec<f64>,
}

impl FeatureScaler {
    /// Fit a min-max scaler mapping each dimension of `data` onto `[0, hi]`
    /// (constant dimensions map to 0).
    ///
    /// # Panics
    /// Panics if `hi <= 0`.
    pub fn min_max(data: &Dataset, hi: f64) -> Self {
        assert!(hi > 0.0, "FeatureScaler: hi must be positive");
        let bb = data.bounding_box();
        let offset: Vec<f64> = bb.iter().map(|&(lo, _)| lo).collect();
        let scale: Vec<f64> = bb
            .iter()
            .map(|&(lo, hi_d)| {
                let span = hi_d - lo;
                if span > 1e-12 {
                    hi / span
                } else {
                    0.0
                }
            })
            .collect();
        Self { offset, scale }
    }

    /// Fit a z-score scaler (mean 0, standard deviation `sd` per dimension;
    /// constant dimensions map to 0).
    ///
    /// # Panics
    /// Panics if `sd <= 0`.
    pub fn standard(data: &Dataset, sd: f64) -> Self {
        assert!(sd > 0.0, "FeatureScaler: sd must be positive");
        let offset = hinn_linalg::stats::mean_vector(&data.points);
        let var = hinn_linalg::stats::coordinate_variances(&data.points);
        let scale = var
            .iter()
            .map(|&v| if v > 1e-24 { sd / v.sqrt() } else { 0.0 })
            .collect();
        Self { offset, scale }
    }

    /// Transform one point.
    ///
    /// # Panics
    /// Panics on dimensionality mismatch.
    pub fn apply(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(
            point.len(),
            self.offset.len(),
            "FeatureScaler: dimension mismatch"
        );
        point
            .iter()
            .zip(self.offset.iter().zip(&self.scale))
            .map(|(x, (o, s))| (x - o) * s)
            .collect()
    }

    /// Transform a whole dataset (labels preserved).
    pub fn apply_dataset(&self, data: &Dataset) -> Dataset {
        Dataset::new(
            format!("{} (scaled)", data.name),
            data.points.iter().map(|p| self.apply(p)).collect(),
            data.labels.clone(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::unlabeled(
            "toy",
            vec![
                vec![0.0, -10.0, 7.0],
                vec![5.0, 10.0, 7.0],
                vec![10.0, 0.0, 7.0],
            ],
        )
    }

    #[test]
    fn min_max_maps_onto_range() {
        let ds = toy();
        let scaler = FeatureScaler::min_max(&ds, 100.0);
        let scaled = scaler.apply_dataset(&ds);
        let bb = scaled.bounding_box();
        assert!((bb[0].0 - 0.0).abs() < 1e-12 && (bb[0].1 - 100.0).abs() < 1e-12);
        assert!((bb[1].0 - 0.0).abs() < 1e-12 && (bb[1].1 - 100.0).abs() < 1e-12);
        // Constant dimension collapses to zero, not NaN.
        assert!(scaled.points.iter().all(|p| p[2] == 0.0));
    }

    #[test]
    fn standard_gives_unit_moments() {
        let ds = toy();
        let scaler = FeatureScaler::standard(&ds, 1.0);
        let scaled = scaler.apply_dataset(&ds);
        let mean = hinn_linalg::stats::mean_vector(&scaled.points);
        let var = hinn_linalg::stats::coordinate_variances(&scaled.points);
        for j in 0..2 {
            assert!(mean[j].abs() < 1e-12);
            assert!((var[j] - 1.0).abs() < 1e-9);
        }
        assert_eq!(var[2], 0.0);
    }

    #[test]
    fn external_query_travels_with_the_data() {
        let ds = toy();
        let scaler = FeatureScaler::min_max(&ds, 1.0);
        // The midpoint of dim 0's range must map to 0.5.
        let q = scaler.apply(&[5.0, 0.0, 7.0]);
        assert!((q[0] - 0.5).abs() < 1e-12);
        assert!((q[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn labels_survive_scaling() {
        let ds = Dataset::new("labeled", vec![vec![1.0], vec![2.0]], vec![Some(1), None]);
        let scaled = FeatureScaler::min_max(&ds, 1.0).apply_dataset(&ds);
        assert_eq!(scaled.labels, ds.labels);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        FeatureScaler::min_max(&toy(), 1.0).apply(&[1.0]);
    }
}
