//! Columnar (structure-of-arrays) point storage.
//!
//! [`Dataset`](crate::Dataset) keeps its public row-major
//! `Vec<Vec<f64>>` — every existing call site stays valid — and this
//! module adds the columnar view the batch kernels want: one contiguous
//! slice per dimension, so a distance scan streams `d` flat arrays
//! instead of chasing `N` heap pointers, and the `hinn_linalg::simd`
//! kernels vectorize across points (one point per SIMD lane) while each
//! point's own reduction keeps the scalar spec's ascending-dimension
//! order. Result: bit-identical distances at several points per
//! instruction.
//!
//! # The f64-exact / f32-approximate boundary
//!
//! The store is f64, and everything computed from [`ColumnStore::col`] /
//! [`ColumnStore::dist_scan_into`] is bit-identical to the row-major
//! scalar code — safe for any exact path (kNN baselines, session
//! transcripts, goldens). The **opt-in** f32 mirror
//! ([`ColumnStore::f32_cols`], built lazily on first use) halves memory
//! traffic and doubles lane count for *approximate* phases only —
//! candidate generation in the spirit of the HNSW tier, where a
//! downstream exact pass re-ranks. Nothing routes through f32 unless a
//! caller asks for the mirror explicitly.

use hinn_linalg::simd;
use std::sync::OnceLock;

/// A point set stored one contiguous column per dimension.
#[derive(Debug)]
pub struct ColumnStore {
    n: usize,
    dim: usize,
    /// Column `j` occupies `flat[j*n .. (j+1)*n]`.
    flat: Vec<f64>,
    /// Lazily built f32 mirror, same layout. `OnceLock` so shared
    /// (`Arc`) stores can materialize it without a `&mut`.
    mirror: OnceLock<Vec<f32>>,
}

impl Clone for ColumnStore {
    fn clone(&self) -> Self {
        let mirror = OnceLock::new();
        if let Some(m) = self.mirror.get() {
            let _ = mirror.set(m.clone());
        }
        Self {
            n: self.n,
            dim: self.dim,
            flat: self.flat.clone(),
            mirror,
        }
    }
}

impl ColumnStore {
    /// Transpose row-major points into columns.
    ///
    /// # Panics
    /// Panics if `rows` is empty, zero-dimensional, or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "ColumnStore: empty point set");
        let dim = rows[0].len();
        assert!(dim > 0, "ColumnStore: zero-dimensional points");
        let n = rows.len();
        let mut flat = vec![0.0; n * dim];
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), dim, "ColumnStore: ragged point set");
            for (j, &v) in row.iter().enumerate() {
                flat[j * n + i] = v;
            }
        }
        Self {
            n,
            dim,
            flat,
            mirror: OnceLock::new(),
        }
    }

    /// Number of points `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` iff the store holds no points (never true post-construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Column `j`: coordinate `j` of every point, contiguous.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.flat[j * self.n..(j + 1) * self.n]
    }

    /// All columns as slices (cheap: `d` fat pointers).
    pub fn cols(&self) -> Vec<&[f64]> {
        (0..self.dim).map(|j| self.col(j)).collect()
    }

    /// Gather row `i` (one point) into `buf`.
    ///
    /// # Panics
    /// Panics if `buf.len() != self.dim()`.
    pub fn gather_row(&self, i: usize, buf: &mut [f64]) {
        assert_eq!(buf.len(), self.dim, "gather_row: dimension mismatch");
        for (j, v) in buf.iter_mut().enumerate() {
            *v = self.flat[j * self.n + i];
        }
    }

    /// Row `i` as a fresh vector (tests/diagnostics; hot paths should
    /// stay columnar or reuse [`ColumnStore::gather_row`]).
    pub fn row(&self, i: usize) -> Vec<f64> {
        let mut buf = vec![0.0; self.dim];
        self.gather_row(i, &mut buf);
        buf
    }

    /// Euclidean distances from `query` to points `start..start+out.len()`,
    /// written into `out`. Bit-identical to
    /// `hinn_linalg::vector::dist(row_i, query)` per point — this is the
    /// SIMD path of the kNN scan, and the fixed-chunk parallel driver
    /// calls it per chunk (per-point results do not depend on chunking).
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()` or the range overruns `N`.
    pub fn dist_scan_into(&self, query: &[f64], start: usize, out: &mut [f64]) {
        let cols = self.range_cols(start, out.len());
        simd::dist_sq_cols(&cols, query, out);
        simd::sqrt_inplace(out);
    }

    /// Squared-distance variant of [`ColumnStore::dist_scan_into`].
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()` or the range overruns `N`.
    pub fn dist_sq_scan_into(&self, query: &[f64], start: usize, out: &mut [f64]) {
        let cols = self.range_cols(start, out.len());
        simd::dist_sq_cols(&cols, query, out);
    }

    /// The f32 mirror's columns, built on first use (the opt-in
    /// approximate tier; see the module docs for the boundary).
    pub fn f32_cols(&self) -> Vec<&[f32]> {
        let m = self
            .mirror
            .get_or_init(|| self.flat.iter().map(|&v| v as f32).collect());
        (0..self.dim)
            .map(|j| &m[j * self.n..(j + 1) * self.n])
            .collect()
    }

    /// Approximate squared-distance scan over the f32 mirror for points
    /// `start..start+out.len()`. Deterministic, but **not** bit-comparable
    /// with the f64 path — candidate generation only.
    ///
    /// # Panics
    /// Panics if `query.len() != self.dim()` or the range overruns `N`.
    pub fn dist_sq_scan_f32_into(&self, query: &[f32], start: usize, out: &mut [f32]) {
        let all = self.f32_cols();
        let end = start + out.len();
        assert!(end <= self.n, "dist_sq_scan_f32_into: range overruns N");
        let cols: Vec<&[f32]> = all.iter().map(|c| &c[start..end]).collect();
        hinn_linalg::simd::dist_sq_cols_f32(&cols, query, out);
    }

    /// Column stripes covering points `start..start+len`.
    fn range_cols(&self, start: usize, len: usize) -> Vec<&[f64]> {
        let end = start + len;
        assert!(end <= self.n, "column scan: range overruns N");
        (0..self.dim)
            .map(|j| &self.flat[j * self.n + start..j * self.n + end])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Vec<f64>> {
        (0..37)
            .map(|i| {
                (0..5)
                    .map(|j| ((i * 31 + j * 17) % 23) as f64 - 11.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // (j, i) indexing mirrors the transpose under test
    fn round_trips_rows() {
        let r = rows();
        let s = ColumnStore::from_rows(&r);
        assert_eq!(s.len(), 37);
        assert_eq!(s.dim(), 5);
        for (i, row) in r.iter().enumerate() {
            assert_eq!(&s.row(i), row);
        }
        for j in 0..5 {
            for i in 0..37 {
                assert_eq!(s.col(j)[i], r[i][j]);
            }
        }
    }

    #[test]
    fn dist_scan_matches_rowwise_spec_bitwise() {
        let r = rows();
        let s = ColumnStore::from_rows(&r);
        let q = &r[7];
        let mut out = vec![0.0; s.len()];
        s.dist_scan_into(q, 0, &mut out);
        for (i, row) in r.iter().enumerate() {
            assert_eq!(
                out[i].to_bits(),
                hinn_linalg::vector::dist(row, q).to_bits(),
                "point {i}"
            );
        }
        // A mid-range chunk produces the same per-point values.
        let mut part = vec![0.0; 10];
        s.dist_scan_into(q, 13, &mut part);
        for k in 0..10 {
            assert_eq!(part[k].to_bits(), out[13 + k].to_bits());
        }
    }

    #[test]
    fn f32_mirror_is_close_but_separate() {
        let r = rows();
        let s = ColumnStore::from_rows(&r);
        let qf: Vec<f32> = r[3].iter().map(|&v| v as f32).collect();
        let mut out = vec![0.0f32; s.len()];
        s.dist_sq_scan_f32_into(&qf, 0, &mut out);
        for (i, row) in r.iter().enumerate() {
            let exact = hinn_linalg::vector::dist_sq(row, &r[3]);
            assert!(
                (f64::from(out[i]) - exact).abs() <= 1e-3 * (1.0 + exact),
                "point {i}: {} vs {exact}",
                out[i]
            );
        }
    }

    #[test]
    fn clone_preserves_materialized_mirror() {
        let s = ColumnStore::from_rows(&rows());
        let _ = s.f32_cols();
        let c = s.clone();
        assert_eq!(c.f32_cols()[0], s.f32_cols()[0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        ColumnStore::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }
}
