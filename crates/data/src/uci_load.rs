//! Parsers for the *real* UCI datasets the paper evaluates on (§4.3).
//!
//! This reproduction ships simulated stand-ins (see [`crate::uci`]) because
//! the build environment has no network access — but a downstream user who
//! has downloaded the actual files from the UCI repository should be able
//! to run the experiments on the real data. These parsers read the
//! canonical file formats:
//!
//! * `ionosphere.data` — 351 comma-separated lines of 34 real attributes
//!   followed by a class label `g` (good) or `b` (bad);
//! * `segmentation.data` / `segmentation.test` — UCI image segmentation:
//!   a small header, then lines of `CLASSNAME,attr1,...,attr19` with seven
//!   class names.
//!
//! Both loaders validate dimensionality and produce the same [`Dataset`]
//! shape the simulated generators do, so everything downstream (search,
//! experiments, examples) runs unchanged on real data.

use crate::dataset::Dataset;
use std::io::{self, BufRead};
use std::path::Path;

/// Parse UCI `ionosphere.data` content: 34 numeric attributes and a
/// trailing `g`/`b` class label per line. Label `g` → class 0, `b` → 1
/// (matching the simulated dataset's ordering: the larger class first).
///
/// # Errors
/// `InvalidData` on malformed lines; I/O errors are propagated by the
/// file-based wrapper.
pub fn parse_ionosphere(content: &str) -> io::Result<Dataset> {
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 35 {
            return Err(bad(format!(
                "ionosphere line {}: expected 35 fields, got {}",
                lineno + 1,
                fields.len()
            )));
        }
        let mut p = Vec::with_capacity(34);
        for f in &fields[..34] {
            p.push(f.trim().parse::<f64>().map_err(|e| {
                bad(format!(
                    "ionosphere line {}: bad number {f:?}: {e}",
                    lineno + 1
                ))
            })?);
        }
        let label = match fields[34].trim() {
            "g" | "G" => Some(0),
            "b" | "B" => Some(1),
            other => {
                return Err(bad(format!(
                    "ionosphere line {}: unknown class {other:?}",
                    lineno + 1
                )))
            }
        };
        points.push(p);
        labels.push(label);
    }
    if points.is_empty() {
        return Err(bad("ionosphere: no data rows".into()));
    }
    Ok(Dataset::new("ionosphere (UCI)", points, labels))
}

/// The seven classes of UCI image segmentation, in canonical order.
pub const SEGMENTATION_CLASSES: [&str; 7] = [
    "BRICKFACE",
    "SKY",
    "FOLIAGE",
    "CEMENT",
    "WINDOW",
    "PATH",
    "GRASS",
];

/// Parse UCI `segmentation.{data,test}` content: optional header lines
/// (anything that does not start with a known class name is skipped), then
/// `CLASSNAME,attr1,…,attr19` rows.
///
/// # Errors
/// `InvalidData` on rows with a known class name but a malformed body, or
/// when no data rows are found.
pub fn parse_segmentation(content: &str) -> io::Result<Dataset> {
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((head, rest)) = line.split_once(',') else {
            continue; // header line
        };
        let Some(class) = SEGMENTATION_CLASSES
            .iter()
            .position(|c| c.eq_ignore_ascii_case(head.trim()))
        else {
            continue; // header line (e.g. the attribute list)
        };
        let fields: Vec<&str> = rest.split(',').collect();
        if fields.len() != 19 {
            return Err(bad(format!(
                "segmentation line {}: expected 19 attributes, got {}",
                lineno + 1,
                fields.len()
            )));
        }
        let mut p = Vec::with_capacity(19);
        for f in &fields {
            p.push(f.trim().parse::<f64>().map_err(|e| {
                bad(format!(
                    "segmentation line {}: bad number {f:?}: {e}",
                    lineno + 1
                ))
            })?);
        }
        points.push(p);
        labels.push(Some(class));
    }
    if points.is_empty() {
        return Err(bad("segmentation: no data rows".into()));
    }
    Ok(Dataset::new("segmentation (UCI)", points, labels))
}

/// Load and parse a real `ionosphere.data` file.
pub fn load_ionosphere(path: &Path) -> io::Result<Dataset> {
    parse_ionosphere(&read_all(path)?)
}

/// Load and parse a real `segmentation.data` / `segmentation.test` file.
pub fn load_segmentation(path: &Path) -> io::Result<Dataset> {
    parse_segmentation(&read_all(path)?)
}

fn read_all(path: &Path) -> io::Result<String> {
    let file = std::fs::File::open(path)?;
    let mut out = String::new();
    for line in io::BufReader::new(file).lines() {
        out.push_str(&line?);
        out.push('\n');
    }
    Ok(out)
}

fn bad(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iono_line(label: char) -> String {
        let attrs: Vec<String> = (0..34).map(|i| format!("{:.5}", i as f64 * 0.01)).collect();
        format!("{},{label}", attrs.join(","))
    }

    #[test]
    fn ionosphere_happy_path() {
        let content = format!(
            "{}\n{}\n{}\n",
            iono_line('g'),
            iono_line('b'),
            iono_line('g')
        );
        let ds = parse_ionosphere(&content).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 34);
        assert_eq!(ds.labels, vec![Some(0), Some(1), Some(0)]);
        assert!((ds.points[0][5] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn ionosphere_rejects_wrong_arity_and_label() {
        assert!(parse_ionosphere("1.0,2.0,g\n").is_err());
        let mut bad_label = iono_line('g');
        bad_label.pop();
        bad_label.push('x');
        assert!(parse_ionosphere(&bad_label).is_err());
        assert!(parse_ionosphere("\n\n").is_err());
    }

    fn seg_line(class: &str) -> String {
        let attrs: Vec<String> = (0..19).map(|i| format!("{}", i as f64 * 1.5)).collect();
        format!("{class},{}", attrs.join(","))
    }

    #[test]
    fn segmentation_happy_path_with_header() {
        let content = format!(
            "REGION-CENTROID-COL,REGION-CENTROID-ROW\n\n{}\n{}\n{}\n",
            seg_line("SKY"),
            seg_line("grass"), // case-insensitive
            seg_line("PATH"),
        );
        let ds = parse_segmentation(&content).unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.dim(), 19);
        assert_eq!(ds.labels, vec![Some(1), Some(6), Some(5)]);
    }

    #[test]
    fn segmentation_rejects_bad_rows() {
        // Known class but wrong attribute count must error (not skip).
        assert!(parse_segmentation("SKY,1.0,2.0\n").is_err());
        // Known class but unparsable number.
        let mut row = seg_line("SKY");
        row = row.replace("1.5", "banana");
        assert!(parse_segmentation(&row).is_err());
        // Nothing but headers → error.
        assert!(parse_segmentation("HEADER STUFF\nmore header\n").is_err());
    }

    #[test]
    fn file_loaders_roundtrip() {
        let dir = std::env::temp_dir();
        let p = dir.join(format!("hinn_uci_iono_{}.data", std::process::id()));
        std::fs::write(&p, format!("{}\n", iono_line('b'))).unwrap();
        let ds = load_ionosphere(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.labels[0], Some(1));

        let p = dir.join(format!("hinn_uci_seg_{}.data", std::process::id()));
        std::fs::write(&p, format!("{}\n", seg_line("CEMENT"))).unwrap();
        let ds = load_segmentation(&p).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(ds.labels[0], Some(3));
    }
}
