//! Streaming dataset epochs: [`DatasetHandle`] / [`EpochSnapshot`].
//!
//! The paper's interactive loop assumes a frozen data set, but the
//! monitoring / fraud-triage deployments the ROADMAP targets need points
//! that arrive and expire *while analysts are mid-session*. This module
//! is the data-layer half of that story:
//!
//! * [`DatasetHandle`] is the mutable entry point: `append(rows)` /
//!   `delete(ids)` each produce a new immutable [`EpochSnapshot`] and
//!   advance the handle. Mutations serialize on an internal mutex; the
//!   snapshots they produce are plain `Arc`s that readers hold for as
//!   long as they like.
//! * [`EpochSnapshot`] is one frozen epoch: `Arc`'d [`ColumnStore`]
//!   segments (one per append batch, structurally shared across epochs),
//!   a tombstone bitmap over global row ids, the epoch-chained
//!   fingerprints, and rank-1-maintained global statistics.
//!
//! # The epoch chain is chunking-invariant
//!
//! Every accepted row-operation — one appended row, one deleted id —
//! folds into the chained fingerprint *individually*:
//!
//! ```text
//! fp₀       = H("hinn-epoch-genesis", d)
//! fpₖ₊₁     = H("epoch-append", fpₖ, row)      for an appended row
//! fpₖ₊₁     = H("epoch-delete", fpₖ, id)       for a deleted id
//! ```
//!
//! so `append(&[a, b])` and `append(&[a]); append(&[b])` land on the
//! *same* fingerprint, epoch number (the count of row-operations), and
//! statistics — the property the epoch determinism suite pins
//! bit-for-bit. The chain deliberately differs from
//! `Fingerprint::of_points` (which writes the outer length first and so
//! cannot be prefix-folded); it generalizes the session layer's
//! alive-set chaining to dataset mutations. A second, append-only chain
//! ([`EpochSnapshot::append_fingerprint`]) ignores deletes; the shared
//! HNSW graph keys on it so tombstones do not force a graph rebuild.
//!
//! # Rank-1 statistics with an exact checkpoint
//!
//! [`StreamingStats`] maintains the global mean, covariance comoments,
//! and per-axis variances with Welford-style rank-1 updates (and
//! downdates for deletes). Floating-point drift from a long
//! update/downdate stream is bounded by recomputing *exactly* — serial,
//! over the alive rows — every [`StreamingStats::RECOMPUTE_EVERY`]
//! row-operations. The checkpoint counter ticks per row-operation, not
//! per call, so chunked and batched replays checkpoint at identical
//! stream positions and stay bit-identical.

use crate::ColumnStore;
use hinn_cache::{Fingerprint, Fnv128};
use hinn_linalg::Matrix;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Everything a dataset mutation can refuse. Total and typed — streaming
/// ingest arrives over the wire, so malformed rows must be refusals, not
/// panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EpochError {
    /// A handle cannot be built over zero-dimensional points.
    ZeroDim,
    /// An appended row's length differs from the handle's dimensionality.
    DimMismatch {
        /// The handle's fixed dimensionality.
        expected: usize,
        /// The offending row's length.
        got: usize,
        /// Index of the offending row within the batch.
        row: usize,
    },
    /// An appended row contains a NaN or infinite coordinate.
    NonFinite {
        /// Index of the offending row within the batch.
        row: usize,
    },
    /// A deleted id was never appended.
    UnknownId {
        /// The offending global id.
        id: usize,
        /// Rows ever appended (valid ids are `0..appended`).
        appended: usize,
    },
}

impl fmt::Display for EpochError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroDim => write!(f, "DatasetHandle: zero-dimensional points"),
            Self::DimMismatch { expected, got, row } => write!(
                f,
                "DatasetHandle: row {row} has {got} coordinates, expected {expected}"
            ),
            Self::NonFinite { row } => {
                write!(
                    f,
                    "DatasetHandle: row {row} contains non-finite coordinates"
                )
            }
            Self::UnknownId { id, appended } => write!(
                f,
                "DatasetHandle: delete of id {id} outside the appended range 0..{appended}"
            ),
        }
    }
}

impl std::error::Error for EpochError {}

/// Rank-1-maintained global statistics of the alive rows: mean,
/// covariance comoments, per-axis variances. See the module docs for the
/// update/downdate + exact-checkpoint scheme.
#[derive(Clone, Debug)]
pub struct StreamingStats {
    dim: usize,
    /// Alive rows folded in.
    count: usize,
    /// Running mean of the alive rows.
    mean: Vec<f64>,
    /// Comoment matrix `M₂ = Σ (x−μ)(x−μ)ᵀ` (population covariance is
    /// `M₂ / count`). Kept symmetric by mirroring the upper triangle.
    m2: Matrix,
    /// Row-operations since the last exact recompute.
    since_checkpoint: u64,
}

impl StreamingStats {
    /// Exact serial recompute cadence, in row-operations. Chosen so the
    /// relative drift of the rank-1 path stays within the documented
    /// `1e-9` bound between checkpoints (see `DESIGN.md` §6.10).
    pub const RECOMPUTE_EVERY: u64 = 64;

    fn new(dim: usize) -> Self {
        Self {
            dim,
            count: 0,
            mean: vec![0.0; dim],
            m2: Matrix::zeros(dim, dim),
            since_checkpoint: 0,
        }
    }

    /// Alive rows folded in.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Global mean of the alive rows (all zeros while empty).
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Population (`1/n`) covariance of the alive rows — the same
    /// normalization as `hinn_linalg::stats::covariance_matrix`. Zero
    /// while fewer than two rows are alive.
    pub fn covariance(&self) -> Matrix {
        let d = self.dim;
        let mut cov = Matrix::zeros(d, d);
        if self.count == 0 {
            return cov;
        }
        let n = self.count as f64;
        for i in 0..d {
            for j in i..d {
                let v = self.m2[(i, j)] / n;
                cov[(i, j)] = v;
                cov[(j, i)] = v;
            }
        }
        cov
    }

    /// Per-axis population variances (the covariance diagonal).
    pub fn coordinate_variances(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.dim];
        }
        let n = self.count as f64;
        (0..self.dim).map(|i| self.m2[(i, i)] / n).collect()
    }

    /// Welford update with one appended row.
    fn push(&mut self, row: &[f64]) {
        self.count += 1;
        let n = self.count as f64;
        let mut delta = vec![0.0; self.dim];
        for (d, (x, m)) in delta.iter_mut().zip(row.iter().zip(&self.mean)) {
            *d = x - m;
        }
        for (m, d) in self.mean.iter_mut().zip(&delta) {
            *m += d / n;
        }
        // delta2 = x − μ_new; outer(delta, delta2) is symmetric in exact
        // arithmetic, so fill the upper triangle and mirror to keep the
        // float result symmetric too.
        let mut delta2 = vec![0.0; self.dim];
        for (d, (x, m)) in delta2.iter_mut().zip(row.iter().zip(&self.mean)) {
            *d = x - m;
        }
        for (i, di) in delta.iter().enumerate() {
            for (j, d2j) in delta2.iter().enumerate().skip(i) {
                let v = self.m2[(i, j)] + di * d2j;
                self.m2[(i, j)] = v;
                self.m2[(j, i)] = v;
            }
        }
        self.since_checkpoint += 1;
    }

    /// Welford downdate with one deleted row (the reverse of
    /// [`Self::push`]).
    fn remove(&mut self, row: &[f64]) {
        debug_assert!(self.count > 0, "StreamingStats: downdate below zero rows");
        if self.count == 1 {
            // Down to empty: reset exactly rather than trust cancellation.
            *self = Self {
                since_checkpoint: self.since_checkpoint + 1,
                ..Self::new(self.dim)
            };
            return;
        }
        // delta2 = x − μ_old (the mean that still includes the row);
        // delta = x − μ_new.
        let mut delta2 = vec![0.0; self.dim];
        for (d, (x, m)) in delta2.iter_mut().zip(row.iter().zip(&self.mean)) {
            *d = x - m;
        }
        self.count -= 1;
        let n = self.count as f64;
        for (m, d) in self.mean.iter_mut().zip(&delta2) {
            *m -= d / n;
        }
        let mut delta = vec![0.0; self.dim];
        for (d, (x, m)) in delta.iter_mut().zip(row.iter().zip(&self.mean)) {
            *d = x - m;
        }
        for (i, di) in delta.iter().enumerate() {
            for (j, d2j) in delta2.iter().enumerate().skip(i) {
                let v = self.m2[(i, j)] - di * d2j;
                self.m2[(i, j)] = v;
                self.m2[(j, i)] = v;
            }
        }
        self.since_checkpoint += 1;
    }

    /// Exact serial recompute over `alive`, run when the per-row-op
    /// counter reaches [`Self::RECOMPUTE_EVERY`].
    fn maybe_checkpoint(&mut self, alive: &[Vec<f64>]) {
        if self.since_checkpoint < Self::RECOMPUTE_EVERY {
            return;
        }
        self.since_checkpoint = 0;
        debug_assert_eq!(self.count, alive.len());
        if alive.is_empty() {
            self.mean = vec![0.0; self.dim];
            self.m2 = Matrix::zeros(self.dim, self.dim);
            return;
        }
        self.mean = hinn_linalg::stats::mean_vector(alive);
        let cov = hinn_linalg::stats::covariance_matrix(alive);
        let n = alive.len() as f64;
        for i in 0..self.dim {
            for j in 0..self.dim {
                self.m2[(i, j)] = cov[(i, j)] * n;
            }
        }
    }
}

/// One frozen epoch of a streaming dataset: shared columnar segments, a
/// tombstone bitmap over global row ids, the chained fingerprints, and
/// the rank-1 global statistics. Cheap to clone behind an `Arc`; sessions
/// pin one at open and keep it for their whole life.
#[derive(Debug)]
pub struct EpochSnapshot {
    /// Row-operations applied since genesis (appended rows + deleted
    /// ids). Chunking-invariant, monotone, and *excluded* from identity:
    /// two snapshots are interchangeable iff their chained fingerprints
    /// match.
    epoch: u64,
    dim: usize,
    /// One columnar segment per append batch, shared across epochs.
    segments: Vec<Arc<ColumnStore>>,
    /// Global id of each segment's first row.
    seg_starts: Vec<usize>,
    /// Rows ever appended (global ids are `0..appended`).
    appended: usize,
    /// Tombstone bitmap over global ids; bit set = deleted.
    tombstones: Vec<u64>,
    /// Deleted rows (popcount of `tombstones`).
    dead: usize,
    /// The full epoch chain (appends *and* deletes) — the snapshot's
    /// identity, and the dataset fingerprint epoch-pinned sessions use.
    fp: Fingerprint,
    /// The append-only chain — the HNSW graph lineage key.
    append_fp: Fingerprint,
    /// The append-only chain *before* this epoch's most recent append
    /// batch, so an index can extend its predecessor's graph instead of
    /// rebuilding.
    prev_append_fp: Option<Fingerprint>,
    stats: StreamingStats,
    /// Alive rows in global-id order, materialized on first use (the
    /// dense view the session engine runs over).
    dense: OnceLock<Arc<Vec<Vec<f64>>>>,
    /// Global id of each dense row, materialized with `dense`.
    alive_ids: OnceLock<Arc<Vec<usize>>>,
    /// Every appended row (tombstoned included), for index structures
    /// that filter at search time.
    full: OnceLock<Arc<Vec<Vec<f64>>>>,
}

impl EpochSnapshot {
    /// The empty genesis epoch of dimensionality `dim`.
    fn genesis(dim: usize) -> Result<Self, EpochError> {
        if dim == 0 {
            return Err(EpochError::ZeroDim);
        }
        let mut h = Fnv128::new();
        h.write_str("hinn-epoch-genesis");
        h.write_usize(dim);
        let fp = h.finish();
        Ok(Self {
            epoch: 0,
            dim,
            segments: Vec::new(),
            seg_starts: Vec::new(),
            appended: 0,
            tombstones: Vec::new(),
            dead: 0,
            fp,
            append_fp: fp,
            prev_append_fp: None,
            stats: StreamingStats::new(dim),
            dense: OnceLock::new(),
            alive_ids: OnceLock::new(),
            full: OnceLock::new(),
        })
    }

    /// Row-operations since genesis. Monotone across `append`/`delete`
    /// and invariant to how a stream was chunked; **not** part of the
    /// snapshot's identity (compare [`Self::fingerprint`] instead).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Dimensionality `d` (fixed at handle creation).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Alive rows (appended minus tombstoned).
    pub fn len(&self) -> usize {
        self.appended - self.dead
    }

    /// `true` iff no rows are alive.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows ever appended; global ids are `0..appended_len()`.
    pub fn appended_len(&self) -> usize {
        self.appended
    }

    /// Tombstoned rows.
    pub fn tombstone_count(&self) -> usize {
        self.dead
    }

    /// `true` iff global id `id` is deleted (out-of-range ids are not
    /// tombstoned — they were never appended).
    pub fn is_tombstoned(&self, id: usize) -> bool {
        id < self.appended && self.tombstones[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// The full epoch chain — this snapshot's identity. Sessions pin it
    /// at open; caches and artifacts key on it, so stale entries become
    /// unreachable the moment the data moves on.
    pub fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    /// The append-only chain (deletes excluded) — the lineage key for
    /// incremental index structures.
    pub fn append_fingerprint(&self) -> Fingerprint {
        self.append_fp
    }

    /// The append-only chain before this epoch's latest append batch, if
    /// any batch was ever appended.
    pub fn prev_append_fingerprint(&self) -> Option<Fingerprint> {
        self.prev_append_fp
    }

    /// Alive rows in global-id order — the dense view a pinned session
    /// runs over. Materialized once per snapshot and shared.
    pub fn rows(&self) -> Arc<Vec<Vec<f64>>> {
        self.materialize_dense();
        Arc::clone(self.dense.get().unwrap_or_else(|| unreachable!()))
    }

    /// Global id of each dense row (ascending). `alive_ids()[k]` is the
    /// global id of `rows()[k]`.
    pub fn alive_ids(&self) -> Arc<Vec<usize>> {
        self.materialize_dense();
        Arc::clone(self.alive_ids.get().unwrap_or_else(|| unreachable!()))
    }

    /// Dense index of global id `id`, or `None` if tombstoned / out of
    /// range.
    pub fn dense_index_of(&self, id: usize) -> Option<usize> {
        if id >= self.appended || self.is_tombstoned(id) {
            return None;
        }
        let ids = self.alive_ids();
        ids.binary_search(&id).ok()
    }

    /// Every appended row (tombstoned included) in global-id order — for
    /// index structures that insert append-only and filter tombstones at
    /// search time.
    pub fn all_rows(&self) -> Arc<Vec<Vec<f64>>> {
        Arc::clone(self.full.get_or_init(|| {
            let mut out = Vec::with_capacity(self.appended);
            for seg in &self.segments {
                for i in 0..seg.len() {
                    out.push(seg.row(i));
                }
            }
            Arc::new(out)
        }))
    }

    /// Gather the row with global id `id` (alive or tombstoned).
    ///
    /// # Panics
    /// Panics if `id` was never appended.
    pub fn row(&self, id: usize) -> Vec<f64> {
        assert!(id < self.appended, "EpochSnapshot: row {id} never appended");
        // seg_starts is ascending; find the owning segment.
        let seg = match self.seg_starts.binary_search(&id) {
            Ok(k) => k,
            Err(k) => k - 1,
        };
        self.segments[seg].row(id - self.seg_starts[seg])
    }

    /// The rank-1-maintained global statistics of the alive rows.
    pub fn stats(&self) -> &StreamingStats {
        &self.stats
    }

    fn materialize_dense(&self) {
        if self.dense.get().is_some() {
            return;
        }
        let mut rows = Vec::with_capacity(self.len());
        let mut ids = Vec::with_capacity(self.len());
        let mut id = 0usize;
        for seg in &self.segments {
            for i in 0..seg.len() {
                if !self.is_tombstoned(id) {
                    rows.push(seg.row(i));
                    ids.push(id);
                }
                id += 1;
            }
        }
        let _ = self.dense.set(Arc::new(rows));
        let _ = self.alive_ids.set(Arc::new(ids));
    }

    /// Successor snapshot with `rows` appended (one new shared segment).
    fn appended_with(&self, rows: &[Vec<f64>]) -> Result<Self, EpochError> {
        for (i, row) in rows.iter().enumerate() {
            if row.len() != self.dim {
                return Err(EpochError::DimMismatch {
                    expected: self.dim,
                    got: row.len(),
                    row: i,
                });
            }
            if row.iter().any(|x| !x.is_finite()) {
                return Err(EpochError::NonFinite { row: i });
            }
        }
        if rows.is_empty() {
            return Ok(self.shallow_clone());
        }
        let mut fp = self.fp;
        let mut append_fp = self.append_fp;
        let mut stats = self.stats.clone();
        // The alive rows, maintained incrementally so exact checkpoints
        // see the stream state *at that row-operation* — identical
        // whether the stream arrived chunked or batched.
        let mut alive = self.rows().as_ref().clone();
        let mut alive_ids = self.alive_ids().as_ref().clone();
        for (next_id, row) in (self.appended..).zip(rows.iter()) {
            fp = chain_append(fp, row);
            append_fp = chain_append(append_fp, row);
            stats.push(row);
            alive.push(row.clone());
            alive_ids.push(next_id);
            stats.maybe_checkpoint(&alive);
        }
        let mut segments = self.segments.clone();
        let mut seg_starts = self.seg_starts.clone();
        seg_starts.push(self.appended);
        segments.push(Arc::new(ColumnStore::from_rows(rows)));
        let appended = self.appended + rows.len();
        let mut tombstones = self.tombstones.clone();
        tombstones.resize(appended.div_ceil(64), 0);
        let snap = Self {
            epoch: self.epoch + rows.len() as u64,
            dim: self.dim,
            segments,
            seg_starts,
            appended,
            tombstones,
            dead: self.dead,
            fp,
            append_fp,
            prev_append_fp: Some(self.append_fp),
            stats,
            dense: OnceLock::new(),
            alive_ids: OnceLock::new(),
            full: OnceLock::new(),
        };
        let _ = snap.dense.set(Arc::new(alive));
        let _ = snap.alive_ids.set(Arc::new(alive_ids));
        Ok(snap)
    }

    /// Successor snapshot with `ids` tombstoned. Out-of-range ids are a
    /// typed refusal; already-tombstoned ids are skipped without folding
    /// into the chain (so `delete` is idempotent and chunking-invariant).
    fn deleted_with(&self, ids: &[usize]) -> Result<Self, EpochError> {
        for &id in ids {
            if id >= self.appended {
                return Err(EpochError::UnknownId {
                    id,
                    appended: self.appended,
                });
            }
        }
        let mut fp = self.fp;
        let mut stats = self.stats.clone();
        let mut tombstones = self.tombstones.clone();
        let mut dead = self.dead;
        let mut ops = 0u64;
        let mut alive = self.rows().as_ref().clone();
        let mut alive_ids = self.alive_ids().as_ref().clone();
        for &id in ids {
            if tombstones[id / 64] & (1u64 << (id % 64)) != 0 {
                continue; // idempotent: already dead, nothing folds
            }
            tombstones[id / 64] |= 1u64 << (id % 64);
            dead += 1;
            ops += 1;
            fp = chain_delete(fp, id);
            let k = alive_ids
                .binary_search(&id)
                .unwrap_or_else(|_| unreachable!("alive id {id} missing from dense view"));
            let row = alive.remove(k);
            alive_ids.remove(k);
            stats.remove(&row);
            stats.maybe_checkpoint(&alive);
        }
        if ops == 0 {
            return Ok(self.shallow_clone());
        }
        let snap = Self {
            epoch: self.epoch + ops,
            dim: self.dim,
            segments: self.segments.clone(),
            seg_starts: self.seg_starts.clone(),
            appended: self.appended,
            tombstones,
            dead,
            fp,
            append_fp: self.append_fp,
            prev_append_fp: self.prev_append_fp,
            stats,
            dense: OnceLock::new(),
            alive_ids: OnceLock::new(),
            full: OnceLock::new(),
        };
        let _ = snap.dense.set(Arc::new(alive));
        let _ = snap.alive_ids.set(Arc::new(alive_ids));
        Ok(snap)
    }

    /// A field-for-field clone sharing the lazily materialized views
    /// (used when a mutation turns out to be a no-op).
    fn shallow_clone(&self) -> Self {
        let dense = OnceLock::new();
        if let Some(v) = self.dense.get() {
            let _ = dense.set(Arc::clone(v));
        }
        let alive_ids = OnceLock::new();
        if let Some(v) = self.alive_ids.get() {
            let _ = alive_ids.set(Arc::clone(v));
        }
        let full = OnceLock::new();
        if let Some(v) = self.full.get() {
            let _ = full.set(Arc::clone(v));
        }
        Self {
            epoch: self.epoch,
            dim: self.dim,
            segments: self.segments.clone(),
            seg_starts: self.seg_starts.clone(),
            appended: self.appended,
            tombstones: self.tombstones.clone(),
            dead: self.dead,
            fp: self.fp,
            append_fp: self.append_fp,
            prev_append_fp: self.prev_append_fp,
            stats: self.stats.clone(),
            dense,
            alive_ids,
            full,
        }
    }
}

fn chain_append(prev: Fingerprint, row: &[f64]) -> Fingerprint {
    let mut h = Fnv128::new();
    h.write_str("epoch-append");
    h.write_fingerprint(prev);
    h.write_f64s(row);
    h.finish()
}

fn chain_delete(prev: Fingerprint, id: usize) -> Fingerprint {
    let mut h = Fnv128::new();
    h.write_str("epoch-delete");
    h.write_fingerprint(prev);
    h.write_usize(id);
    h.finish()
}

/// The epoch-versioned dataset handle — the redesigned entry point every
/// search API takes. `append` / `delete` produce immutable
/// [`EpochSnapshot`]s; readers pin a snapshot and are never invalidated
/// under their feet. See the module docs for the consistency model.
#[derive(Debug)]
pub struct DatasetHandle {
    current: Mutex<Arc<EpochSnapshot>>,
}

impl DatasetHandle {
    /// An empty handle of dimensionality `dim`, ready for streaming
    /// ingest.
    ///
    /// # Errors
    /// [`EpochError::ZeroDim`] when `dim == 0`.
    pub fn empty(dim: usize) -> Result<Self, EpochError> {
        Ok(Self {
            current: Mutex::new(Arc::new(EpochSnapshot::genesis(dim)?)),
        })
    }

    /// A handle seeded with `rows` — exactly equivalent to an empty
    /// handle with `rows` appended (same chain, same epoch number), so a
    /// seeded handle and a streamed one are interchangeable.
    ///
    /// # Errors
    /// [`EpochError::ZeroDim`] on an empty or zero-dimensional seed;
    /// [`EpochError::DimMismatch`] / [`EpochError::NonFinite`] on bad
    /// rows.
    pub fn new(rows: &[Vec<f64>]) -> Result<Self, EpochError> {
        let dim = rows.first().map_or(0, Vec::len);
        let handle = Self::empty(dim)?;
        handle.append(rows)?;
        Ok(handle)
    }

    /// The current epoch snapshot. Sessions pin this at open.
    pub fn snapshot(&self) -> Arc<EpochSnapshot> {
        Arc::clone(&self.lock())
    }

    /// The current epoch number (row-operations since genesis).
    pub fn epoch(&self) -> u64 {
        self.lock().epoch
    }

    /// Dimensionality `d` (fixed at creation).
    pub fn dim(&self) -> usize {
        self.lock().dim
    }

    /// Alive rows in the current epoch.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` iff the current epoch holds no alive rows.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Append `rows`, producing (and returning) the next epoch. An empty
    /// batch is a no-op returning the current snapshot.
    ///
    /// # Errors
    /// [`EpochError::DimMismatch`] / [`EpochError::NonFinite`]; the
    /// handle is unchanged on error (batches apply atomically).
    pub fn append(&self, rows: &[Vec<f64>]) -> Result<Arc<EpochSnapshot>, EpochError> {
        let mut cur = self.lock();
        let next = Arc::new(cur.appended_with(rows)?);
        *cur = Arc::clone(&next);
        Ok(next)
    }

    /// Tombstone `ids`, producing (and returning) the next epoch.
    /// Already-deleted ids are skipped (idempotent); unknown ids are a
    /// typed refusal and the handle is unchanged.
    ///
    /// # Errors
    /// [`EpochError::UnknownId`] when any id was never appended.
    pub fn delete(&self, ids: &[usize]) -> Result<Arc<EpochSnapshot>, EpochError> {
        let mut cur = self.lock();
        let next = Arc::new(cur.deleted_with(ids)?);
        *cur = Arc::clone(&next);
        Ok(next)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arc<EpochSnapshot>> {
        self.current.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..d).map(|_| unif() * 100.0 - 50.0).collect())
            .collect()
    }

    #[test]
    fn chunked_and_batched_appends_are_identical() {
        let data = rows(200, 6, 0xABCD);
        let batched = DatasetHandle::new(&data).expect("batched");
        let chunked = DatasetHandle::empty(6).expect("empty");
        for chunk in data.chunks(7) {
            chunked.append(chunk).expect("chunk");
        }
        let (a, b) = (batched.snapshot(), chunked.snapshot());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.append_fingerprint(), b.append_fingerprint());
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.rows().iter().zip(b.rows().iter()) {
            for (p, q) in x.iter().zip(y) {
                assert_eq!(p.to_bits(), q.to_bits());
            }
        }
        for (p, q) in a.stats().mean().iter().zip(b.stats().mean()) {
            assert_eq!(p.to_bits(), q.to_bits(), "chunked mean drifted");
        }
        let (ca, cb) = (a.stats().covariance(), b.stats().covariance());
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(ca[(i, j)].to_bits(), cb[(i, j)].to_bits());
            }
        }
    }

    #[test]
    fn chunked_and_batched_deletes_are_identical() {
        let data = rows(120, 4, 0x5150);
        let ids: Vec<usize> = (0..120).step_by(3).collect();
        let batched = DatasetHandle::new(&data).expect("handle");
        batched.delete(&ids).expect("delete");
        let chunked = DatasetHandle::new(&data).expect("handle");
        for chunk in ids.chunks(5) {
            chunked.delete(chunk).expect("chunk");
        }
        let (a, b) = (batched.snapshot(), chunked.snapshot());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.len(), 120 - ids.len());
        assert_eq!(*a.alive_ids(), *b.alive_ids());
        for (p, q) in a.stats().mean().iter().zip(b.stats().mean()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn delete_is_idempotent_and_appends_change_identity() {
        let h = DatasetHandle::new(&rows(30, 3, 7)).expect("handle");
        let once = h.delete(&[4]).expect("delete");
        let twice = h.delete(&[4, 4]).expect("redelete");
        assert_eq!(once.fingerprint(), twice.fingerprint());
        assert_eq!(once.epoch(), twice.epoch());
        let before = h.snapshot().fingerprint();
        h.append(&rows(1, 3, 9)).expect("append");
        assert_ne!(h.snapshot().fingerprint(), before);
    }

    #[test]
    fn streaming_stats_track_exact_recompute() {
        // A long update/downdate stream (several checkpoints deep) stays
        // within the documented tolerance of the exact statistics.
        let data = rows(300, 5, 0xFEED);
        let h = DatasetHandle::new(&data).expect("handle");
        h.delete(&(0..90).collect::<Vec<_>>()).expect("delete");
        h.append(&rows(40, 5, 0xBEEF)).expect("append");
        let snap = h.snapshot();
        let alive = snap.rows();
        let exact_mean = hinn_linalg::stats::mean_vector(&alive);
        let exact_cov = hinn_linalg::stats::covariance_matrix(&alive);
        for (a, b) in snap.stats().mean().iter().zip(&exact_mean) {
            assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
        }
        let cov = snap.stats().covariance();
        for i in 0..5 {
            for j in 0..5 {
                let (a, b) = (cov[(i, j)], exact_cov[(i, j)]);
                assert!(
                    (a - b).abs() <= 1e-6 * (1.0 + b.abs()),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
        assert_eq!(snap.stats().count(), snap.len());
    }

    #[test]
    fn global_ids_and_dense_view_agree() {
        let data = rows(50, 3, 0x1234);
        let h = DatasetHandle::new(&data).expect("handle");
        h.delete(&[0, 7, 49]).expect("delete");
        let snap = h.snapshot();
        assert_eq!(snap.len(), 47);
        assert_eq!(snap.appended_len(), 50);
        assert_eq!(snap.tombstone_count(), 3);
        assert!(snap.is_tombstoned(7));
        assert!(!snap.is_tombstoned(8));
        assert_eq!(snap.dense_index_of(7), None);
        let ids = snap.alive_ids();
        for (k, &id) in ids.iter().enumerate() {
            assert_eq!(snap.dense_index_of(id), Some(k));
            assert_eq!(snap.rows()[k], data[id]);
            assert_eq!(snap.row(id), data[id]);
        }
        assert_eq!(snap.all_rows().len(), 50);
        assert_eq!(snap.all_rows()[7], data[7]);
    }

    #[test]
    fn mutation_refusals_are_typed_and_atomic() {
        let h = DatasetHandle::new(&rows(10, 3, 1)).expect("handle");
        let fp = h.snapshot().fingerprint();
        assert!(matches!(
            h.append(&[vec![1.0, 2.0]]),
            Err(EpochError::DimMismatch {
                expected: 3,
                got: 2,
                row: 0
            })
        ));
        assert!(matches!(
            h.append(&[vec![1.0, 2.0, f64::NAN]]),
            Err(EpochError::NonFinite { row: 0 })
        ));
        assert!(matches!(
            h.delete(&[3, 99]),
            Err(EpochError::UnknownId {
                id: 99,
                appended: 10
            })
        ));
        assert_eq!(
            h.snapshot().fingerprint(),
            fp,
            "failed batch mutated the handle"
        );
        assert!(matches!(DatasetHandle::empty(0), Err(EpochError::ZeroDim)));
        assert!(matches!(DatasetHandle::new(&[]), Err(EpochError::ZeroDim)));
    }

    #[test]
    fn seeded_equals_streamed_from_genesis() {
        let data = rows(64, 4, 0x42);
        let seeded = DatasetHandle::new(&data).expect("seeded");
        let streamed = DatasetHandle::empty(4).expect("empty");
        for row in &data {
            streamed.append(std::slice::from_ref(row)).expect("row");
        }
        assert_eq!(
            seeded.snapshot().fingerprint(),
            streamed.snapshot().fingerprint()
        );
        // Checkpoints fired mid-stream (64 rows = one full cadence) and
        // the stats still match bit-for-bit.
        for (a, b) in seeded
            .snapshot()
            .stats()
            .mean()
            .iter()
            .zip(streamed.snapshot().stats().mean())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
