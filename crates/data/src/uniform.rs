//! Baseline distributions: the uniform hypercube (§4.2's "poorly behaved"
//! case — high local implicit dimensionality, hence truly meaningless
//! nearest neighbors) and isotropic Gaussian blobs for controlled tests.

use crate::dataset::Dataset;
use crate::projected::randn;
use rand::Rng;

/// `n` points uniform in `[0, range]^d` — the canonical data set for which
/// high-dimensional NN search is *not* meaningful (§4.2 uses
/// `N = 5000`, `d = 20`).
pub fn uniform_hypercube<R: Rng>(n: usize, d: usize, range: f64, rng: &mut R) -> Dataset {
    assert!(
        n > 0 && d > 0,
        "uniform_hypercube: n and d must be positive"
    );
    assert!(range > 0.0, "uniform_hypercube: range must be positive");
    let points = (0..n)
        .map(|_| (0..d).map(|_| rng.gen_range(0.0..range)).collect())
        .collect();
    Dataset::unlabeled(format!("uniform({n}x{d})"), points)
}

/// `n` points from an isotropic Gaussian centered at `center` with standard
/// deviation `sigma` — a single unambiguous full-space cluster.
pub fn gaussian_blob<R: Rng>(n: usize, center: &[f64], sigma: f64, rng: &mut R) -> Dataset {
    assert!(n > 0, "gaussian_blob: n must be positive");
    assert!(sigma > 0.0, "gaussian_blob: sigma must be positive");
    let points = (0..n)
        .map(|_| center.iter().map(|c| c + sigma * randn(rng)).collect())
        .collect();
    let labels = vec![Some(0); n];
    Dataset::new(
        format!("gaussian-blob({n}x{})", center.len()),
        points,
        labels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_stays_in_box() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = uniform_hypercube(500, 7, 10.0, &mut rng);
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dim(), 7);
        for p in &ds.points {
            assert!(p.iter().all(|&v| (0.0..10.0).contains(&v)));
        }
    }

    #[test]
    fn uniform_mean_near_center() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = uniform_hypercube(5000, 3, 2.0, &mut rng);
        let mean = hinn_linalg::stats::mean_vector(&ds.points);
        for m in mean {
            assert!((m - 1.0).abs() < 0.05, "uniform mean off: {m}");
        }
    }

    #[test]
    fn blob_concentrates_at_center() {
        let mut rng = StdRng::seed_from_u64(3);
        let center = vec![5.0, -3.0, 0.0];
        let ds = gaussian_blob(4000, &center, 0.5, &mut rng);
        let mean = hinn_linalg::stats::mean_vector(&ds.points);
        for (m, c) in mean.iter().zip(&center) {
            assert!((m - c).abs() < 0.05);
        }
        let var = hinn_linalg::stats::coordinate_variances(&ds.points);
        for v in var {
            assert!(
                (v - 0.25).abs() < 0.03,
                "variance should be σ²=0.25, got {v}"
            );
        }
    }

    #[test]
    fn blob_is_labeled_single_cluster() {
        let mut rng = StdRng::seed_from_u64(4);
        let ds = gaussian_blob(10, &[0.0], 1.0, &mut rng);
        assert_eq!(ds.n_classes(), 1);
        assert_eq!(ds.cluster_members(0).len(), 10);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_points_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        uniform_hypercube(0, 3, 1.0, &mut rng);
    }
}
