//! Statistically-matched stand-ins for the UCI datasets of §4.3.
//!
//! The paper evaluates on UCI `ionosphere` (351 points, 34 attributes, two
//! classes) and `segmentation` (2310 points, 19 attributes, seven classes).
//! This environment has no network access, so these datasets are *simulated*
//! (documented in `DESIGN.md`): same cardinality, dimensionality, and class
//! structure.
//!
//! The generative model mirrors what makes the real datasets behave the way
//! Table 2 reports:
//!
//! * each class is **multimodal** — a union of a few *subclusters*, each
//!   tight in its own small random subset of attributes and noise-like in
//!   the rest (radar returns / image patches of one class come in several
//!   distinct modes);
//! * within a subcluster's signal attributes the spread is small relative
//!   to the attribute range, so a well-chosen 2-D projection shows a crisp
//!   density spike — what the paper's visual profiles rely on;
//! * in full dimensionality the many noise attributes dilute the signal and
//!   the modes fragment each class, so plain L2 k-NN lands in the 60–75%
//!   accuracy band the paper reports for its baseline.

use crate::dataset::Dataset;
use crate::projected::randn;
use rand::Rng;

/// Parameters of a class-structured synthetic dataset.
#[derive(Clone, Debug)]
pub struct ClassSpec {
    /// Dataset name.
    pub name: String,
    /// Points per class (`len()` = number of classes).
    pub class_sizes: Vec<usize>,
    /// Full dimensionality.
    pub dim: usize,
    /// Number of informative attributes per subcluster.
    pub signal_dims: usize,
    /// Subclusters (modes) per class.
    pub subclusters: usize,
    /// Base standard deviation of the signal attributes around the
    /// subcluster center.
    pub signal_sigma: f64,
    /// Anisotropy of the signal: attribute `k` of a mode gets
    /// `σ_k = signal_sigma · sigma_spread^k`. With `sigma_spread > 1` each
    /// mode has a couple of razor-tight attributes (which a 2-D projection
    /// exposes crisply) and progressively looser ones (which dilute the
    /// summed full-dimensional signal that L2 depends on) — the asymmetry
    /// real feature sets show.
    pub sigma_spread: f64,
    /// Coordinates live in `[0, range]`; noise attributes are uniform over
    /// the full range.
    pub range: f64,
    /// Fraction of each class generated as *scatter*: points that carry the
    /// class label but no mode structure (uniform in every attribute). Real
    /// UCI classes contain such hard, unstructured instances; they cap the
    /// accuracy of every method and pull the full-dimensional baseline
    /// toward the paper's reported numbers.
    pub scatter_fraction: f64,
}

/// Ground truth for one generated mode (subcluster).
#[derive(Clone, Debug)]
pub struct ModeInfo {
    /// The class this mode belongs to.
    pub class: usize,
    /// The informative attributes of this mode.
    pub dims: Vec<usize>,
    /// The mode center in those attributes.
    pub center: Vec<f64>,
    /// Number of points generated for this mode.
    pub size: usize,
}

/// Generate a dataset of multimodal subspace-clustered classes (see module
/// docs).
pub fn class_subspace_dataset<R: Rng>(spec: &ClassSpec, rng: &mut R) -> Dataset {
    class_subspace_dataset_detailed(spec, rng).0
}

/// [`class_subspace_dataset`] plus per-point mode ids and per-mode ground
/// truth (for evaluation and diagnostics).
pub fn class_subspace_dataset_detailed<R: Rng>(
    spec: &ClassSpec,
    rng: &mut R,
) -> (Dataset, Vec<usize>, Vec<ModeInfo>) {
    assert!(!spec.class_sizes.is_empty(), "ClassSpec: no classes");
    assert!(
        spec.signal_dims >= 1 && spec.signal_dims <= spec.dim,
        "ClassSpec: signal_dims must be in [1, dim]"
    );
    assert!(
        spec.subclusters >= 1,
        "ClassSpec: need at least one subcluster"
    );
    assert!(
        spec.signal_sigma > 0.0 && spec.range > 0.0 && spec.sigma_spread > 0.0,
        "ClassSpec: scales must be positive"
    );
    let d = spec.dim;
    let total: usize = spec.class_sizes.iter().sum();
    let mut points = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    let mut mode_ids = Vec::with_capacity(total);
    let mut modes = Vec::new();

    assert!(
        (0.0..1.0).contains(&spec.scatter_fraction),
        "ClassSpec: scatter_fraction must be in [0, 1)"
    );
    for (c, &size) in spec.class_sizes.iter().enumerate() {
        // Scatter: labeled but unstructured points. Their mode id is the
        // sentinel `usize::MAX` — they belong to no mode.
        let n_scatter = (size as f64 * spec.scatter_fraction).round() as usize;
        for _ in 0..n_scatter {
            points.push((0..d).map(|_| rng.gen_range(0.0..spec.range)).collect());
            labels.push(Some(c));
            mode_ids.push(usize::MAX);
        }
        let size = size - n_scatter;
        // Split the class across its modes (remainder to the first modes).
        let base = size / spec.subclusters;
        let extra = size % spec.subclusters;
        for m in 0..spec.subclusters {
            let mode_size = base + usize::from(m < extra);
            // Mode-specific informative attributes and center.
            let mut pool: Vec<usize> = (0..d).collect();
            let mut dims = Vec::with_capacity(spec.signal_dims);
            for _ in 0..spec.signal_dims {
                let idx = rng.gen_range(0..pool.len());
                dims.push(pool.swap_remove(idx));
            }
            let center: Vec<f64> = (0..spec.signal_dims)
                .map(|_| rng.gen_range(0.0..spec.range))
                .collect();
            let mode_id = modes.len();
            for _ in 0..mode_size {
                let mut x: Vec<f64> = (0..d).map(|_| rng.gen_range(0.0..spec.range)).collect();
                for (k, &dim_idx) in dims.iter().enumerate() {
                    let sigma_k = spec.signal_sigma * spec.sigma_spread.powi(k as i32);
                    x[dim_idx] = center[k] + sigma_k * randn(rng);
                }
                points.push(x);
                labels.push(Some(c));
                mode_ids.push(mode_id);
            }
            modes.push(ModeInfo {
                class: c,
                dims: dims.clone(),
                center: center.clone(),
                size: mode_size,
            });
        }
    }
    (
        Dataset::new(spec.name.clone(), points, labels),
        mode_ids,
        modes,
    )
}

/// Simulated UCI `ionosphere`: 351 × 34, two classes (225 "good",
/// 126 "bad"), each class a union of modes.
pub fn simulated_ionosphere<R: Rng>(rng: &mut R) -> Dataset {
    class_subspace_dataset(
        &ClassSpec {
            name: "ionosphere (simulated)".into(),
            class_sizes: vec![225, 126],
            dim: 34,
            signal_dims: 6,
            subclusters: 4,
            signal_sigma: 0.55,
            sigma_spread: 1.0,
            range: 10.0,
            scatter_fraction: 0.15,
        },
        rng,
    )
}

/// Simulated UCI `segmentation`: 2310 × 19, seven classes of 330.
pub fn simulated_segmentation<R: Rng>(rng: &mut R) -> Dataset {
    class_subspace_dataset(
        &ClassSpec {
            name: "segmentation (simulated)".into(),
            class_sizes: vec![330; 7],
            dim: 19,
            signal_dims: 5,
            subclusters: 3,
            signal_sigma: 0.35,
            sigma_spread: 1.0,
            range: 10.0,
            scatter_fraction: 0.10,
        },
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ionosphere_shape_matches_uci() {
        let mut rng = StdRng::seed_from_u64(1);
        let ds = simulated_ionosphere(&mut rng);
        assert_eq!(ds.len(), 351);
        assert_eq!(ds.dim(), 34);
        assert_eq!(ds.n_classes(), 2);
        assert_eq!(ds.cluster_members(0).len(), 225);
        assert_eq!(ds.cluster_members(1).len(), 126);
    }

    #[test]
    fn segmentation_shape_matches_uci() {
        let mut rng = StdRng::seed_from_u64(2);
        let ds = simulated_segmentation(&mut rng);
        assert_eq!(ds.len(), 2310);
        assert_eq!(ds.dim(), 19);
        assert_eq!(ds.n_classes(), 7);
        for c in 0..7 {
            assert_eq!(ds.cluster_members(c).len(), 330);
        }
    }

    #[test]
    fn single_mode_class_is_tight_in_signal_attributes() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = ClassSpec {
            name: "t".into(),
            class_sizes: vec![200, 200],
            dim: 12,
            signal_dims: 3,
            subclusters: 1,
            signal_sigma: 0.8,
            sigma_spread: 1.0,
            range: 10.0,
            scatter_fraction: 0.0,
        };
        let ds = class_subspace_dataset(&spec, &mut rng);
        for c in 0..2 {
            let pts: Vec<Vec<f64>> = ds
                .cluster_members(c)
                .into_iter()
                .map(|i| ds.points[i].clone())
                .collect();
            let var = hinn_linalg::stats::coordinate_variances(&pts);
            let mut sorted = var.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            // Exactly signal_dims attributes should have variance ≈ σ²
            // (0.64), far below the uniform variance 100/12 ≈ 8.3.
            assert!(sorted[2] < 1.5, "third-smallest variance {}", sorted[2]);
            assert!(sorted[3] > 4.0, "fourth-smallest variance {}", sorted[3]);
        }
    }

    #[test]
    fn modes_split_class_sizes_exactly() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = ClassSpec {
            name: "modes".into(),
            class_sizes: vec![10, 11],
            dim: 6,
            signal_dims: 2,
            subclusters: 3,
            signal_sigma: 0.5,
            sigma_spread: 1.0,
            range: 10.0,
            scatter_fraction: 0.0,
        };
        let ds = class_subspace_dataset(&spec, &mut rng);
        assert_eq!(ds.cluster_members(0).len(), 10);
        assert_eq!(ds.cluster_members(1).len(), 11);
        assert_eq!(ds.len(), 21);
    }

    #[test]
    fn subcluster_density_spike_is_visible() {
        // The property the interactive system needs: inside a mode's signal
        // plane, the mode's density peak must stand far above the uniform
        // background level. Mode size ≈ 330/4 ≈ 82, σ = 0.7:
        // peak ≈ (82/2310) / (2π·0.49) ≈ 0.0115 vs background 1/100 = 0.01
        // — per *mode*; the test verifies the aggregate spike empirically.
        let mut rng = StdRng::seed_from_u64(4);
        let ds = simulated_segmentation(&mut rng);
        // Estimate: points of class 0 within 2σ of one member in the two
        // dims where that member's mode is tightest.
        let members = ds.cluster_members(0);
        let pts: Vec<Vec<f64>> = members.iter().map(|&i| ds.points[i].clone()).collect();
        // Find the two attributes with the lowest class variance (mix of
        // modes, but the tightest pair still reflects real structure).
        let var = hinn_linalg::stats::coordinate_variances(&pts);
        let mut idx: Vec<usize> = (0..var.len()).collect();
        idx.sort_by(|&a, &b| var[a].partial_cmp(&var[b]).unwrap());
        assert!(
            var[idx[0]] < 6.0,
            "some attribute should be structured: {}",
            var[idx[0]]
        );
    }

    #[test]
    fn full_dim_distance_is_noise_dominated() {
        // The substitution's point: in full dimensionality the expected
        // within-class distance is close to the between-class distance.
        let mut rng = StdRng::seed_from_u64(4);
        let ds = simulated_segmentation(&mut rng);
        let a = &ds.points[0];
        let same: Vec<f64> = ds.cluster_members(0)[1..60]
            .iter()
            .map(|&i| hinn_linalg::vector::dist(a, &ds.points[i]))
            .collect();
        let other: Vec<f64> = ds.cluster_members(1)[..60]
            .iter()
            .map(|&i| hinn_linalg::vector::dist(a, &ds.points[i]))
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ratio = mean(&other) / mean(&same);
        assert!(
            ratio < 1.5,
            "between/within distance ratio should be modest in full dim, got {ratio}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = simulated_ionosphere(&mut StdRng::seed_from_u64(9));
        let b = simulated_ionosphere(&mut StdRng::seed_from_u64(9));
        assert_eq!(a.points, b.points);
    }

    #[test]
    #[should_panic(expected = "signal_dims")]
    fn bad_spec_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        class_subspace_dataset(
            &ClassSpec {
                name: "bad".into(),
                class_sizes: vec![10],
                dim: 4,
                signal_dims: 9,
                subclusters: 1,
                signal_sigma: 1.0,
                sigma_spread: 1.0,
                range: 1.0,
                scatter_fraction: 0.0,
            },
            &mut rng,
        );
    }
}
