//! Minimal CSV persistence for datasets and experiment artifacts.
//!
//! Format: one header row `x0,x1,…,x{d-1},label`, then one row per point;
//! the label column holds the class index or an empty field for outliers.
//! Hand-rolled (the offline crate set has no `csv` crate); numbers are
//! written with enough precision to round-trip `f64` exactly.

use crate::dataset::Dataset;
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Write `dataset` as CSV to `path`.
pub fn save_csv(dataset: &Dataset, path: &Path) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    let d = dataset.dim();
    for j in 0..d {
        write!(w, "x{j},")?;
    }
    writeln!(w, "label")?;
    for (p, l) in dataset.points.iter().zip(&dataset.labels) {
        for v in p {
            // {:?} prints the shortest representation that round-trips.
            write!(w, "{v:?},")?;
        }
        match l {
            Some(c) => writeln!(w, "{c}")?,
            None => writeln!(w)?,
        }
    }
    w.flush()
}

/// Read a dataset previously written by [`save_csv`].
///
/// # Errors
/// Returns `InvalidData` on malformed rows (wrong column count, unparsable
/// numbers) and propagates I/O errors.
pub fn load_csv(name: &str, path: &Path) -> io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    let reader = io::BufReader::new(file);
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let d = header.split(',').count().saturating_sub(1);
    if d == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "header has no data columns",
        ));
    }
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != d + 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "row {}: expected {} fields, got {}",
                    lineno + 2,
                    d + 1,
                    fields.len()
                ),
            ));
        }
        let mut p = Vec::with_capacity(d);
        for f in &fields[..d] {
            p.push(f.parse::<f64>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("row {}: bad number {f:?}: {e}", lineno + 2),
                )
            })?);
        }
        let label = if fields[d].trim().is_empty() {
            None
        } else {
            Some(fields[d].trim().parse::<usize>().map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("row {}: bad label {:?}: {e}", lineno + 2, fields[d]),
                )
            })?)
        };
        points.push(p);
        labels.push(label);
    }
    if points.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "CSV has no data rows",
        ));
    }
    Ok(Dataset::new(name, points, labels))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hinn_csv_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ds = Dataset::new(
            "rt",
            vec![vec![1.5, -2.25, 1.0 / 3.0], vec![0.0, 1e-10, 4.0]],
            vec![Some(1), None],
        );
        let path = tmp("roundtrip");
        save_csv(&ds, &path).unwrap();
        let back = load_csv("rt", &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.points, ds.points);
        assert_eq!(back.labels, ds.labels);
    }

    #[test]
    fn rejects_ragged_rows() {
        let path = tmp("ragged");
        std::fs::write(&path, "x0,x1,label\n1.0,2.0,0\n1.0,0\n").unwrap();
        let err = load_csv("bad", &path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_bad_numbers_and_labels() {
        let path = tmp("badnum");
        std::fs::write(&path, "x0,label\nfoo,0\n").unwrap();
        assert!(load_csv("bad", &path).is_err());
        std::fs::write(&path, "x0,label\n1.0,minus\n").unwrap();
        assert!(load_csv("bad", &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_empty_file() {
        let path = tmp("empty");
        std::fs::write(&path, "").unwrap();
        assert!(load_csv("bad", &path).is_err());
        std::fs::write(&path, "x0,label\n").unwrap();
        assert!(load_csv("bad", &path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn skips_blank_lines() {
        let path = tmp("blank");
        std::fs::write(&path, "x0,label\n1.0,0\n\n2.0,1\n").unwrap();
        let ds = load_csv("ok", &path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(ds.len(), 2);
    }
}
