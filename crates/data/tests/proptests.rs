//! Property-based tests for the data generators.

use hinn_data::projected::{
    generate_projected_clusters_detailed, Orientation, ProjectedClusterSpec,
};
use hinn_data::uci::{class_subspace_dataset_detailed, ClassSpec};
use hinn_data::uniform::uniform_hypercube;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn projected_generator_respects_spec(
        n in 50usize..300,
        dim in 4usize..12,
        n_clusters in 1usize..4,
        outlier_pct in 0usize..30,
        seed in 0u64..1000,
        arbitrary in proptest::bool::ANY,
    ) {
        let cluster_dim = (dim / 2).max(1);
        let spec = ProjectedClusterSpec {
            name: "prop".into(),
            n_points: n,
            dim,
            n_clusters,
            cluster_dim,
            outlier_fraction: outlier_pct as f64 / 100.0,
            range: 100.0,
            spread: 2.0,
            orientation: if arbitrary { Orientation::Arbitrary } else { Orientation::AxisParallel },
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let (ds, infos) = generate_projected_clusters_detailed(&spec, &mut rng);
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.dim(), dim);
        prop_assert_eq!(infos.len(), n_clusters);
        // Sizes account for every point.
        let total: usize = infos.iter().map(|i| i.size).sum();
        prop_assert_eq!(total + ds.outliers().len(), n);
        // Subspaces are orthonormal and of the declared dimensionality.
        for info in &infos {
            prop_assert_eq!(info.subspace.dim(), cluster_dim);
            prop_assert!(info.subspace.is_orthonormal(1e-8));
            prop_assert_eq!(info.sigmas.len(), cluster_dim);
        }
        // Labels agree with reported sizes.
        for (c, info) in infos.iter().enumerate() {
            prop_assert_eq!(ds.cluster_members(c).len(), info.size);
        }
    }

    #[test]
    fn class_generator_sizes_exact(
        sizes in proptest::collection::vec(5usize..60, 1..5),
        signal in 1usize..4,
        modes in 1usize..4,
        scatter_pct in 0usize..40,
        seed in 0u64..1000,
    ) {
        let spec = ClassSpec {
            name: "prop".into(),
            class_sizes: sizes.clone(),
            dim: 8,
            signal_dims: signal,
            subclusters: modes,
            signal_sigma: 0.5,
            sigma_spread: 1.2,
            range: 10.0,
            scatter_fraction: scatter_pct as f64 / 100.0,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let (ds, mode_ids, mode_infos) = class_subspace_dataset_detailed(&spec, &mut rng);
        prop_assert_eq!(ds.len(), sizes.iter().sum::<usize>());
        prop_assert_eq!(mode_ids.len(), ds.len());
        for (c, &size) in sizes.iter().enumerate() {
            prop_assert_eq!(ds.cluster_members(c).len(), size);
        }
        // Every non-scatter mode id refers to a real mode of the right class.
        for (i, &mid) in mode_ids.iter().enumerate() {
            if let Some(info) = mode_infos.get(mid) {
                prop_assert_eq!(Some(info.class), ds.labels[i]);
            }
        }
        // Mode sizes sum to class size minus scatter.
        let mode_total: usize = mode_infos.iter().map(|m| m.size).sum();
        prop_assert!(mode_total <= ds.len());
    }

    #[test]
    fn uniform_is_in_bounds_and_unlabeled(
        n in 1usize..300,
        d in 1usize..10,
        range_tenths in 1usize..100,
        seed in 0u64..1000,
    ) {
        let range = range_tenths as f64 / 10.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = uniform_hypercube(n, d, range, &mut rng);
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.dim(), d);
        prop_assert_eq!(ds.outliers().len(), n);
        for p in &ds.points {
            for &v in p {
                prop_assert!((0.0..range).contains(&v));
            }
        }
    }

    #[test]
    fn csv_roundtrip_any_dataset(
        n in 1usize..40,
        d in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ds = uniform_hypercube(n, d, 10.0, &mut rng);
        let mut path = std::env::temp_dir();
        path.push(format!("hinn_prop_csv_{}_{seed}_{n}_{d}.csv", std::process::id()));
        hinn_data::csv::save_csv(&ds, &path).unwrap();
        let back = hinn_data::csv::load_csv("rt", &path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(back.points, ds.points);
        prop_assert_eq!(back.labels, ds.labels);
    }
}
