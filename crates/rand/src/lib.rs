//! Offline stand-in for the `rand` crate.
//!
//! This build environment has no access to a crates registry, so the
//! workspace ships a minimal, dependency-free implementation of exactly the
//! `rand` 0.8 API surface the repo uses: [`rngs::StdRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! strong for test-data generation and fully deterministic per seed. The
//! stream differs from crates.io `StdRng` (ChaCha12), which is fine: no code
//! in this repo depends on the exact stream, only on determinism per seed.

/// Core trait: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample of a [`Standard`]-distributed value
    /// (`f64` in `[0, 1)`, full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding, mirroring `rand::SeedableRng` (only the `u64` entry point).
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their "standard" distribution.
pub trait Standard: Sized {
    /// Draw one sample from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly, mirroring `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to an excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling with rejection (Lemire):
                // exact uniformity over the span.
                let reject_below = span.wrapping_neg() % span; // 2^64 mod span
                loop {
                    let m = (rng.next_u64() as u128) * (span as u128);
                    if (m as u64) >= reject_below {
                        return self.start + ((m >> 64) as u64) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i32, i64);

/// Generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Deterministic per seed; *not* the ChaCha12 stream of crates.io
    /// `StdRng` (see the crate docs).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Prelude matching `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let r = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&r));
            let i = rng.gen_range(0..17usize);
            assert!(i < 17);
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_mut_reference() {
        fn take<R: Rng>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = take(&mut rng);
        let borrowed: &mut StdRng = &mut rng;
        let _ = take(borrowed);
    }

    #[test]
    fn gen_bool_probabilities() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
    }
}
