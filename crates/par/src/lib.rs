//! Deterministic intra-query data parallelism.
//!
//! Every hot path in this workspace (KDE grid accumulation, covariance/PCA
//! statistics, full-space k-NN scans, VA-file filter scans) is a map-reduce
//! over points. This crate provides the one shared substrate they use, built
//! only on `std::thread::scope` — no external dependencies — with a design
//! that makes the floating-point result **bit-identical for every thread
//! count**, including one:
//!
//! 1. **Fixed chunk boundaries.** The input `0..n` is split into chunks of
//!    [`CHUNK`] items. The boundaries depend only on `n`, never on the
//!    thread count, so the partial result computed for chunk `i` is the
//!    same no matter which worker computes it, or when.
//! 2. **Ordered reduction.** Partials are folded strictly in chunk order
//!    (`0, 1, 2, …`) on the calling thread. Floating-point addition is not
//!    associative, so an unordered (work-stealing) reduction would make
//!    results depend on scheduling; an ordered one makes the parallel sum
//!    a *fixed* parenthesization — the same one the serial path uses.
//!
//! Consequently `parallel(threads = k) == serial` holds **exactly**
//! (`f64::to_bits` equality) for all `k`, which
//! `tests/parallel_equivalence.rs` at the workspace root enforces.
//!
//! Thread counts flow from a single [`Parallelism`] value, plumbed through
//! `SearchConfig` and `BatchRunner` in `hinn-core` so that nested
//! parallelism (a batch of parallel sessions) splits one budget instead of
//! oversubscribing the machine.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Items per chunk. Fixed — chunk boundaries must depend only on the input
/// length, never the thread count, or determinism across thread counts is
/// lost. 1024 points ≈ 160 KB of 20-d `f64` rows: big enough to amortize
/// scheduling, small enough to load-balance.
pub const CHUNK: usize = 1024;

/// Inputs shorter than this run on the calling thread even when the
/// [`Parallelism`] allows more — thread spawn/join costs ~10 µs, which
/// swamps the work at small `n`. Purely a scheduling decision: the chunking
/// and reduction order are identical either way, so results do not change.
pub const SERIAL_CUTOFF: usize = 4 * CHUNK;

/// A thread-count budget for intra-query parallelism.
///
/// `Parallelism` is deliberately *not* a thread pool: the workspace's hot
/// paths are short bursts inside an interactive loop, and scoped threads
/// let every borrow stay a plain `&`/`&mut` with no `'static` bounds. It is
/// a small copyable budget that can be split across nested layers (see
/// [`Parallelism::split`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    threads: usize,
}

/// Environment variable consulted by [`Parallelism::from_env`] (and thus
/// [`Parallelism::default`]): set `HINN_THREADS=k` to pin the budget.
pub const THREADS_ENV: &str = "HINN_THREADS";

impl Parallelism {
    /// One thread: the serial schedule.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Exactly `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads` is 0.
    pub fn fixed(threads: usize) -> Self {
        assert!(threads >= 1, "Parallelism: need at least one thread");
        Self { threads }
    }

    /// All hardware threads the OS reports (1 if unknown).
    pub fn available() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// The `HINN_THREADS` environment variable if set to a positive
    /// integer, otherwise [`Parallelism::available`]. This is the default,
    /// so CI can pin the whole test run to a thread count.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(k) if k >= 1 => Self::fixed(k),
                _ => Self::available(),
            },
            Err(_) => Self::available(),
        }
    }

    /// The thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` iff the budget is one thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Divide the budget among `ways` concurrent consumers (at least one
    /// thread each). `BatchRunner` uses this so `w` concurrent sessions
    /// over a `t`-thread budget get `t/w` threads each instead of `w·t`
    /// total — nested parallelism must not oversubscribe.
    ///
    /// # Panics
    /// Panics if `ways` is 0.
    pub fn split(&self, ways: usize) -> Self {
        assert!(ways >= 1, "Parallelism: split into at least one way");
        Self {
            threads: (self.threads / ways).max(1),
        }
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Number of fixed-size chunks covering `0..n`.
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(CHUNK)
}

/// Half-open index range of chunk `i` over an input of length `n`
/// (the last chunk may be short).
///
/// # Panics
/// Panics if `i >= chunk_count(n)`.
pub fn chunk_range(n: usize, i: usize) -> Range<usize> {
    assert!(i < chunk_count(n), "chunk_range: chunk {i} out of range");
    let start = i * CHUNK;
    start..((start + CHUNK).min(n))
}

/// Map each fixed chunk of `0..n` to a partial result, then fold the
/// partials **in chunk order** on the calling thread.
///
/// `map` must be a pure function of its index range (it sees the same
/// range regardless of thread count or scheduling); under that contract
/// the returned value is bit-identical for every `par` — the only thing
/// parallelism changes is which worker computes which chunk, and the
/// ordered fold erases that distinction.
///
/// Scheduling: with `t` effective workers, chunks are claimed dynamically
/// from an atomic counter (work-stealing friendly for skewed chunk costs);
/// partials land in a per-chunk slot array, so no ordering is lost. With
/// one worker (or `n` below [`SERIAL_CUTOFF`]) everything runs inline on
/// the calling thread — same chunks, same fold, zero thread overhead.
pub fn map_reduce_chunks<P, Out, M, F>(
    par: Parallelism,
    n: usize,
    map: M,
    init: Out,
    fold: F,
) -> Out
where
    P: Send,
    M: Fn(Range<usize>) -> P + Sync,
    F: FnMut(Out, P) -> Out,
{
    let nchunks = chunk_count(n);
    let workers = effective_workers(par, n, nchunks);
    record_dispatch(workers, nchunks);
    let mut fold = fold;
    if workers <= 1 {
        let mut acc = init;
        for i in 0..nchunks {
            acc = fold(acc, map(chunk_range(n, i)));
        }
        return acc;
    }

    let mut partials: Vec<Option<P>> = (0..nchunks).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let map = &map;
        let next = &next;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut out: Vec<(usize, P)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= nchunks {
                            break;
                        }
                        out.push((i, map(chunk_range(n, i))));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, p) in h.join().expect("hinn-par worker panicked") {
                partials[i] = Some(p);
            }
        }
    });
    let mut acc = init;
    for p in partials {
        acc = fold(acc, p.expect("every chunk produced a partial"));
    }
    acc
}

/// Fill `out` in place, chunk by chunk: `fill(start, slice)` receives each
/// fixed chunk (`slice == &mut out[start .. start + slice.len()]`) and must
/// write every element as a pure function of its global index. Disjoint
/// chunks mean no reduction at all, so results are trivially identical for
/// every thread count. This is the primitive behind the k-NN distance scan
/// and the VA-file phase-1 bound scan.
pub fn fill_chunks<T, F>(par: Parallelism, out: &mut [T], fill: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = out.len();
    let nchunks = chunk_count(n);
    let workers = effective_workers(par, n, nchunks);
    record_dispatch(workers, nchunks);
    if workers <= 1 {
        for (i, slice) in out.chunks_mut(CHUNK).enumerate() {
            fill(i * CHUNK, slice);
        }
        return;
    }

    // Static round-robin assignment of chunks to workers: per-element cost
    // is uniform in these scans, and ownership of `&mut` chunks is simplest
    // to establish up front.
    let mut per_worker: Vec<Vec<(usize, &mut [T])>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, slice) in out.chunks_mut(CHUNK).enumerate() {
        per_worker[i % workers].push((i * CHUNK, slice));
    }
    std::thread::scope(|scope| {
        for group in per_worker {
            let fill = &fill;
            scope.spawn(move || {
                for (start, slice) in group {
                    fill(start, slice);
                }
            });
        }
    });
}

/// How many workers to actually spawn: never more than there are chunks,
/// and one (inline) when the input is below [`SERIAL_CUTOFF`].
fn effective_workers(par: Parallelism, n: usize, nchunks: usize) -> usize {
    if n < SERIAL_CUTOFF {
        1
    } else {
        par.threads().min(nchunks).max(1)
    }
}

/// Telemetry for one dispatch decision: chunk volume, inline-vs-parallel
/// outcome, and the worker count actually used. Purely observational — the
/// schedule is decided before this is called and never depends on it.
#[inline]
fn record_dispatch(workers: usize, nchunks: usize) {
    if !hinn_obs::enabled() {
        return;
    }
    hinn_obs::counter("par.chunks", nchunks as u64);
    if workers <= 1 {
        hinn_obs::counter("par.inline", 1);
    } else {
        hinn_obs::counter("par.parallel", 1);
        hinn_obs::counter("par.workers", workers as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_squares(par: Parallelism, n: usize) -> f64 {
        map_reduce_chunks(
            par,
            n,
            |r| r.map(|i| (i as f64).sqrt()).sum::<f64>(),
            0.0f64,
            |a, p| a + p,
        )
    }

    #[test]
    fn empty_input() {
        assert_eq!(chunk_count(0), 0);
        for t in [1, 2, 7] {
            assert_eq!(
                sum_squares(Parallelism::fixed(t), 0).to_bits(),
                0.0f64.to_bits()
            );
            let mut v: Vec<f64> = Vec::new();
            fill_chunks(Parallelism::fixed(t), &mut v, |_, _| panic!("no chunks"));
        }
    }

    #[test]
    fn single_item() {
        assert_eq!(chunk_count(1), 1);
        assert_eq!(chunk_range(1, 0), 0..1);
        for t in [1, 2, 7] {
            assert_eq!(
                sum_squares(Parallelism::fixed(t), 1).to_bits(),
                sum_squares(Parallelism::serial(), 1).to_bits()
            );
        }
    }

    #[test]
    fn n_smaller_than_threads() {
        // 3 items, 7 threads: must not panic, must match serial exactly.
        for n in [1usize, 2, 3] {
            assert_eq!(
                sum_squares(Parallelism::fixed(7), n).to_bits(),
                sum_squares(Parallelism::serial(), n).to_bits()
            );
        }
    }

    #[test]
    fn chunk_boundaries_cover_exactly() {
        // Off-by-one sweep around every boundary-sensitive length.
        for n in [
            0,
            1,
            CHUNK - 1,
            CHUNK,
            CHUNK + 1,
            2 * CHUNK - 1,
            2 * CHUNK,
            2 * CHUNK + 1,
            5 * CHUNK + 17,
        ] {
            let nchunks = chunk_count(n);
            let mut covered = 0usize;
            let mut prev_end = 0usize;
            for i in 0..nchunks {
                let r = chunk_range(n, i);
                assert_eq!(
                    r.start, prev_end,
                    "chunks must be contiguous (n={n}, i={i})"
                );
                assert!(!r.is_empty(), "empty chunk (n={n}, i={i})");
                assert!(r.end <= n);
                covered += r.len();
                prev_end = r.end;
            }
            assert_eq!(covered, n, "chunks must cover 0..{n} exactly");
            assert_eq!(prev_end, n);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_range_out_of_range_panics() {
        chunk_range(CHUNK, 1);
    }

    #[test]
    fn map_reduce_is_bit_identical_across_thread_counts() {
        // Large enough to clear SERIAL_CUTOFF so threads actually spawn.
        let n = 6 * CHUNK + 311;
        let serial = sum_squares(Parallelism::serial(), n);
        for t in [1, 2, 3, 7, 16] {
            let par = sum_squares(Parallelism::fixed(t), n);
            assert_eq!(
                par.to_bits(),
                serial.to_bits(),
                "threads={t}: {par} != {serial}"
            );
        }
    }

    #[test]
    fn fill_chunks_writes_every_element() {
        let n = 5 * CHUNK + 3;
        let mut serial = vec![0u64; n];
        fill_chunks(Parallelism::serial(), &mut serial, |start, s| {
            for (k, v) in s.iter_mut().enumerate() {
                *v = ((start + k) as u64).wrapping_mul(0x9E3779B97F4A7C15);
            }
        });
        for t in [2, 3, 7] {
            let mut par = vec![0u64; n];
            fill_chunks(Parallelism::fixed(t), &mut par, |start, s| {
                for (k, v) in s.iter_mut().enumerate() {
                    *v = ((start + k) as u64).wrapping_mul(0x9E3779B97F4A7C15);
                }
            });
            assert_eq!(serial, par, "threads={t}");
        }
    }

    #[test]
    fn ordered_fold_sees_chunks_in_order() {
        let n = 5 * CHUNK;
        let order = map_reduce_chunks(
            Parallelism::fixed(4),
            n,
            |r| r.start / CHUNK,
            Vec::new(),
            |mut acc: Vec<usize>, i| {
                acc.push(i);
                acc
            },
        );
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallelism_split_never_oversubscribes() {
        let p = Parallelism::fixed(8);
        assert_eq!(p.split(2).threads(), 4);
        assert_eq!(p.split(3).threads(), 2);
        assert_eq!(p.split(8).threads(), 1);
        assert_eq!(p.split(100).threads(), 1);
        assert_eq!(Parallelism::serial().split(4).threads(), 1);
    }

    #[test]
    fn parallelism_constructors() {
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::fixed(3).threads(), 3);
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        Parallelism::fixed(0);
    }
}
