//! The session table: admission, two-tier residency, lazy eviction.

use crate::postmortem::{EventRing, Postmortem, SessionEvent};
use hinn_cache::{Fingerprint, LruCache};
use hinn_core::{
    DatasetHandle, DegradationKind, EpochSnapshot, HinnError, OwnedSessionEngine, SearchConfig,
    SessionCache, SessionEngine, SessionSnapshot, Step,
};
use hinn_user::UserResponse;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Opaque handle to one open session. Ids are assigned sequentially and
/// never reused within a manager's lifetime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id (stable, useful for logging).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from a [`raw`](Self::raw) id that crossed a
    /// process boundary (the wire protocol ships ids as integers). An id
    /// that was never assigned simply names no session: every manager
    /// call returns [`ServeError::UnknownSession`] for it.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// The warm-tier key for this session.
    fn key(self) -> Fingerprint {
        Fingerprint(self.0 as u128)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Serving-layer configuration. `search` configures every session's
/// engine; the rest bounds the manager itself.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// The per-session search configuration.
    pub search: SearchConfig,
    /// Maximum *hot* (fully resident) engines. Opening or resuming past
    /// this bound evicts the least-recently-used hot session to the warm
    /// tier. Must be at least 1.
    pub max_resident: usize,
    /// Capacity of the warm snapshot LRU. A session whose snapshot falls
    /// off this tier is lost ([`ServeError::SessionEvicted`] at its next
    /// submit). Capacity 0 disables the warm tier entirely: every hot
    /// eviction loses the session.
    pub warm_capacity: usize,
    /// Maximum concurrently *open* (hot + warm) sessions; further opens
    /// are refused with [`ServeError::AdmissionDenied`].
    pub max_sessions: usize,
    /// Per-session compute budget. The engine meters compute segments
    /// only — wall-clock time a session spends suspended (user think
    /// time, warm-tier residence) is free, and so is the view
    /// recomputation a warm-tier restore performs (the original
    /// computation was already charged before the snapshot, so eviction
    /// pressure cannot drain a session's budget). Expiry surfaces as
    /// [`ServeError::Engine`] wrapping [`HinnError::Deadline`].
    pub session_deadline: Option<Duration>,
}

impl ServeConfig {
    /// Serving defaults around `search`: 64 hot engines, 4096 warm
    /// snapshots, 8192 open sessions, no deadline.
    pub fn new(search: SearchConfig) -> Self {
        Self {
            search,
            max_resident: 64,
            warm_capacity: 4096,
            max_sessions: 8192,
            session_deadline: None,
        }
    }

    /// Bound the hot tier.
    pub fn with_max_resident(mut self, n: usize) -> Self {
        self.max_resident = n;
        self
    }

    /// Bound the warm tier.
    pub fn with_warm_capacity(mut self, n: usize) -> Self {
        self.warm_capacity = n;
        self
    }

    /// Bound admission.
    pub fn with_max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n;
        self
    }

    /// Give every session a compute budget.
    pub fn with_session_deadline(mut self, d: Duration) -> Self {
        self.session_deadline = Some(d);
        self
    }
}

/// Everything that can go wrong at the serving layer, strictly separated
/// from engine errors (which pass through as [`ServeError::Engine`]).
#[derive(Debug)]
pub enum ServeError {
    /// The manager is at `max_sessions`; retry after some session closes.
    AdmissionDenied {
        /// Sessions currently open.
        live: usize,
        /// The configured bound.
        max: usize,
    },
    /// No session with this id was ever opened (or it was closed).
    UnknownSession(SessionId),
    /// The session's snapshot fell off the warm tier; its state is gone.
    SessionEvicted(SessionId),
    /// The session already produced its outcome (or failed terminally).
    SessionFinished(SessionId),
    /// The engine failed (deadline, degradation-ladder exhaustion, …).
    /// The session is spent.
    Engine(HinnError),
    /// The serving layer is shedding load: the request was refused before
    /// any state changed. Retry after the hinted backoff.
    Overloaded {
        /// Deterministic backoff hint for the client.
        retry_after_ms: u64,
        /// Which ladder refused (admission, fairness, quota, drain, …).
        reason: String,
    },
    /// A guarded submit named a `(major, minor)` cursor that is not the
    /// session's pending view — the response was already applied (e.g. a
    /// retry after a torn reply) or the caller is out of sync. Nothing was
    /// applied; the payload carries the *actual* pending cursor so the
    /// caller can resynchronize.
    CursorMismatch {
        /// The session whose cursor disagreed.
        session: SessionId,
        /// Major iteration of the actual pending view.
        major: usize,
        /// Minor iteration of the actual pending view.
        minor: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::AdmissionDenied { live, max } => {
                write!(f, "admission denied: {live} open sessions (max {max})")
            }
            Self::UnknownSession(id) => write!(f, "unknown {id}"),
            Self::SessionEvicted(id) => {
                write!(f, "{id} was evicted from the warm tier; its state is gone")
            }
            Self::SessionFinished(id) => write!(f, "{id} already finished"),
            Self::Engine(e) => write!(f, "engine error: {e}"),
            Self::Overloaded {
                retry_after_ms,
                reason,
            } => {
                write!(f, "overloaded ({reason}); retry after {retry_after_ms}ms")
            }
            Self::CursorMismatch {
                session,
                major,
                minor,
            } => write!(
                f,
                "{session}: submit cursor mismatch; pending view is ({major}, {minor})"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HinnError> for ServeError {
    fn from(e: HinnError) -> Self {
        Self::Engine(e)
    }
}

/// Where a session's state lives right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Lifecycle {
    /// Resident engine in the hot tier.
    Hot,
    /// Serialized snapshot in the warm tier (or already aged out of it —
    /// discovered lazily at the next submit).
    Warm,
    /// Outcome delivered (or the engine failed); tombstone.
    Finished,
    /// Warm-tier loss discovered; tombstone.
    Evicted,
}

/// A resident engine. The per-session mutex serializes submits to one
/// session while letting other sessions compute concurrently.
struct HotSlot {
    engine: OwnedSessionEngine,
    /// Degradation-log events already mirrored into the session's black
    /// box — `submit` diffs against this to find rungs the last compute
    /// segment took. Reset to the restored engine's log length on a
    /// warm-tier restore (a restore bit-identically replays rungs the
    /// ring already recorded before the suspend).
    degr_seen: usize,
}

/// A checked-out hot slot. While the lease is alive the session is
/// *pinned*: eviction passes skip it entirely. Without the pin there is a
/// window between [`SessionManager::checkout`] releasing the manager lock
/// and the caller locking the slot in which `evict_one` could `try_lock`
/// the idle slot, snapshot its *pre-response* state to the warm tier, and
/// drop it from the hot map — the submit would then advance an orphaned
/// engine whose progress is never persisted, and the next submit would
/// replay the stale snapshot.
struct SlotLease<'m> {
    manager: &'m SessionManager,
    id: u64,
    slot: Arc<Mutex<HotSlot>>,
}

impl SlotLease<'_> {
    fn lock(&self) -> MutexGuard<'_, HotSlot> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Drop for SlotLease<'_> {
    fn drop(&mut self) {
        let mut inner = self.manager.lock();
        if let Some(n) = inner.pinned.get_mut(&self.id) {
            *n -= 1;
            if *n == 0 {
                inner.pinned.remove(&self.id);
            }
        }
    }
}

/// Manager maps, all behind one short-hold mutex. Engine compute never
/// runs under this lock except the eviction/restore snapshot work, which
/// is small compared to a view computation.
struct Inner {
    next_id: u64,
    tick: u64,
    hot: HashMap<u64, Arc<Mutex<HotSlot>>>,
    /// Recency of hot sessions (manager-lock-protected so eviction never
    /// has to lock a slot just to read its age).
    last_used: HashMap<u64, u64>,
    lifecycle: HashMap<u64, Lifecycle>,
    /// Sessions with a live [`SlotLease`] (value = lease count), which
    /// eviction must skip. A plain `try_lock` probe is not enough: a
    /// checked-out slot is unlocked until its caller gets around to
    /// locking it.
    pinned: HashMap<u64, usize>,
    /// Per-session black box: the bounded ring of recent lifecycle
    /// events a postmortem freezes. Keyed by raw id so it survives
    /// hot/warm bounces; dropped when the session retires or closes.
    black_box: HashMap<u64, EventRing>,
    /// Per-session [`SearchConfig`] overrides for sessions opened with
    /// [`SessionManager::open_with`] (the overload-shedding ladder opens
    /// degraded sessions this way). A warm-tier restore must resume under
    /// the *same* configuration the session was opened with — the snapshot
    /// fingerprint refuses anything else — so the override is kept for the
    /// session's whole life and dropped when it retires or closes.
    overrides: HashMap<u64, SearchConfig>,
    /// The dataset epoch each live session pinned at open. A warm-tier
    /// restore resumes against *this* snapshot — never the handle's
    /// current one — so concurrent ingestion can't turn a routine restore
    /// into an [`HinnError::EpochMismatch`]. Dropped when the session
    /// retires or closes; replaced by an explicit
    /// [`SessionManager::rebase`].
    epochs: HashMap<u64, Arc<EpochSnapshot>>,
}

impl Inner {
    fn live(&self) -> usize {
        self.lifecycle
            .values()
            .filter(|s| matches!(s, Lifecycle::Hot | Lifecycle::Warm))
            .count()
    }
}

/// A bounded table of suspended interactive-search sessions over one
/// shared data set (see the crate docs for the tiering model).
///
/// All methods take `&self`; the manager is `Send + Sync` and meant to be
/// shared across serving threads. Submits to *different* sessions compute
/// concurrently; submits to the same session serialize.
pub struct SessionManager {
    config: ServeConfig,
    /// The served dataset. Epoch-versioned: [`ingest`](Self::ingest) and
    /// [`delete`](Self::delete) advance it in place while every open
    /// session keeps computing against the epoch it pinned at open.
    data: DatasetHandle,
    /// One cache shared by every session: same data set, same pure
    /// stages, so sessions warm each other exactly like batch queries do.
    cache: Arc<SessionCache>,
    warm: LruCache<SessionSnapshot>,
    inner: Mutex<Inner>,
    /// Frozen incident records, drained by [`take_postmortems`].
    ///
    /// [`take_postmortems`]: SessionManager::take_postmortems
    incidents: Mutex<Vec<Postmortem>>,
}

impl SessionManager {
    /// A manager serving sessions over the epoch-versioned dataset
    /// behind `data`. The manager takes ownership of the handle; feed it
    /// new rows through [`ingest`](Self::ingest) and
    /// [`delete`](Self::delete), which open sessions observe only at
    /// their next open (or an explicit [`rebase`](Self::rebase)).
    ///
    /// # Errors
    /// [`HinnError::InvalidInput`] when the search configuration is
    /// invalid or sets `record_profiles` (profile-recording sessions
    /// cannot be snapshotted, so they cannot be evicted — refuse up front
    /// rather than fail at the first eviction), or when `max_resident`
    /// is 0.
    pub fn new(config: ServeConfig, data: DatasetHandle) -> Result<Self, HinnError> {
        config.search.try_validate()?;
        let invalid = |message: &str| HinnError::InvalidInput {
            phase: "serve.config",
            message: message.to_string(),
        };
        if config.search.record_profiles {
            return Err(invalid(
                "SessionManager: record_profiles sessions cannot be evicted (snapshots refuse \
                 multi-megabyte profile artifacts); serve them with InteractiveSearch instead",
            ));
        }
        if config.max_resident == 0 {
            return Err(invalid("SessionManager: max_resident must be at least 1"));
        }
        let cache = Arc::new(SessionCache::new(config.search.cache));
        let warm = LruCache::new(config.warm_capacity);
        Ok(Self {
            config,
            data,
            cache,
            warm,
            inner: Mutex::new(Inner {
                next_id: 1,
                tick: 0,
                hot: HashMap::new(),
                last_used: HashMap::new(),
                lifecycle: HashMap::new(),
                pinned: HashMap::new(),
                black_box: HashMap::new(),
                overrides: HashMap::new(),
                epochs: HashMap::new(),
            }),
            incidents: Mutex::new(Vec::new()),
        })
    }

    /// [`new`](Self::new) over a plain point set — the pre-epoch shim.
    /// Builds a single-epoch [`DatasetHandle`] from `points`, so data
    /// validation (finite values, uniform dimensionality) now happens
    /// here instead of at the first `open`.
    #[deprecated(
        since = "0.1.0",
        note = "build a DatasetHandle and use SessionManager::new"
    )]
    pub fn with_points(config: ServeConfig, points: Arc<Vec<Vec<f64>>>) -> Result<Self, HinnError> {
        let data = DatasetHandle::new(&points).map_err(|e| HinnError::InvalidInput {
            phase: "serve.config",
            message: format!("SessionManager: {e}"),
        })?;
        Self::new(config, data)
    }

    /// The served dataset handle — the door to epoch-aware callers that
    /// want to pin snapshots themselves (e.g. to batch-verify against the
    /// exact epoch a session answered from).
    pub fn dataset(&self) -> &DatasetHandle {
        &self.data
    }

    /// The dataset's current epoch: `(epoch number, chained fingerprint)`.
    pub fn current_epoch(&self) -> (u64, Fingerprint) {
        let snap = self.data.snapshot();
        (snap.epoch(), snap.fingerprint())
    }

    /// The epoch session `id` pinned at open (or at its last
    /// [`rebase`](Self::rebase)) — what its answers are relative to.
    ///
    /// # Errors
    /// [`ServeError::UnknownSession`] when `id` has no live pin (never
    /// opened, closed, or already finished).
    pub fn session_epoch(&self, id: SessionId) -> Result<(u64, Fingerprint), ServeError> {
        self.lock()
            .epochs
            .get(&id.0)
            .map(|snap| (snap.epoch(), snap.fingerprint()))
            .ok_or(ServeError::UnknownSession(id))
    }

    /// Append `rows` to the served dataset, producing a new epoch that
    /// only *future* opens observe: every live session keeps computing
    /// against the epoch it pinned. Returns the new epoch's
    /// `(number, fingerprint)`.
    ///
    /// # Errors
    /// [`ServeError::Engine`] wrapping [`HinnError::InvalidInput`] when a
    /// row is ragged or non-finite (the dataset is unchanged).
    pub fn ingest(&self, rows: &[Vec<f64>]) -> Result<(u64, Fingerprint), ServeError> {
        let _span = hinn_obs::span("serve.ingest");
        let snap = self.data.append(rows).map_err(|e| {
            ServeError::Engine(HinnError::InvalidInput {
                phase: "serve.ingest",
                message: format!("SessionManager::ingest: {e}"),
            })
        })?;
        hinn_obs::counter("serve.ingested_rows", rows.len() as u64);
        Ok((snap.epoch(), snap.fingerprint()))
    }

    /// Tombstone the rows with global ids `ids`, producing a new epoch
    /// (same pinning rules as [`ingest`](Self::ingest)). Already-deleted
    /// ids are skipped. Returns the new epoch's `(number, fingerprint)`.
    ///
    /// # Errors
    /// [`ServeError::Engine`] wrapping [`HinnError::InvalidInput`] when an
    /// id was never appended (the dataset is unchanged).
    pub fn delete(&self, ids: &[usize]) -> Result<(u64, Fingerprint), ServeError> {
        let _span = hinn_obs::span("serve.delete");
        let snap = self.data.delete(ids).map_err(|e| {
            ServeError::Engine(HinnError::InvalidInput {
                phase: "serve.delete",
                message: format!("SessionManager::delete: {e}"),
            })
        })?;
        hinn_obs::counter("serve.deleted_rows", ids.len() as u64);
        Ok((snap.epoch(), snap.fingerprint()))
    }

    /// Explicitly carry session `id` onto the dataset's *current* epoch:
    /// suspend-point state is remapped by global row id (rows deleted
    /// since the session's pin drop out; rows appended since join with
    /// zero preference mass), the session is re-pinned, and its next
    /// pending view — recomputed on the new epoch — is returned. A no-op
    /// returning the pending view when the session is already current.
    ///
    /// This is the serving face of
    /// [`SessionEngine::resume_rebased`]: it never happens implicitly —
    /// a session's answers stay relative to one epoch unless an operator
    /// asks for the remap.
    ///
    /// # Errors
    /// The usual residency errors ([`ServeError::UnknownSession`] /
    /// [`SessionEvicted`](ServeError::SessionEvicted) /
    /// [`SessionFinished`](ServeError::SessionFinished));
    /// [`ServeError::Engine`] when the engine refuses the remap (e.g.
    /// fewer than two of the session's alive points survive). On engine
    /// refusal the session keeps its old pin and state, untouched.
    pub fn rebase(&self, id: SessionId) -> Result<Step, ServeError> {
        let _span = hinn_obs::span("session.rebase");
        let lease = self.checkout(id)?;
        let mut guard = lease.lock();
        let onto = self.data.snapshot();
        let from = self
            .lock()
            .epochs
            .get(&id.0)
            .cloned()
            .ok_or(ServeError::UnknownSession(id))?;
        if from.fingerprint() == onto.fingerprint() {
            return match guard.engine.pending_view() {
                Some(view) => Ok(Step::NeedResponse(view.clone())),
                None => Err(ServeError::SessionFinished(id)),
            };
        }
        let snap = guard.engine.snapshot().map_err(ServeError::Engine)?;
        let mut search = {
            let inner = self.lock();
            inner
                .overrides
                .get(&id.0)
                .cloned()
                .unwrap_or_else(|| self.config.search.clone())
        };
        if self.config.session_deadline.is_some() {
            search.deadline = self.config.session_deadline;
        }
        let (engine, step) = SessionEngine::resume_rebased_shared(
            search,
            from.clone(),
            onto.clone(),
            &snap,
            self.cache.clone(),
        )
        .map_err(ServeError::Engine)?;
        guard.degr_seen = engine.degradations().len();
        guard.engine = engine;
        hinn_obs::counter("session.rebased", 1);
        self.record(
            id,
            SessionEvent::Rebased {
                from_epoch: from.epoch(),
                onto_epoch: onto.epoch(),
            },
        );
        self.lock().epochs.insert(id.0, onto);
        Ok(step)
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The shared per-data-set cache (useful for pre-warming).
    pub fn session_cache(&self) -> &Arc<SessionCache> {
        &self.cache
    }

    /// Resident hot engines right now.
    pub fn hot_len(&self) -> usize {
        self.lock().hot.len()
    }

    /// Snapshots resident in the warm tier right now.
    pub fn warm_len(&self) -> usize {
        self.warm.len()
    }

    /// Open (hot + warm) sessions right now.
    pub fn live_sessions(&self) -> usize {
        self.lock().live()
    }

    /// Open a new session for `query`. Returns the session's id and its
    /// first [`Step`] — almost always `NeedResponse` carrying the first
    /// view; degenerate data can finish immediately, in which case the
    /// session is already closed.
    ///
    /// # Errors
    /// [`ServeError::AdmissionDenied`] at the session bound;
    /// [`ServeError::Engine`] when the engine rejects the input.
    pub fn open(&self, query: &[f64]) -> Result<(SessionId, Step), ServeError> {
        self.open_inner(query, None)
    }

    /// [`open`](Self::open) with a per-session [`SearchConfig`] override —
    /// how the serving front-end opens *degraded* sessions when its
    /// overload-shedding ladder is active (coarser KDE grid, fewer minor
    /// iterations) without touching the manager-wide configuration. The
    /// override is remembered for the session's lifetime so warm-tier
    /// restores resume under the exact configuration the snapshot was
    /// taken with.
    ///
    /// # Errors
    /// Everything [`open`](Self::open) reports, plus
    /// [`ServeError::Engine`] when `search` is invalid or sets
    /// `record_profiles` (unsnapshottable sessions are refused up front,
    /// same as at construction).
    pub fn open_with(
        &self,
        query: &[f64],
        search: SearchConfig,
    ) -> Result<(SessionId, Step), ServeError> {
        search.try_validate()?;
        if search.record_profiles {
            return Err(ServeError::Engine(HinnError::InvalidInput {
                phase: "serve.config",
                message: "SessionManager: record_profiles sessions cannot be evicted".to_string(),
            }));
        }
        self.open_inner(query, Some(search))
    }

    fn open_inner(
        &self,
        query: &[f64],
        override_search: Option<SearchConfig>,
    ) -> Result<(SessionId, Step), ServeError> {
        let _span = hinn_obs::span("session.open");
        {
            let inner = self.lock();
            let live = inner.live();
            if live >= self.config.max_sessions {
                hinn_obs::counter("session.denied", 1);
                return Err(ServeError::AdmissionDenied {
                    live,
                    max: self.config.max_sessions,
                });
            }
        }
        // The first compute segment runs outside the manager lock — other
        // sessions keep serving. Concurrent opens can transiently overshoot
        // admission by the number of in-flight opens; the recheck at
        // insertion keeps the *open-session* bound exact.
        let mut search = override_search
            .clone()
            .unwrap_or_else(|| self.config.search.clone());
        if self.config.session_deadline.is_some() {
            search.deadline = self.config.session_deadline;
        }
        // Pin the dataset epoch *before* the first compute: everything
        // this session ever reports is relative to this snapshot, however
        // much the handle moves underneath it.
        let pinned = self.data.snapshot();
        let (engine, step) =
            SessionEngine::start_at_shared(search, pinned.clone(), query, self.cache.clone())?;
        // Mirror open-time degradation rungs (StarvedSeed's linear-scan
        // fallback fires during the seed) into the black box before the
        // engine moves into its slot.
        let degr_seen = engine.degradations().len();
        let mut ring = EventRing::default();
        ring.push(SessionEvent::Opened {
            n_points: pinned.len(),
            dims: pinned.dim(),
        });
        let mut starved = false;
        for e in engine.degradations().iter() {
            starved |= e.kind == DegradationKind::StarvedSeed;
            ring.push(SessionEvent::Degradation {
                major: e.major,
                minor: e.minor,
                kind: e.kind.as_str().to_string(),
                detail: e.detail.clone(),
            });
        }
        let mut inner = self.lock();
        let live = inner.live();
        if live >= self.config.max_sessions {
            hinn_obs::counter("session.denied", 1);
            return Err(ServeError::AdmissionDenied {
                live,
                max: self.config.max_sessions,
            });
        }
        let id = SessionId(inner.next_id);
        inner.next_id += 1;
        hinn_obs::counter("session.opened", 1);
        if starved {
            // A starved seed is a meaningfulness hazard, not an error: the
            // session continues on the linear-scan fallback, but the
            // incident is dumped so an operator can audit which answers
            // rest on it.
            self.dump(&ring, id, "starved seed at open");
        }
        if step.is_done() {
            inner.lifecycle.insert(id.0, Lifecycle::Finished);
            hinn_obs::counter("session.finished", 1);
            return Ok((id, step));
        }
        inner.black_box.insert(id.0, ring);
        inner.epochs.insert(id.0, pinned);
        if let Some(over) = override_search {
            inner.overrides.insert(id.0, over);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.lifecycle.insert(id.0, Lifecycle::Hot);
        inner.last_used.insert(id.0, tick);
        inner
            .hot
            .insert(id.0, Arc::new(Mutex::new(HotSlot { engine, degr_seen })));
        self.enforce_hot_cap(&mut inner);
        self.publish_gauges(&inner);
        Ok((id, step))
    }

    /// Submit `response` to session `id`'s pending view and run its
    /// engine to the next suspension point (or to completion, after which
    /// the session is closed and further submits report
    /// [`ServeError::SessionFinished`]). A warm session is transparently
    /// restored first — `session.resumed` counts how often.
    pub fn submit(&self, id: SessionId, response: UserResponse) -> Result<Step, ServeError> {
        self.submit_inner(id, None, response)
    }

    /// [`submit`](Self::submit) guarded by the `(major, minor)` cursor of
    /// the view the caller is responding to — the at-most-once guard a
    /// networked front-end needs. A client that re-sends a submit after a
    /// torn reply cannot advance the engine twice: if the pending view's
    /// cursor differs from `expected`, nothing is applied and
    /// [`ServeError::CursorMismatch`] reports the actual cursor so the
    /// caller can resynchronize (view cursors advance strictly, so a
    /// mismatch means the earlier delivery already landed).
    pub fn submit_at(
        &self,
        id: SessionId,
        expected: (usize, usize),
        response: UserResponse,
    ) -> Result<Step, ServeError> {
        self.submit_inner(id, Some(expected), response)
    }

    fn submit_inner(
        &self,
        id: SessionId,
        expected: Option<(usize, usize)>,
        response: UserResponse,
    ) -> Result<Step, ServeError> {
        let _span = hinn_obs::span("session.step");
        let lease = self.checkout(id)?;
        // Engine compute runs under the per-session lock only; the lease
        // keeps eviction away from this session until the new state is
        // safely in the slot (or the session is retired).
        let mut guard = lease.lock();
        if let Some(view) = guard.engine.pending_view() {
            let (major, minor) = (view.context().major, view.context().minor);
            if let Some(want) = expected {
                if want != (major, minor) {
                    return Err(ServeError::CursorMismatch {
                        session: id,
                        major,
                        minor,
                    });
                }
            }
            self.record(id, SessionEvent::Submitted { major, minor });
        }
        let timed = hinn_obs::enabled().then(Instant::now);
        // Contain in-engine panics: freeze the black box and retire the
        // session before re-raising, so one poisoned session cannot take
        // its incident history down with it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            guard.engine.submit(response)
        }));
        if let Some(start) = timed {
            hinn_obs::observe("session.submit_ms", start.elapsed().as_secs_f64() * 1e3);
        }
        let result = match result {
            Ok(r) => r,
            Err(payload) => {
                drop(guard);
                let error = panic_text(payload.as_ref());
                self.record(id, SessionEvent::Failed { error });
                self.dump_by_id(id, "panic during submit");
                self.tombstone(id, Lifecycle::Finished);
                std::panic::resume_unwind(payload);
            }
        };
        // Mirror degradation-ladder rungs this compute segment took; a
        // degraded-but-alive session dumps too, because "quietly degraded"
        // is the failure mode the paper warns about.
        let total = guard.engine.degradations().len();
        if total > guard.degr_seen {
            let new_events: Vec<SessionEvent> = guard.engine.degradations().events
                [guard.degr_seen..]
                .iter()
                .map(|e| SessionEvent::Degradation {
                    major: e.major,
                    minor: e.minor,
                    kind: e.kind.as_str().to_string(),
                    detail: e.detail.clone(),
                })
                .collect();
            guard.degr_seen = total;
            let mut inner = self.lock();
            if let Some(ring) = inner.black_box.get_mut(&id.0) {
                for event in new_events {
                    ring.push(event);
                }
                let ring = ring.clone();
                drop(inner);
                self.dump(&ring, id, "degradation ladder");
            }
        }
        match result {
            Ok(step) => {
                if step.is_done() {
                    drop(guard);
                    self.tombstone(id, Lifecycle::Finished);
                    hinn_obs::counter("session.finished", 1);
                }
                Ok(step)
            }
            Err(e) => {
                drop(guard);
                self.record(
                    id,
                    SessionEvent::Failed {
                        error: e.to_string(),
                    },
                );
                self.dump_by_id(id, &format!("engine error: {e}"));
                self.tombstone(id, Lifecycle::Finished);
                Err(ServeError::Engine(e))
            }
        }
    }

    /// The suspended view of session `id`, restoring it from the warm
    /// tier if needed — what a serving frontend re-renders when a user
    /// reconnects.
    pub fn pending_view(&self, id: SessionId) -> Result<hinn_core::ViewRequest, ServeError> {
        let lease = self.checkout(id)?;
        let guard = lease.lock();
        match guard.engine.pending_view() {
            Some(view) => Ok(view.clone()),
            // Unreachable in practice: hot engines are suspended by
            // construction. Report rather than panic.
            None => Err(ServeError::SessionFinished(id)),
        }
    }

    /// Force session `id` out of the hot tier into the warm tier (a
    /// serving frontend would call this on disconnect). No-op when the
    /// session is already warm.
    pub fn suspend(&self, id: SessionId) -> Result<(), ServeError> {
        let mut inner = self.lock();
        match inner.lifecycle.get(&id.0) {
            None => Err(ServeError::UnknownSession(id)),
            Some(Lifecycle::Finished) => Err(ServeError::SessionFinished(id)),
            Some(Lifecycle::Evicted) => Err(ServeError::SessionEvicted(id)),
            Some(Lifecycle::Warm) => Ok(()),
            Some(Lifecycle::Hot) => {
                self.evict_one(&mut inner, id.0);
                self.publish_gauges(&inner);
                Ok(())
            }
        }
    }

    /// Suspend every idle hot session to the warm tier — the graceful-
    /// drain flush: a shutting-down server calls this after its workers
    /// stop so every live session leaves a resumable snapshot behind.
    /// Sessions with a submit in flight (pinned or slot-locked) are
    /// skipped; their owning thread suspends or retires them. Returns how
    /// many sessions were flushed.
    pub fn suspend_all(&self) -> usize {
        let mut inner = self.lock();
        let mut ids: Vec<u64> = inner.hot.keys().copied().collect();
        ids.sort_unstable();
        let mut flushed = 0;
        for sid in ids {
            if self.evict_one(&mut inner, sid) {
                flushed += 1;
            }
        }
        self.publish_gauges(&inner);
        flushed
    }

    /// Record a connection-level incident against session `id`: push a
    /// `Failed` event into its black box and freeze it into a
    /// [`Postmortem`] (stderr + [`take_postmortems`](Self::take_postmortems)).
    /// The session itself is left alone — a client that disconnected
    /// mid-submit can reconnect and resume; only the *incident* is
    /// durable.
    pub fn report_incident(&self, id: SessionId, reason: &str) {
        self.record(
            id,
            SessionEvent::Failed {
                error: reason.to_string(),
            },
        );
        self.dump_by_id(id, reason);
    }

    /// Record that session `id` was opened under overload-shedding level
    /// `level` (an [`open_with`](Self::open_with) degradation): a
    /// `load_shed` rung in the session's black box, frozen into a
    /// [`Postmortem`] like every other degradation — "quietly degraded"
    /// answers must stay auditable.
    pub fn note_load_shed(&self, id: SessionId, level: u8, detail: &str) {
        self.record(
            id,
            SessionEvent::Degradation {
                major: None,
                minor: None,
                kind: "load_shed".to_string(),
                detail: format!("L{level}: {detail}"),
            },
        );
        self.dump_by_id(id, "load shed at open");
    }

    /// Close session `id`, dropping whatever state it still has. Closing
    /// an unknown id is an error; closing a finished or evicted session
    /// just clears the tombstone.
    pub fn close(&self, id: SessionId) -> Result<(), ServeError> {
        let mut inner = self.lock();
        if inner.lifecycle.remove(&id.0).is_none() {
            return Err(ServeError::UnknownSession(id));
        }
        inner.hot.remove(&id.0);
        inner.last_used.remove(&id.0);
        inner.black_box.remove(&id.0);
        inner.pinned.remove(&id.0);
        inner.overrides.remove(&id.0);
        inner.epochs.remove(&id.0);
        self.warm.remove(id.key());
        self.publish_gauges(&inner);
        Ok(())
    }

    /// Locate `id`'s engine, restoring it from the warm tier if needed.
    /// The returned lease pins the session against eviction; it is claimed
    /// under the same manager-lock critical section that reads the hot
    /// map, so there is no window for `evict_one` to snapshot a slot its
    /// caller is about to mutate.
    fn checkout(&self, id: SessionId) -> Result<SlotLease<'_>, ServeError> {
        let mut inner = self.lock();
        match inner.lifecycle.get(&id.0) {
            None => return Err(ServeError::UnknownSession(id)),
            Some(Lifecycle::Finished) => return Err(ServeError::SessionFinished(id)),
            Some(Lifecycle::Evicted) => return Err(ServeError::SessionEvicted(id)),
            Some(Lifecycle::Hot) => {
                inner.tick += 1;
                let tick = inner.tick;
                inner.last_used.insert(id.0, tick);
                if let Some(slot) = inner.hot.get(&id.0) {
                    let slot = slot.clone();
                    return Ok(self.pin(&mut inner, id.0, slot));
                }
                // Lifecycle said Hot but the slot is gone — a close raced
                // us. Treat as unknown.
                return Err(ServeError::UnknownSession(id));
            }
            Some(Lifecycle::Warm) => {}
        }
        // Warm → hot. `remove` is the atomic claim: concurrent submits to
        // the same warm session cannot both restore it (we hold the
        // manager lock throughout; the restore recomputes exactly one
        // pending view, which is small next to a full view computation).
        let snap = match self.warm.remove(id.key()) {
            Some(snap) => snap,
            None => {
                // The snapshot aged out of the LRU: the lazy discovery of
                // an earlier capacity overflow.
                inner.lifecycle.insert(id.0, Lifecycle::Evicted);
                hinn_obs::counter("session.dropped", 1);
                self.publish_gauges(&inner);
                return Err(ServeError::SessionEvicted(id));
            }
        };
        // Resume under the session's own configuration: an `open_with`
        // override (e.g. a load-shed session's coarser grid) must follow
        // the session through the warm tier, or the snapshot's config
        // fingerprint would refuse the restore.
        let mut search = inner
            .overrides
            .get(&id.0)
            .cloned()
            .unwrap_or_else(|| self.config.search.clone());
        if self.config.session_deadline.is_some() {
            search.deadline = self.config.session_deadline;
        }
        // Resume against the epoch the session *pinned*, not the handle's
        // current one: ingestion between suspend and restore must never
        // shift a session's answers (and would otherwise surface as an
        // EpochMismatch on a routine warm-tier bounce). The fallback to
        // the current snapshot only covers a pin lost to a racing close —
        // the engine's own epoch check still refuses a wrong dataset.
        let pinned = inner
            .epochs
            .get(&id.0)
            .cloned()
            .unwrap_or_else(|| self.data.snapshot());
        let timed = hinn_obs::enabled().then(Instant::now);
        let resumed = SessionEngine::resume_at_shared(search, pinned, &snap, self.cache.clone());
        if let Some(start) = timed {
            hinn_obs::observe("snapshot.restore_ms", start.elapsed().as_secs_f64() * 1e3);
        }
        let (engine, _step) = resumed.map_err(|e| {
            // The snapshot came from this manager, so a resume failure is
            // an engine-level problem (e.g. deadline during the restore
            // segment). The session is spent either way.
            inner.lifecycle.insert(id.0, Lifecycle::Finished);
            if let Some(ring) = inner.black_box.get_mut(&id.0) {
                ring.push(SessionEvent::Failed {
                    error: e.to_string(),
                });
                let ring = ring.clone();
                self.dump(&ring, id, &format!("restore failed: {e}"));
            }
            ServeError::Engine(e)
        })?;
        hinn_obs::counter("session.resumed", 1);
        if let Some(ring) = inner.black_box.get_mut(&id.0) {
            ring.push(SessionEvent::Restored);
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.lifecycle.insert(id.0, Lifecycle::Hot);
        inner.last_used.insert(id.0, tick);
        // The restored engine replayed its degradation log (bit-identical
        // restore); the ring already holds those rungs, so only events
        // past this length are new.
        let degr_seen = engine.degradations().len();
        let slot = Arc::new(Mutex::new(HotSlot { engine, degr_seen }));
        inner.hot.insert(id.0, slot.clone());
        // Pin before enforcing the cap: the session we just restored must
        // not be the one the cap enforcement pushes straight back out.
        let lease = self.pin(&mut inner, id.0, slot);
        self.enforce_hot_cap(&mut inner);
        self.publish_gauges(&inner);
        Ok(lease)
    }

    /// Claim a lease on `sid` (caller holds the manager lock).
    fn pin<'m>(&'m self, inner: &mut Inner, sid: u64, slot: Arc<Mutex<HotSlot>>) -> SlotLease<'m> {
        *inner.pinned.entry(sid).or_insert(0) += 1;
        SlotLease {
            manager: self,
            id: sid,
            slot,
        }
    }

    /// Evict least-recently-used hot sessions until the hot tier fits
    /// `max_resident`. Sessions with a submit in flight (slot locked) and
    /// engines that just finished are skipped — their owning thread
    /// retires them.
    fn enforce_hot_cap(&self, inner: &mut Inner) {
        while inner.hot.len() > self.config.max_resident {
            let mut order: Vec<(u64, u64)> = inner
                .hot
                .keys()
                .map(|&sid| (inner.last_used.get(&sid).copied().unwrap_or(0), sid))
                .collect();
            order.sort_unstable();
            let before = inner.hot.len();
            for (_, sid) in order {
                if self.evict_one(inner, sid) {
                    break;
                }
            }
            if inner.hot.len() == before {
                // Every candidate is busy; the cap is transiently
                // exceeded and the next mutation re-runs enforcement.
                break;
            }
        }
    }

    /// Snapshot one hot session into the warm tier. Returns `false` when
    /// the slot is checked out, busy, or not suspendable right now.
    fn evict_one(&self, inner: &mut Inner, sid: u64) -> bool {
        if inner.pinned.contains_key(&sid) {
            // A checkout is in flight: its slot may be mutated the moment
            // we release the manager lock, so any snapshot taken here
            // could persist pre-response state. Skip it.
            return false;
        }
        let Some(slot) = inner.hot.get(&sid) else {
            return false;
        };
        let Ok(guard) = slot.try_lock() else {
            return false;
        };
        let timed = hinn_obs::enabled().then(Instant::now);
        let snap = guard.engine.snapshot();
        if let Some(start) = timed {
            hinn_obs::observe("snapshot.serialize_ms", start.elapsed().as_secs_f64() * 1e3);
        }
        let Ok(snap) = snap else {
            return false;
        };
        drop(guard);
        self.warm.insert(Fingerprint(sid as u128), snap);
        inner.hot.remove(&sid);
        inner.last_used.remove(&sid);
        inner.lifecycle.insert(sid, Lifecycle::Warm);
        if let Some(ring) = inner.black_box.get_mut(&sid) {
            ring.push(SessionEvent::Suspended);
        }
        hinn_obs::counter("session.evicted", 1);
        true
    }

    /// Drop a session's residency and tombstone it. The warm tier is
    /// purged too: a tombstoned session must not leave a resurrectable
    /// snapshot occupying warm-LRU capacity until an explicit `close`,
    /// and any stale lease pin is cleared so the dead id cannot linger in
    /// the pin table (a lease that is still alive no-ops on drop when its
    /// entry is gone).
    fn tombstone(&self, id: SessionId, state: Lifecycle) {
        let mut inner = self.lock();
        inner.hot.remove(&id.0);
        inner.last_used.remove(&id.0);
        inner.black_box.remove(&id.0);
        inner.pinned.remove(&id.0);
        inner.overrides.remove(&id.0);
        inner.epochs.remove(&id.0);
        self.warm.remove(id.key());
        inner.lifecycle.insert(id.0, state);
        self.publish_gauges(&inner);
    }

    /// Administratively retire session `id`: drop whatever state it holds
    /// (hot engine, warm snapshot, black box, any stale lease pin) and
    /// tombstone it as finished, counting `session.retired`. Works on any
    /// live session — including one that was never checked out — and is
    /// idempotent on tombstones (no recount, but stale pins are still
    /// cleared).
    ///
    /// # Errors
    /// [`ServeError::UnknownSession`] when `id` was never opened or was
    /// closed.
    pub fn retire(&self, id: SessionId) -> Result<(), ServeError> {
        {
            let mut inner = self.lock();
            match inner.lifecycle.get(&id.0) {
                None => return Err(ServeError::UnknownSession(id)),
                Some(Lifecycle::Finished | Lifecycle::Evicted) => {
                    inner.pinned.remove(&id.0);
                    return Ok(());
                }
                Some(Lifecycle::Hot | Lifecycle::Warm) => {}
            }
        }
        self.tombstone(id, Lifecycle::Finished);
        hinn_obs::counter("session.retired", 1);
        Ok(())
    }

    /// Record `event` into session `id`'s black box, if it still has one.
    fn record(&self, id: SessionId, event: SessionEvent) {
        let mut inner = self.lock();
        if let Some(ring) = inner.black_box.get_mut(&id.0) {
            ring.push(event);
        }
    }

    /// Freeze `ring` into a [`Postmortem`]: count it, keep it for
    /// [`take_postmortems`](Self::take_postmortems), and print the
    /// one-line JSON to stderr for operators tailing logs.
    fn dump(&self, ring: &EventRing, id: SessionId, reason: &str) {
        let pm = ring.freeze(id.raw(), reason);
        hinn_obs::counter("session.postmortem", 1);
        eprintln!("hinn-serve postmortem: {}", pm.to_json());
        self.incidents
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(pm);
    }

    /// [`dump`](Self::dump) whatever the black box currently holds for
    /// `id` (an empty ring if the session never had one).
    fn dump_by_id(&self, id: SessionId, reason: &str) {
        let ring = self
            .lock()
            .black_box
            .get(&id.0)
            .cloned()
            .unwrap_or_default();
        self.dump(&ring, id, reason);
    }

    /// Drain the incident store: every [`Postmortem`] dumped since the
    /// last call (or since construction), oldest first. Incident tooling
    /// polls this; each postmortem was also printed to stderr as one-line
    /// JSON at dump time.
    pub fn take_postmortems(&self) -> Vec<Postmortem> {
        std::mem::take(&mut *self.incidents.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn publish_gauges(&self, inner: &Inner) {
        if hinn_obs::enabled() {
            hinn_obs::gauge("session.hot", inner.hot.len() as f64);
            hinn_obs::gauge("session.warm", self.warm.len() as f64);
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // No partial mutation spans an unwind point; recover poisoning.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Live lease pins (test-only: the pin table must never outlive the
    /// sessions it guards).
    #[cfg(test)]
    fn pinned_len(&self) -> usize {
        self.lock().pinned.len()
    }
}

/// Render a caught panic payload as text for the black box.
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinn_core::SearchOutcome;
    use hinn_user::{HeuristicUser, UserModel};

    /// 8-D planted cluster, same construction as the engine's fixture.
    fn planted() -> Vec<Vec<f64>> {
        let mut state = 0xDA3E39CB94B95BDBu64;
        let mut unif = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let d = 8;
        let mut pts: Vec<Vec<f64>> = Vec::new();
        for _ in 0..30 {
            pts.push((0..d).map(|_| 50.0 + (unif() - 0.5) * 2.0).collect());
        }
        for _ in 0..170 {
            pts.push((0..d).map(|_| unif() * 100.0).collect());
        }
        pts
    }

    /// A fresh epoch handle over the planted fixture. Handles over the
    /// same rows share an epoch fingerprint, so separately-built
    /// reference managers stay comparable.
    fn handle() -> DatasetHandle {
        DatasetHandle::new(&planted()).expect("epoch handle")
    }

    fn config() -> ServeConfig {
        ServeConfig::new(SearchConfig {
            max_major_iterations: 2,
            min_major_iterations: 1,
            ..SearchConfig::default().with_support(20)
        })
    }

    fn drive_to_done(m: &SessionManager, id: SessionId, mut step: Step) -> SearchOutcome {
        let mut user = HeuristicUser::default();
        loop {
            match step {
                Step::Done(outcome) => return *outcome,
                Step::NeedResponse(req) => {
                    let r = user.respond(req.profile(), req.context());
                    step = m.submit(id, r).expect("submit");
                }
            }
        }
    }

    #[test]
    fn one_session_end_to_end() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        let (id, step) = m.open(&q).expect("open");
        assert_eq!(m.live_sessions(), 1);
        let outcome = drive_to_done(&m, id, step);
        assert!(!outcome.neighbors.is_empty());
        assert_eq!(m.live_sessions(), 0, "finished session left the table");
        let err = m.submit(id, UserResponse::Discard).expect_err("spent");
        assert!(
            matches!(err, ServeError::SessionFinished(e) if e == id),
            "{err}"
        );
    }

    #[test]
    fn hot_cap_evicts_to_warm_and_resumes_transparently() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config().with_max_resident(2), handle()).expect("manager");
        let (a, _) = m.open(&q).expect("a");
        let (b, _) = m.open(&q).expect("b");
        let (c, _) = m.open(&q).expect("c");
        // Opening c pushed the LRU session (a) to the warm tier.
        assert_eq!(m.hot_len(), 2);
        assert_eq!(m.warm_len(), 1);
        assert_eq!(m.live_sessions(), 3);
        // Submitting to a restores it — and evicts the then-LRU b.
        let step = m.submit(a, UserResponse::Discard).expect("restore a");
        assert!(!step.is_done());
        assert_eq!(m.hot_len(), 2);
        assert_eq!(m.warm_len(), 1);
        let _ = (b, c);
    }

    #[test]
    fn warm_overflow_is_reported_as_eviction() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(
            config().with_max_resident(1).with_warm_capacity(1),
            handle(),
        )
        .expect("manager");
        let (a, _) = m.open(&q).expect("a");
        let (b, _) = m.open(&q).expect("b"); // a → warm
        let (_c, _) = m.open(&q).expect("c"); // b → warm, a's snapshot dropped
        let err = m.submit(a, UserResponse::Discard).expect_err("a is gone");
        assert!(
            matches!(err, ServeError::SessionEvicted(e) if e == a),
            "{err}"
        );
        // The loss is latched: a second submit reports the same thing.
        let err = m.submit(a, UserResponse::Discard).expect_err("latched");
        assert!(
            matches!(err, ServeError::SessionEvicted(e) if e == a),
            "{err}"
        );
        // b is still restorable.
        assert!(m.submit(b, UserResponse::Discard).is_ok());
    }

    #[test]
    fn admission_control_refuses_past_the_bound() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config().with_max_sessions(2), handle()).expect("manager");
        let (a, _) = m.open(&q).expect("a");
        let _ = m.open(&q).expect("b");
        let err = m.open(&q).expect_err("denied");
        assert!(
            matches!(err, ServeError::AdmissionDenied { live: 2, max: 2 }),
            "{err}"
        );
        // Closing a session frees a slot.
        m.close(a).expect("close");
        assert!(m.open(&q).is_ok());
    }

    #[test]
    fn unknown_and_closed_sessions_are_typed_errors() {
        let m = SessionManager::new(config(), handle()).expect("manager");
        let ghost = SessionId(99);
        assert!(matches!(
            m.submit(ghost, UserResponse::Discard).expect_err("ghost"),
            ServeError::UnknownSession(_)
        ));
        assert!(matches!(
            m.close(ghost).expect_err("ghost close"),
            ServeError::UnknownSession(_)
        ));
        let (id, _) = m.open(&[50.0; 8]).expect("open");
        m.close(id).expect("close");
        assert!(matches!(
            m.submit(id, UserResponse::Discard).expect_err("closed"),
            ServeError::UnknownSession(_)
        ));
    }

    #[test]
    fn record_profiles_and_zero_residency_are_refused_up_front() {
        let bad = ServeConfig::new(SearchConfig {
            record_profiles: true,
            ..SearchConfig::default()
        });
        let err = SessionManager::new(bad, handle()).err().expect("refused");
        assert!(err.to_string().contains("record_profiles"), "{err}");
        let err = SessionManager::new(config().with_max_resident(0), handle())
            .err()
            .expect("refused");
        assert!(err.to_string().contains("max_resident"), "{err}");
    }

    #[test]
    fn suspend_then_pending_view_round_trips() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        let (id, step) = m.open(&q).expect("open");
        let before = step.view().expect("first view").clone();
        m.suspend(id).expect("suspend");
        assert_eq!(m.hot_len(), 0);
        assert_eq!(m.warm_len(), 1);
        // Reconnect: the restored pending view is the same view.
        let after = m.pending_view(id).expect("pending");
        assert_eq!(before.context().major, after.context().major);
        assert_eq!(before.context().minor, after.context().minor);
        assert_eq!(before.context().original_ids, after.context().original_ids);
        let (bp, ap) = (before.profile(), after.profile());
        assert_eq!(
            bp.query_density().to_bits(),
            ap.query_density().to_bits(),
            "restored view is bit-identical"
        );
        assert_eq!(bp.max_density().to_bits(), ap.max_density().to_bits());
        // Suspending a warm session is a no-op.
        m.suspend(id).expect("idempotent");
    }

    #[test]
    fn concurrent_submits_survive_eviction_churn() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let q = vec![50.0; 8];
        // Serial reference outcome (all sessions share the same query).
        let reference = {
            let m = SessionManager::new(config(), handle()).expect("manager");
            let (id, step) = m.open(&q).expect("open");
            drive_to_done(&m, id, step)
        };
        // 8 worker sessions over a 2-slot hot tier while a churn thread
        // hammers suspend(), aiming for the window between checkout and
        // the slot lock: a submit landing on an engine the evictor just
        // snapshotted would lose the response and replay stale state.
        let m = Arc::new(
            SessionManager::new(config().with_max_resident(2), handle()).expect("manager"),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let churn = {
            let m = m.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for raw in 1..=8u64 {
                        let _ = m.suspend(SessionId(raw));
                    }
                    std::thread::yield_now();
                }
            })
        };
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                let q = q.clone();
                std::thread::spawn(move || {
                    let (id, step) = m.open(&q).expect("open");
                    drive_to_done(&m, id, step)
                })
            })
            .collect();
        for w in workers {
            let outcome = w.join().expect("worker");
            assert_eq!(outcome.neighbors, reference.neighbors);
            for (a, b) in outcome.probabilities.iter().zip(&reference.probabilities) {
                assert_eq!(a.to_bits(), b.to_bits(), "a submit was lost to eviction");
            }
        }
        stop.store(true, Ordering::Relaxed);
        churn.join().expect("churn");
        assert_eq!(m.live_sessions(), 0, "all sessions finished");
        assert_eq!(m.warm_len(), 0, "retired sessions left warm snapshots");
    }

    #[test]
    fn retire_never_checked_out_counts_and_leaves_no_pin() {
        let recorder = Arc::new(hinn_obs::SessionRecorder::new());
        let _guard = hinn_obs::install(recorder.clone());
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        let (id, step) = m.open(&q).expect("open");
        assert!(!step.is_done());
        // The session was never checked out (no submit, no pending_view):
        // retiring it must still count and fully clear its state.
        m.retire(id).expect("retire");
        assert_eq!(recorder.report().counter("session.retired"), 1);
        assert_eq!(m.live_sessions(), 0);
        assert_eq!(m.hot_len(), 0);
        assert_eq!(m.warm_len(), 0, "no resurrectable snapshot left behind");
        assert_eq!(m.pinned_len(), 0, "no stale lease pin on the tombstone");
        let err = m.submit(id, UserResponse::Discard).expect_err("tombstone");
        assert!(matches!(err, ServeError::SessionFinished(e) if e == id));
        // Idempotent on the tombstone: no recount.
        m.retire(id).expect("idempotent");
        assert_eq!(recorder.report().counter("session.retired"), 1);
        // Unknown ids stay typed errors.
        assert!(matches!(
            m.retire(SessionId(999)).expect_err("ghost"),
            ServeError::UnknownSession(_)
        ));
    }

    #[test]
    fn retire_during_inflight_submit_leaves_no_stale_pin() {
        let q = vec![50.0; 8];
        let m = Arc::new(SessionManager::new(config(), handle()).expect("manager"));
        let (id, _) = m.open(&q).expect("open");
        // Race retire against a submit that holds the slot lease: whoever
        // loses, the pin table must end empty (a tombstone pinned by a
        // stale lease would wedge eviction accounting forever).
        let worker = {
            let m = m.clone();
            std::thread::spawn(move || {
                let _ = m.submit(id, UserResponse::Discard);
            })
        };
        let _ = m.retire(id);
        worker.join().expect("submit thread");
        let _ = m.retire(id);
        assert_eq!(m.pinned_len(), 0, "stale lease pin survived retirement");
        assert_eq!(m.live_sessions(), 0);
    }

    #[test]
    fn open_with_override_survives_the_warm_tier() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        // A degraded session: coarser grid, single minor per major — the
        // shed ladder's configuration, distinct from the manager's base.
        let degraded = SearchConfig {
            grid_n: 16,
            ..config().search.clone().with_max_minors(1)
        };
        let (id, step) = m.open_with(&q, degraded.clone()).expect("open_with");
        assert!(!step.is_done());
        m.suspend(id).expect("suspend");
        // Without the per-session override the restore would run under the
        // base config and the snapshot fingerprint would refuse it.
        let step = m.submit(id, UserResponse::Discard).expect("restore");
        let _ = step;
        // The degraded session runs 1 minor per major: its first view after
        // one submit is already major 1.
        let view = m.pending_view(id).expect("pending");
        assert_eq!(
            view.context().major,
            1,
            "max_minors=1 skipped to next major"
        );
        // Reference: the same degraded config run in-process must agree.
        let m2 = SessionManager::new(ServeConfig::new(degraded), handle()).expect("manager2");
        let (id2, _) = m2.open(&q).expect("open");
        let _ = m2.submit(id2, UserResponse::Discard).expect("submit");
        let v2 = m2.pending_view(id2).expect("pending");
        assert_eq!(
            view.profile().query_density().to_bits(),
            v2.profile().query_density().to_bits(),
            "override session is bit-identical to a base session of that config"
        );
        // Invalid overrides are refused up front, typed.
        let bad = SearchConfig {
            grid_n: 2,
            ..SearchConfig::default()
        };
        assert!(matches!(
            m.open_with(&q, bad).expect_err("invalid override"),
            ServeError::Engine(HinnError::InvalidInput { .. })
        ));
        let recording = SearchConfig::default().recording_profiles();
        assert!(m.open_with(&q, recording).is_err());
    }

    #[test]
    fn submit_at_guards_against_duplicate_delivery() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        let (id, step) = m.open(&q).expect("open");
        let view = step.view().expect("first view");
        let cursor = (view.context().major, view.context().minor);
        // First delivery applies.
        let step = m
            .submit_at(id, cursor, UserResponse::Discard)
            .expect("first delivery");
        assert!(!step.is_done());
        // A retry of the *same* cursor (duplicate delivery after a torn
        // reply) is refused with the actual cursor, and nothing advances.
        let err = m
            .submit_at(id, cursor, UserResponse::Discard)
            .expect_err("duplicate");
        let ServeError::CursorMismatch {
            session,
            major,
            minor,
        } = err
        else {
            panic!("expected CursorMismatch, got {err}");
        };
        assert_eq!(session, id);
        let pending = m.pending_view(id).expect("pending");
        assert_eq!((major, minor), {
            let c = pending.context();
            (c.major, c.minor)
        });
        assert_ne!((major, minor), cursor, "cursor advanced exactly once");
        // Submitting at the *actual* cursor proceeds.
        assert!(m
            .submit_at(id, (major, minor), UserResponse::Discard)
            .is_ok());
    }

    #[test]
    fn suspend_all_flushes_every_idle_hot_session() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        let (a, _) = m.open(&q).expect("a");
        let (b, _) = m.open(&q).expect("b");
        assert_eq!(m.hot_len(), 2);
        assert_eq!(m.suspend_all(), 2);
        assert_eq!(m.hot_len(), 0);
        assert_eq!(m.warm_len(), 2);
        // Both sessions resume transparently afterwards.
        assert!(m.pending_view(a).is_ok());
        assert!(m.pending_view(b).is_ok());
    }

    #[test]
    fn report_incident_freezes_a_postmortem_without_killing_the_session() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        let (id, _) = m.open(&q).expect("open");
        m.report_incident(id, "client disconnected mid-submit");
        let pms = m.take_postmortems();
        assert_eq!(pms.len(), 1);
        assert!(pms[0].reason.contains("disconnected"), "{}", pms[0].reason);
        assert!(matches!(
            pms[0].events.last(),
            Some(SessionEvent::Failed { error }) if error.contains("disconnected")
        ));
        // The session survived the incident.
        assert!(m.submit(id, UserResponse::Discard).is_ok());
    }

    #[test]
    fn manager_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<SessionManager>();
    }

    #[test]
    fn deadline_failure_dumps_a_postmortem() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(
            config().with_session_deadline(Duration::from_secs(3600)),
            handle(),
        )
        .expect("manager");
        let (id, step) = m.open(&q).expect("open");
        assert!(!step.is_done());
        assert!(
            m.take_postmortems().is_empty(),
            "healthy open dumps nothing"
        );
        let plan = Arc::new(
            hinn_fault::FaultPlan::new().with("search.deadline", hinn_fault::FaultMode::Always),
        );
        let err = {
            let _g = hinn_fault::install_local(plan);
            m.submit(id, UserResponse::Discard).expect_err("deadline")
        };
        assert!(
            matches!(err, ServeError::Engine(HinnError::Deadline { .. })),
            "{err}"
        );
        let pms = m.take_postmortems();
        assert_eq!(pms.len(), 1);
        let pm = &pms[0];
        assert_eq!(pm.session, id.raw());
        assert!(pm.reason.contains("deadline"), "{}", pm.reason);
        assert!(matches!(
            pm.events.first(),
            Some(SessionEvent::Opened { .. })
        ));
        assert!(pm
            .events
            .iter()
            .any(|e| matches!(e, SessionEvent::Submitted { .. })));
        assert!(matches!(
            pm.events.last(),
            Some(SessionEvent::Failed { .. })
        ));
        let json = pm.to_json();
        assert!(json.contains("\"type\":\"failed\""), "{json}");
        // Drained: a second take sees nothing.
        assert!(m.take_postmortems().is_empty());
        assert_eq!(m.live_sessions(), 0, "failed session left the table");
    }

    #[test]
    fn panic_during_submit_dumps_and_retires() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        let (id, _) = m.open(&q).expect("open");
        let plan = Arc::new(
            hinn_fault::FaultPlan::new().with("search.panic", hinn_fault::FaultMode::Once),
        );
        let caught = {
            let _g = hinn_fault::install_local(plan);
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = m.submit(id, UserResponse::Discard);
            }))
        };
        assert!(caught.is_err(), "panic propagates to the caller");
        let pms = m.take_postmortems();
        assert_eq!(pms.len(), 1);
        assert!(pms[0].reason.contains("panic"), "{}", pms[0].reason);
        assert!(
            matches!(pms[0].events.last(), Some(SessionEvent::Failed { error }) if error.contains("search.panic")),
            "black box records the panic text"
        );
        // The poisoned session is retired, not wedged.
        let err = m.submit(id, UserResponse::Discard).expect_err("spent");
        assert!(matches!(err, ServeError::SessionFinished(_)), "{err}");
        assert_eq!(m.live_sessions(), 0);
    }

    #[test]
    fn ingest_and_delete_advance_the_epoch_but_not_open_sessions() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        let (e0, fp0) = m.current_epoch();
        assert_eq!(e0, 200, "one row-op per planted row");
        let (id, _) = m.open(&q).expect("open");
        assert_eq!(m.session_epoch(id).expect("pin"), (e0, fp0));
        // Ingest moves the handle; the open session's pin stays put.
        let (e1, fp1) = m.ingest(&[vec![1.0; 8], vec![2.0; 8]]).expect("ingest");
        assert_eq!(e1, e0 + 2);
        assert_ne!(fp1, fp0);
        assert_eq!(m.current_epoch(), (e1, fp1));
        assert_eq!(m.session_epoch(id).expect("pin"), (e0, fp0));
        // The key regression: a warm-tier bounce after ingestion restores
        // against the *pinned* epoch instead of tripping EpochMismatch.
        m.suspend(id).expect("suspend");
        let step = m.submit(id, UserResponse::Discard).expect("restore");
        assert!(!step.is_done());
        assert_eq!(m.session_epoch(id).expect("pin"), (e0, fp0));
        // Deletes advance the chain too, and a new session pins the
        // moved epoch (fewer alive rows, same dimensionality).
        let (e2, _) = m.delete(&[150, 151]).expect("delete");
        assert_eq!(e2, e1 + 2);
        let (id2, _) = m.open(&q).expect("open on new epoch");
        assert_eq!(m.session_epoch(id2).expect("pin").0, e2);
        // Invalid batches are typed refusals that leave the epoch alone.
        let err = m.ingest(&[vec![f64::NAN; 8]]).expect_err("non-finite");
        assert!(
            matches!(&err, ServeError::Engine(HinnError::InvalidInput { phase, .. })
                if *phase == "serve.ingest"),
            "{err}"
        );
        let err = m.delete(&[9999]).expect_err("unknown id");
        assert!(
            matches!(&err, ServeError::Engine(HinnError::InvalidInput { phase, .. })
                if *phase == "serve.delete"),
            "{err}"
        );
        assert_eq!(m.current_epoch().0, e2, "failed ops moved the epoch");
        // Finished/closed sessions drop their pin.
        m.close(id).expect("close");
        assert!(matches!(
            m.session_epoch(id).expect_err("pin gone"),
            ServeError::UnknownSession(_)
        ));
    }

    #[test]
    fn rebase_carries_a_session_onto_the_current_epoch() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(config(), handle()).expect("manager");
        let (id, _) = m.open(&q).expect("open");
        let (e0, fp0) = m.session_epoch(id).expect("pin");
        // Rebasing a current session is a no-op handing back the view.
        let step = m.rebase(id).expect("no-op rebase");
        assert!(!step.is_done());
        assert_eq!(m.session_epoch(id).expect("pin"), (e0, fp0));
        // Move the dataset: new noise rows, two noise deletions.
        m.ingest(&[vec![90.0; 8], vec![10.0; 8]]).expect("ingest");
        let (e1, fp1) = m.delete(&[180, 181]).expect("delete");
        let step = m.rebase(id).expect("rebase");
        assert!(!step.is_done());
        assert_eq!(m.session_epoch(id).expect("pin"), (e1, fp1));
        // The rebased session keeps serving: warm bounce + run to done.
        m.suspend(id).expect("suspend");
        let view = m.pending_view(id).expect("restored on the new pin");
        let step = Step::NeedResponse(view);
        let outcome = drive_to_done(&m, id, step);
        assert!(!outcome.neighbors.is_empty());
        // The black box recorded the remap.
        let (id2, _) = m.open(&q).expect("open");
        m.ingest(&[vec![3.0; 8]]).expect("ingest");
        m.rebase(id2).expect("rebase");
        m.report_incident(id2, "inspect ring");
        let pms = m.take_postmortems();
        assert!(
            pms[0].events.iter().any(|e| matches!(
                e,
                SessionEvent::Rebased { from_epoch, onto_epoch }
                    if *onto_epoch == from_epoch + 1
            )),
            "rebase event missing from the ring"
        );
    }

    #[test]
    fn with_points_shim_validates_at_construction() {
        #[allow(deprecated)]
        let m = SessionManager::with_points(config(), Arc::new(planted())).expect("shim");
        let (id, step) = m.open(&[50.0; 8]).expect("open");
        let outcome = drive_to_done(&m, id, step);
        assert!(!outcome.neighbors.is_empty());
        // Data the epoch layer refuses is now refused up front, typed.
        #[allow(deprecated)]
        let err = SessionManager::with_points(config(), Arc::new(vec![vec![f64::NAN; 8]]))
            .map(|_| ())
            .expect_err("non-finite");
        assert!(
            matches!(&err, HinnError::InvalidInput { phase, .. } if *phase == "serve.config"),
            "{err}"
        );
    }

    #[test]
    fn postmortem_records_tier_moves() {
        let q = vec![50.0; 8];
        let m = SessionManager::new(
            config().with_session_deadline(Duration::from_secs(3600)),
            handle(),
        )
        .expect("manager");
        let (id, _) = m.open(&q).expect("open");
        m.suspend(id).expect("suspend");
        // This submit transparently restores the warm session.
        let step = m.submit(id, UserResponse::Discard).expect("restore");
        assert!(!step.is_done());
        // The next one fails on the forced deadline, freezing the ring.
        let plan = Arc::new(
            hinn_fault::FaultPlan::new().with("search.deadline", hinn_fault::FaultMode::Always),
        );
        {
            let _g = hinn_fault::install_local(plan);
            let _ = m.submit(id, UserResponse::Discard);
        }
        let pms = m.take_postmortems();
        assert_eq!(pms.len(), 1);
        let kinds: Vec<&SessionEvent> = pms[0].events.iter().collect();
        assert!(kinds.iter().any(|e| matches!(e, SessionEvent::Suspended)));
        assert!(kinds.iter().any(|e| matches!(e, SessionEvent::Restored)));
    }
}
