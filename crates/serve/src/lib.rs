//! Multi-tenant serving over suspendable search sessions.
//!
//! One process serves *many* interactive search sessions against a shared
//! data set. Each session is a [`hinn_core::SessionEngine`] — a sans-io
//! state machine that computes up to its next view and suspends — so a
//! serving process never dedicates a thread to a user who is looking at a
//! plot. The [`SessionManager`] keeps sessions in two tiers:
//!
//! * **hot** — a bounded number of resident engines, ready to take the
//!   next response with no restore cost;
//! * **warm** — an LRU of [`hinn_core::SessionSnapshot`]s: evicted
//!   sessions serialized to a few kilobytes of text, restored (and their
//!   pending view recomputed, bit-identically) on the next submit.
//!
//! The tiers make the resident footprint *bounded and configurable*:
//! thousands of concurrently open sessions cost thousands of snapshots,
//! not thousands of live engines. A session falling off the warm tier is
//! discovered lazily at its next submit and reported as
//! [`ServeError::SessionEvicted`] — the serving analogue of a timed-out
//! login session.
//!
//! Determinism carries over from the engine: a session's transcript and
//! outcome are bit-identical whether it stayed hot throughout, bounced
//! through the warm tier arbitrarily often, or ran on a different thread
//! budget (`tests/serve_soak.rs` drives hundreds of interleaved sessions
//! through forced evictions and checks exactly this).
//!
//! Telemetry (all no-ops unless a `hinn-obs` recorder is installed):
//! counters `session.opened`, `session.finished`, `session.evicted`,
//! `session.resumed`, `session.dropped`, `session.denied`,
//! `session.retired`, `session.postmortem`; gauges `session.hot`,
//! `session.warm`; spans
//! `session.open` / `session.step` around the compute segments;
//! histograms `session.submit_ms`, `snapshot.serialize_ms`,
//! `snapshot.restore_ms` (percentiles via `hinn-obs`'s quantile sketch).
//!
//! Every hot session also carries a bounded black box of recent
//! lifecycle events ([`postmortem`]): when a session fails — engine
//! error, deadline expiry, in-engine panic — or takes a
//! degradation-ladder rung, the ring is frozen into a [`Postmortem`],
//! printed to stderr as one-line JSON, and kept for
//! [`SessionManager::take_postmortems`].

mod manager;
pub mod postmortem;

pub use manager::{ServeConfig, ServeError, SessionId, SessionManager};
pub use postmortem::{EventRing, Postmortem, SessionEvent};

// The serving layer speaks the engine's vocabulary; re-export the types a
// caller needs so `hinn_serve` works standalone.
pub use hinn_core::{SearchOutcome, Step, ViewRequest};
pub use hinn_user::UserResponse;
