//! The serving layer's black box: a bounded ring of recent session
//! lifecycle events, dumped as typed, stable JSON when a session dies.
//!
//! Every hot session carries an [`EventRing`] of its last
//! [`RING_CAPACITY`] lifecycle events — opens, submits, tier moves,
//! degradation-ladder rungs. When the session fails (engine error,
//! deadline expiry, in-session panic) or trips the degradation ladder,
//! the manager freezes the ring into a [`Postmortem`] and keeps it for
//! [`SessionManager::take_postmortems`](crate::SessionManager::take_postmortems);
//! a one-line JSON rendering also goes to stderr so an operator tailing
//! logs sees the incident without asking the process anything.
//!
//! The JSON is hand-rolled and field-ordered (like every export in this
//! workspace) so incident tooling can parse it without a schema registry.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Bounded capacity of one session's event ring. Old events are dropped
/// (and counted) once the ring is full: a postmortem wants the *recent*
/// history, and an unbounded log would let a degradation storm grow a hot
/// slot without bound.
pub const RING_CAPACITY: usize = 32;

/// One session lifecycle event, as kept in the ring.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionEvent {
    /// The session was opened (engine started, first view computed).
    Opened {
        /// Points in the shared data set.
        n_points: usize,
        /// Data dimensionality.
        dims: usize,
    },
    /// A response was submitted at this `(major, minor)` cursor.
    Submitted {
        /// Major iteration of the pending view.
        major: usize,
        /// Minor iteration of the pending view.
        minor: usize,
    },
    /// The session was snapshotted out of the hot tier.
    Suspended,
    /// The session was restored from the warm tier.
    Restored,
    /// The engine took a degradation-ladder rung.
    Degradation {
        /// Major iteration the rung belongs to, if attributed.
        major: Option<usize>,
        /// Minor iteration the rung belongs to, if attributed.
        minor: Option<usize>,
        /// The rung's kind (`DegradationKind::as_str`).
        kind: String,
        /// Free-form detail from the engine.
        detail: String,
    },
    /// The session was explicitly rebased onto a newer dataset epoch
    /// (its per-point state remapped; see
    /// [`SessionManager::rebase`](crate::SessionManager::rebase)).
    Rebased {
        /// The epoch the session was pinned to before the rebase.
        from_epoch: u64,
        /// The epoch the session runs on afterwards.
        onto_epoch: u64,
    },
    /// The session died: engine error, deadline, or panic.
    Failed {
        /// The error (or panic payload) rendered as text.
        error: String,
    },
}

impl SessionEvent {
    fn write_json(&self, out: &mut String) {
        match self {
            Self::Opened { n_points, dims } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"opened\",\"n_points\":{n_points},\"dims\":{dims}}}"
                );
            }
            Self::Submitted { major, minor } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"submitted\",\"major\":{major},\"minor\":{minor}}}"
                );
            }
            Self::Suspended => out.push_str("{\"type\":\"suspended\"}"),
            Self::Restored => out.push_str("{\"type\":\"restored\"}"),
            Self::Degradation {
                major,
                minor,
                kind,
                detail,
            } => {
                let opt = |v: &Option<usize>| v.map_or("null".to_string(), |n| n.to_string());
                let _ = write!(
                    out,
                    "{{\"type\":\"degradation\",\"major\":{},\"minor\":{},\
                     \"kind\":\"{}\",\"detail\":\"{}\"}}",
                    opt(major),
                    opt(minor),
                    json_escape(kind),
                    json_escape(detail)
                );
            }
            Self::Rebased {
                from_epoch,
                onto_epoch,
            } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"rebased\",\"from_epoch\":{from_epoch},\"onto_epoch\":{onto_epoch}}}"
                );
            }
            Self::Failed { error } => {
                let _ = write!(
                    out,
                    "{{\"type\":\"failed\",\"error\":\"{}\"}}",
                    json_escape(error)
                );
            }
        }
    }
}

/// A bounded ring of [`SessionEvent`]s (see module docs).
#[derive(Clone, Debug, Default)]
pub struct EventRing {
    events: VecDeque<SessionEvent>,
    dropped: u64,
}

impl EventRing {
    /// Append an event, dropping (and counting) the oldest past capacity.
    pub fn push(&mut self, event: SessionEvent) {
        if self.events.len() == RING_CAPACITY {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SessionEvent> {
        self.events.iter()
    }

    /// How many events aged out of the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Freeze the ring into a [`Postmortem`].
    pub fn freeze(&self, session: u64, reason: impl Into<String>) -> Postmortem {
        Postmortem {
            session,
            reason: reason.into(),
            dropped_events: self.dropped,
            events: self.events.iter().cloned().collect(),
        }
    }
}

/// A frozen incident record: what the session's black box held when it
/// died (or tripped the degradation ladder).
#[derive(Clone, Debug)]
pub struct Postmortem {
    /// Raw session id (`SessionId::raw`).
    pub session: u64,
    /// Why the dump fired (error text, "starved seed", …).
    pub reason: String,
    /// Ring-capacity overflow count: events lost before the dump.
    pub dropped_events: u64,
    /// The retained events, oldest first.
    pub events: Vec<SessionEvent>,
}

impl Postmortem {
    /// One-line stable JSON (field order fixed; see module docs).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"session\":{},\"reason\":\"{}\",\"dropped_events\":{},\"events\":[",
            self.session,
            json_escape(&self.reason),
            self.dropped_events
        );
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut ring = EventRing::default();
        for i in 0..(RING_CAPACITY + 5) {
            ring.push(SessionEvent::Submitted { major: i, minor: 0 });
        }
        assert_eq!(ring.events().count(), RING_CAPACITY);
        assert_eq!(ring.dropped(), 5);
        // Oldest retained event is the 6th pushed.
        assert_eq!(
            ring.events().next(),
            Some(&SessionEvent::Submitted { major: 5, minor: 0 })
        );
    }

    #[test]
    fn postmortem_json_is_stable_and_escaped() {
        let mut ring = EventRing::default();
        ring.push(SessionEvent::Opened {
            n_points: 200,
            dims: 8,
        });
        ring.push(SessionEvent::Degradation {
            major: Some(1),
            minor: None,
            kind: "starved_seed".to_string(),
            detail: "quote \" and\nnewline".to_string(),
        });
        ring.push(SessionEvent::Failed {
            error: "deadline exceeded".to_string(),
        });
        let pm = ring.freeze(7, "engine error");
        let json = pm.to_json();
        assert!(json.starts_with("{\"session\":7,\"reason\":\"engine error\""));
        assert!(json.contains("\"type\":\"opened\",\"n_points\":200"));
        assert!(json.contains("\"minor\":null"));
        assert!(json.contains("quote \\\" and\\nnewline"));
        assert!(!json.contains('\n'), "one-line rendering");
        assert_eq!(json, pm.to_json(), "stable");
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(json.matches(open).count(), json.matches(close).count());
        }
    }
}
