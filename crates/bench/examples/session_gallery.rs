//! Run one interactive session with profile recording and export every
//! view as an isometric surface SVG plus the session report — a browsable
//! audit trail of what the (simulated) user saw and chose.
//!
//! ```sh
//! cargo run --release -p hinn-bench --example session_gallery
//! ```

use hinn_bench::{artifact_dir, save_session_gallery};
use hinn_core::{InteractiveSearch, ProjectionMode, SearchConfig};
use hinn_data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn_user::{HeuristicUser, RecordingUser};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let spec = ProjectedClusterSpec {
        n_points: 1500,
        ..ProjectedClusterSpec::case1()
    };
    let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
    let query = data.points[data.cluster_members(0)[0]].clone();

    let config = SearchConfig {
        max_major_iterations: 2,
        min_major_iterations: 2,
        record_profiles: true,
        ..SearchConfig::default()
            .with_support(25)
            .with_mode(ProjectionMode::AxisParallel)
    };
    let mut user = RecordingUser::new(HeuristicUser::default());
    let outcome = InteractiveSearch::new(config)
        .run_with(
            &hinn_core::DatasetHandle::new(&data.points).expect("dataset"),
            &query,
            &mut user,
            hinn_core::RunOptions::default(),
        )
        .expect("interactive session")
        .into_outcome();

    let dir = artifact_dir("session_gallery");
    let files = save_session_gallery(&outcome, &dir).expect("write gallery");
    println!(
        "session: {} views ({} dismissed), verdict {}",
        outcome.transcript.total_views(),
        outcome.transcript.total_dismissed(),
        if outcome.diagnosis.is_meaningful() {
            "MEANINGFUL"
        } else {
            "not meaningful"
        }
    );
    println!("gallery ({} files):", files.len());
    for f in &files {
        println!("  {}", f.display());
    }

    // The recorded responses can be persisted and replayed — see
    // tests/record_replay.rs for the exactness guarantee.
    let (_, log) = user.into_parts();
    let replay_path = dir.join("session_responses.txt");
    std::fs::write(&replay_path, hinn_user::session_to_string(&log)).expect("write responses");
    println!("replayable responses: {}", replay_path.display());
}
