//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see `DESIGN.md` §5 for the index).
//!
//! Each `exp_*` binary prints the rows/series the paper reports and writes
//! rendered artifacts (SVG, ASCII profiles, CSV series) under
//! [`artifact_dir`]. Numbers will not match the paper's testbed exactly —
//! the substrate here is a simulation (see DESIGN.md's substitution table)
//! — but the *shape* of each result is the reproduction target.

use std::path::PathBuf;

/// Directory where experiment artifacts are written
/// (`target/experiments/<name>/`). Created on demand.
pub fn artifact_dir(experiment: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("target");
    p.push("experiments");
    p.push(experiment);
    std::fs::create_dir_all(&p).expect("create artifact dir");
    p
}

/// Print a section header in a consistent style.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Draw `n` indices of labeled (non-outlier) points from a dataset,
/// deterministically under `seed`.
pub fn sample_labeled_queries(data: &hinn_data::Dataset, n: usize, seed: u64) -> Vec<usize> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let c = rng.gen_range(0..data.len());
        if data.labels[c].is_some() {
            out.push(c);
        }
    }
    out
}

/// Map `f` over `items` on scoped worker threads, preserving order. The
/// experiment binaries use this to evaluate independent queries in
/// parallel (each query's interactive session is CPU-bound and touches
/// only shared read-only data). The thread budget comes from
/// [`hinn_par::Parallelism::from_env`], so `HINN_THREADS` pins it.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = hinn_par::Parallelism::from_env()
        .threads()
        .min(items.len().max(1));
    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let slots: Vec<std::sync::Mutex<&mut Option<R>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                **slots[i].lock().expect("result slot") = Some(f(&items[i]));
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("result written"))
        .collect()
}

/// Export every recorded view of a completed session as SVG artifacts —
/// a browsable gallery of "what the user saw and did" (requires the search
/// to have run with `record_profiles: true`). Returns the files written.
pub fn save_session_gallery(
    outcome: &hinn_core::SearchOutcome,
    dir: &std::path::Path,
) -> std::io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    for minor in outcome.transcript.iter_minors() {
        let Some(profile) = minor.profile.as_ref() else {
            continue;
        };
        let tau = match &minor.response {
            hinn_user::UserResponse::Threshold(t) => Some(*t),
            _ => None,
        };
        let title = format!(
            "major {} view {} — {}",
            minor.major + 1,
            minor.minor + 1,
            match &minor.response {
                hinn_user::UserResponse::Threshold(t) =>
                    format!("separator τ = {t:.4}, {} picked", minor.n_picked),
                hinn_user::UserResponse::Polygon(_) =>
                    format!("polygon, {} picked", minor.n_picked),
                hinn_user::UserResponse::Discard => "dismissed".to_string(),
            }
        );
        let path = dir.join(format!("m{}_v{}.svg", minor.major + 1, minor.minor + 1));
        hinn_viz::save_surface_svg(
            &profile.grid,
            &title,
            &hinn_viz::SurfaceOptions {
                separator: tau,
                query: Some(profile.query),
                ..hinn_viz::SurfaceOptions::default()
            },
            &path,
        )?;
        written.push(path);
    }
    // The session report alongside.
    let report_path = dir.join("session_report.txt");
    std::fs::write(&report_path, hinn_core::report::text_report(outcome))?;
    written.push(report_path);
    Ok(written)
}

/// Write a two-column CSV series (x, y) for external plotting.
pub fn write_series(path: &std::path::Path, header: (&str, &str), rows: &[(f64, f64)]) {
    use std::io::Write;
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).expect("create series file"));
    writeln!(f, "{},{}", header.0, header.1).unwrap();
    for (x, y) in rows {
        writeln!(f, "{x},{y}").unwrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_dir_is_created() {
        let d = artifact_dir("selftest");
        assert!(d.exists());
        assert!(d.ends_with("experiments/selftest"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.875), "87.5%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn query_sampling_is_deterministic_and_labeled() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let data = hinn_data::projected::generate_projected_clusters(
            &hinn_data::ProjectedClusterSpec::small_test(),
            &mut rng,
        );
        let a = sample_labeled_queries(&data, 5, 9);
        let b = sample_labeled_queries(&data, 5, 9);
        assert_eq!(a, b);
        for q in a {
            assert!(data.labels[q].is_some());
        }
    }

    #[test]
    fn session_gallery_writes_one_svg_per_recorded_view() {
        use hinn_core::{InteractiveSearch, SearchConfig};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let data = hinn_data::projected::generate_projected_clusters(
            &hinn_data::ProjectedClusterSpec::small_test(),
            &mut rng,
        );
        let query = data.points[data.cluster_members(0)[0]].clone();
        let config = SearchConfig {
            max_major_iterations: 1,
            min_major_iterations: 1,
            record_profiles: true,
            ..SearchConfig::default().with_support(10)
        };
        let mut user = hinn_user::HeuristicUser::default();
        let outcome = InteractiveSearch::new(config)
            .run_with(
                &hinn_data::DatasetHandle::new(&data.points).expect("epoch handle"),
                &query,
                &mut user,
                hinn_core::RunOptions::default(),
            )
            .expect("interactive session")
            .into_outcome();
        let dir = artifact_dir("selftest_gallery");
        let files = save_session_gallery(&outcome, &dir).expect("gallery");
        // One SVG per view + the report.
        assert_eq!(files.len(), outcome.transcript.total_views() + 1);
        for f in &files {
            assert!(f.exists());
        }
        let report = std::fs::read_to_string(files.last().unwrap()).unwrap();
        assert!(report.contains("session report"));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn series_roundtrip() {
        let dir = artifact_dir("selftest");
        let p = dir.join("series.csv");
        write_series(&p, ("x", "y"), &[(1.0, 2.0), (3.0, 4.0)]);
        let content = std::fs::read_to_string(&p).unwrap();
        assert!(content.starts_with("x,y\n1,2\n3,4"));
    }
}
