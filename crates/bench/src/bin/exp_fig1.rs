//! **Figure 1** — lateral scatter plots of three archetypal projections
//! (§1.1): (a) a good query-centered projection (distinct cluster at the
//! query), (b) a poor one (query in a sparse region), (c) a noisy one
//! (uniform, no clusters at all).
//!
//! As in the paper, each panel is a *lateral density plot*: 500 fictitious
//! points sampled in proportion to the kernel density of the underlying
//! data (§2.2). SVGs land in `target/experiments/fig1/`; an ASCII rendition
//! is printed for quick inspection.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_fig1
//! ```

use hinn_bench::{artifact_dir, banner};
use hinn_kde::{estimate_grid, lateral::lateral_points, Bandwidth2D, GridSpec, VisualProfile};
use hinn_viz::{render_heatmap, AsciiOptions, SvgCanvas};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner("Figure 1: good / poor / noisy query-centered projections (lateral plots)");
    let dir = artifact_dir("fig1");
    let mut rng = StdRng::seed_from_u64(12);

    // (a) Good: a tight cluster around the query, separated background.
    let mut good = Vec::new();
    for _ in 0..120 {
        good.push([0.25 + 0.04 * randn(&mut rng), 0.30 + 0.04 * randn(&mut rng)]);
    }
    for _ in 0..300 {
        good.push([
            0.55 + 0.45 * rng.gen::<f64>(),
            0.45 + 0.55 * rng.gen::<f64>(),
        ]);
    }
    let good_query = [0.25, 0.30];

    // (b) Poor: same clustered data, but the query floats in a sparse gap.
    let poor = good.clone();
    let poor_query = [0.75, 0.15];

    // (c) Noisy: uniform scatter, query in the middle.
    let noisy: Vec<[f64; 2]> = (0..420)
        .map(|_| [rng.gen::<f64>(), rng.gen::<f64>()])
        .collect();
    let noisy_query = [0.5, 0.5];

    for (panel, points, query, caption) in [
        ("a", &good, good_query, "good query-centered projection"),
        ("b", &poor, poor_query, "poor: query point in sparse region"),
        (
            "c",
            &noisy,
            noisy_query,
            "noisy projection (uniformly distributed)",
        ),
    ] {
        let bw = Bandwidth2D::silverman(points).scaled(0.5);
        let spec = GridSpec::covering(points, &[query], 0.10, 70);
        let grid = estimate_grid(points, bw, spec);
        let mut lat_rng = StdRng::seed_from_u64(77);
        let lateral = lateral_points(&grid, 500, &mut lat_rng);

        let bb = (
            (spec.x0, spec.x0 + (spec.n - 1) as f64 * spec.dx),
            (spec.y0, spec.y0 + (spec.n - 1) as f64 * spec.dy),
        );
        let mut svg = SvgCanvas::new(
            &format!("Fig. 1({panel}): {caption}"),
            520.0,
            480.0,
            bb.0,
            bb.1,
        );
        svg.scatter(&lateral, 2.2, "#1f4e8c");
        svg.marker(query, "Query Point", "crimson");
        let path = dir.join(format!("fig1{panel}.svg"));
        svg.save(&path).expect("write svg");

        // Quantify what the eye sees: query density relative to the view.
        let profile = VisualProfile::build(points.clone(), query, 70, 0.5);
        println!(
            "\nFig. 1({panel}) — {caption}\n  query density / peak = {:.2}, local sharpness = {:.2}  →  {}",
            profile.query_density() / profile.max_density(),
            profile.query_sharpness(6.0),
            path.display()
        );
        println!(
            "{}",
            render_heatmap(
                &grid,
                query,
                None,
                AsciiOptions {
                    legend: false,
                    y_up: true
                }
            )
        );
    }
    println!(
        "shape to check: (a) distinct island under Q; (b) Q in the dark; \n\
         (c) texture without structure."
    );
}

fn randn(rng: &mut StdRng) -> f64 {
    hinn_data::projected::randn(rng)
}
