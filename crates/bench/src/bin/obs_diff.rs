//! **Telemetry regression gate** — compare two telemetry JSON exports.
//!
//! Takes a baseline and a current export (both produced by
//! `TelemetryReport::to_json`, e.g. via `serving_bench --telemetry` or
//! `HINN_OBS_EXPORT`) and exits nonzero when the current run regressed:
//!
//! * **counters** drifted (exact by default — the engine's work counters
//!   are deterministic and thread-budget-invariant, so *any* change means
//!   the computation changed, not the machine);
//! * **histogram quantiles** (p50/p90/p99) drifted beyond the sketch's
//!   documented relative error plus a wall-clock tolerance.
//!
//! ```sh
//! obs_diff baseline.json current.json
//! obs_diff --quantile-tol 0.5 baseline.json current.json   # looser timing bar
//! obs_diff --counter-tol 0.05 baseline.json current.json   # 5% counter drift ok
//! obs_diff --no-quantiles baseline.json current.json       # counters only
//! ```
//!
//! Exit status: 0 when clean, 1 on any regression, 2 on usage or parse
//! errors. Missing metrics on either side are reported as notes, never
//! regressions — schema drift is a different gate's job.

use hinn_obs::diff::{diff, DiffOptions, TelemetrySummary};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: obs_diff [options] <baseline.json> <current.json>\n\
         options:\n\
         \x20 --counter-tol <frac>   relative counter tolerance (default 0 = exact)\n\
         \x20 --quantile-tol <frac>  extra relative quantile tolerance on top of\n\
         \x20                        the sketch error (default 0.25)\n\
         \x20 --no-counters          skip counter comparison\n\
         \x20 --no-quantiles         skip histogram-quantile comparison"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut opts = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--counter-tol" => {
                opts.counter_tol = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--quantile-tol" => {
                opts.quantile_tol = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--no-counters" => opts.check_counters = false,
            "--no-quantiles" => opts.check_quantiles = false,
            "--help" | "-h" => usage(),
            p if !p.starts_with('-') => paths.push(p.to_string()),
            _ => usage(),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let load = |path: &str| -> Result<TelemetrySummary, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        TelemetrySummary::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(&paths[0]), load(&paths[1])) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for r in [b, c] {
                if let Err(e) = r {
                    eprintln!("obs_diff: {e}");
                }
            }
            return ExitCode::from(2);
        }
    };
    let result = diff(&baseline, &current, &opts);
    print!("{}", result.to_text());
    if result.has_regression() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
