//! **Figure 12** — the density profile of a query-centered projection of
//! *uniformly distributed* data (§4.2): the poorly-behaved case in which
//! nearest-neighbor search is truly not meaningful.
//!
//! The paper: "the discrimination of the data surrounding the query cluster
//! is very poor in such a case … a user can infer that the data is not very
//! prone to meaningful nearest neighbor search". This experiment builds the
//! view exactly the way the search loop would (best query-centered
//! projection of uniform 20-d data), renders it, and quantifies the absence
//! of discrimination.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_fig12
//! ```

use hinn_bench::{artifact_dir, banner};
use hinn_core::projection::find_query_centered_projection;
use hinn_core::ProjectionMode;
use hinn_data::uniform::uniform_hypercube;
use hinn_kde::VisualProfile;
use hinn_linalg::Subspace;
use hinn_viz::{render_heatmap, save_surface_svg, AsciiOptions, SurfaceOptions, SvgCanvas};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    banner("Figure 12: density profile of uniform data (meaningless case)");
    let dir = artifact_dir("fig12");

    let mut rng = StdRng::seed_from_u64(9);
    let data = uniform_hypercube(5000, 20, 100.0, &mut rng);
    let query: Vec<f64> = (0..20).map(|_| rng.gen_range(20.0..80.0)).collect();

    // The very best projection the system can find for this query…
    let proj = find_query_centered_projection(
        &data.points,
        &query,
        &Subspace::full(20),
        25,
        ProjectionMode::AxisParallel,
    );
    let pts2d: Vec<[f64; 2]> = data
        .points
        .iter()
        .map(|p| {
            let c = proj.projection.project(p);
            [c[0], c[1]]
        })
        .collect();
    let qc = proj.projection.project(&query);
    let profile = VisualProfile::build(pts2d, [qc[0], qc[1]], 70, 0.3);

    println!(
        "\nbest projection found: variance ratios {:?} (note: on uniform data\n\
         the ratio itself overfits the tiny neighborhood — which is exactly why\n\
         the paper insists on the *visual* judgement below)",
        proj.variance_ratios
            .iter()
            .map(|r| (r * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "query density = {:.4}, peak = {:.4} ({:.0}% of peak), local sharpness = {:.2}",
        profile.query_density(),
        profile.max_density(),
        100.0 * profile.query_density() / profile.max_density(),
        profile.query_sharpness(6.0)
    );
    println!(
        "{}",
        render_heatmap(
            &profile.grid,
            profile.query,
            None,
            AsciiOptions {
                legend: false,
                y_up: true
            }
        )
    );

    let spec = &profile.grid.spec;
    let bb = (
        (spec.x0, spec.x0 + (spec.n - 1) as f64 * spec.dx),
        (spec.y0, spec.y0 + (spec.n - 1) as f64 * spec.dy),
    );
    let mut svg = SvgCanvas::new(
        "Fig. 12: uniform data — no query cluster",
        560.0,
        500.0,
        bb.0,
        bb.1,
    );
    svg.heatmap(&profile.grid);
    svg.marker(profile.query, "Query Point", "black");
    let path = dir.join("fig12.svg");
    svg.save(&path).expect("write svg");
    println!("  → {}", path.display());

    let surf_path = dir.join("fig12_surface.svg");
    save_surface_svg(
        &profile.grid,
        "fig12 surface",
        &SurfaceOptions {
            query: Some(profile.query),
            ..SurfaceOptions::default()
        },
        &surf_path,
    )
    .expect("write surface svg");
    println!("  → {}", surf_path.display());

    println!(
        "\nshape to check: even the *best* projection shows only KDE texture —\n\
         no sharp peak at the query (sharpness ≈ 1-2, vs 10-100+ on clustered\n\
         data, cf. exp_fig10_11); the automated ratio is fooled by its own\n\
         neighborhood, the visual profile is not."
    );
}
