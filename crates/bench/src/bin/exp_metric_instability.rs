//! **§1 instability demonstration** — "the use of different distance
//! metrics can result in widely varying ordering of distances of points
//! from the target for a given query", and the companion observation from
//! Beyer et al. that relative contrast collapses with dimensionality.
//!
//! Not a numbered table in the paper, but the motivating claim the whole
//! system rests on; this binary measures both effects on uniform data:
//!
//! * rank agreement (Kendall τ, top-10 overlap) between L1 / L2 / L∞ /
//!   fractional L0.5 orderings, at d = 2 vs d = 50;
//! * relative contrast `(D_max − D_min)/D_min` as d grows.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_metric_instability
//! ```

use hinn_baselines::Metric;
use hinn_bench::banner;
use hinn_metrics::contrast::DistanceStats;
use hinn_metrics::{kendall_tau, top_k_overlap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 2000;

fn distances(points: &[Vec<f64>], query: &[f64], metric: Metric) -> Vec<f64> {
    points.iter().map(|p| metric.dist(p, query)).collect()
}

fn main() {
    banner("§1: metric instability and contrast collapse with dimensionality");
    let metrics = [
        (Metric::L1, "L1"),
        (Metric::L2, "L2"),
        (Metric::LInf, "Linf"),
        (Metric::Lp(0.5), "L0.5"),
    ];

    println!(
        "\n{:<6} {:>14} {:>22} {:>22}",
        "d", "contrast (L2)", "tau(L2, L1)/(L2, Linf)", "top-10 ovl L2 vs L1/Linf"
    );
    for d in [2usize, 5, 10, 20, 50, 100] {
        let mut rng = StdRng::seed_from_u64(d as u64);
        let points: Vec<Vec<f64>> = (0..N)
            .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let query: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();

        let dists: Vec<Vec<f64>> = metrics
            .iter()
            .map(|(m, _)| distances(&points, &query, *m))
            .collect();
        let contrast = DistanceStats::compute(&dists[1]).relative_contrast();
        let tau_l1 = kendall_tau(&dists[1], &dists[0]);
        let tau_linf = kendall_tau(&dists[1], &dists[2]);
        let ovl_l1 = top_k_overlap(&dists[1], &dists[0], 10);
        let ovl_linf = top_k_overlap(&dists[1], &dists[2], 10);
        println!(
            "{:<6} {:>14.3} {:>11.3}/{:>9.3} {:>13.0}%/{:>6.0}%",
            d,
            contrast,
            tau_l1,
            tau_linf,
            100.0 * ovl_l1,
            100.0 * ovl_linf
        );
    }

    println!(
        "\nshape to check: relative contrast collapses as d grows (Beyer et al.);\n\
         the top-10 *answers* under different metrics drift apart — by d = 50 the\n\
         nearest neighbors under L2 and L∞ barely overlap, even though global\n\
         rank correlation stays moderate. The instability lives exactly where\n\
         the NN answer does."
    );

    banner("fractional metrics retain more contrast (ICDT 2001, the paper's [3])");
    println!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "d", "L0.5", "L1", "L2", "Linf"
    );
    for d in [10usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(1000 + d as u64);
        let points: Vec<Vec<f64>> = (0..N)
            .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let query: Vec<f64> = (0..d).map(|_| rng.gen::<f64>()).collect();
        print!("{d:<6}");
        for (m, _) in [
            (Metric::Lp(0.5), "L0.5"),
            (Metric::L1, "L1"),
            (Metric::L2, "L2"),
            (Metric::LInf, "Linf"),
        ] {
            let c = DistanceStats::compute(&distances(&points, &query, m)).relative_contrast();
            print!(" {c:>9.3}");
        }
        println!();
    }
    println!("shape to check: contrast ordering L0.5 > L1 > L2 > Linf at every d.");
}
