//! **Table 1** — precision and recall of the interactive search on the
//! synthetic projected-cluster data sets ("Synthetic 1" / "Synthetic 2",
//! §4.1 of the paper).
//!
//! Protocol (following §4.1): `N = 5000`, `d = 20`, 6-dimensional projected
//! clusters, 10 query points per data set drawn from clusters; the returned
//! set is the *natural* neighbor set found by thresholding the
//! meaningfulness probabilities just above the steep drop. Paper reference:
//! Synthetic 1 → 87% / 98%, Synthetic 2 → 91% / 96%.
//!
//! ```sh
//! cargo run --release -p hinn-bench --bin exp_table1
//! ```

use hinn_baselines::{knn_indices, projected_knn, Metric, ProjectedNnConfig};
use hinn_bench::{banner, parallel_map, pct, sample_labeled_queries};
use hinn_core::{InteractiveSearch, ProjectionMode, SearchConfig, SearchDiagnosis};
use hinn_data::projected::{generate_projected_clusters_detailed, ProjectedClusterSpec};
use hinn_metrics::PrecisionRecall;
use hinn_user::HeuristicUser;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_QUERIES: usize = 10;

fn main() {
    banner("Table 1: precision/recall on synthetic projected-cluster data");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>14} {:>10} {:>10}",
        "Data Set", "Precision", "Recall", "natural k", "true cluster", "L2 F1", "[15] F1"
    );

    for (label, spec, mode, support) in [
        (
            "Synthetic 1",
            ProjectedClusterSpec::case1(),
            ProjectionMode::AxisParallel,
            25, // the paper's 0.5% of N = 5000
        ),
        (
            "Synthetic 2",
            ProjectedClusterSpec::case2(),
            ProjectionMode::Arbitrary,
            // Arbitrary orientations need a larger neighborhood for the
            // cross-fitted PCA to see oblique structure (DESIGN.md §4).
            300,
        ),
    ] {
        let mut rng = StdRng::seed_from_u64(7);
        let (data, _truth) = generate_projected_clusters_detailed(&spec, &mut rng);
        let queries = sample_labeled_queries(&data, N_QUERIES, 31);
        let handle = hinn_core::DatasetHandle::new(&data.points).expect("dataset");

        let per_query = parallel_map(&queries, |&q| {
            let relevant: Vec<usize> = (0..data.len())
                .filter(|&i| data.labels[i] == data.labels[q])
                .collect();
            let mut user = HeuristicUser::default();
            let config = SearchConfig::default()
                .with_support(support)
                .with_mode(mode);
            let outcome = InteractiveSearch::new(config)
                .run_with(
                    &handle,
                    &data.points[q],
                    &mut user,
                    hinn_core::RunOptions::default(),
                )
                .expect("interactive session")
                .into_outcome();
            let (set, k) = match outcome.diagnosis {
                SearchDiagnosis::Meaningful { natural_k, .. } => (
                    outcome.natural_neighbors().expect("meaningful"),
                    Some(natural_k),
                ),
                SearchDiagnosis::NotMeaningful { .. } => (outcome.neighbors.clone(), None),
            };
            // Automated comparators on the same query, retrieving the true
            // cluster's cardinality (most favorable k for them).
            let l2 = knn_indices(&data.points, &data.points[q], relevant.len(), Metric::L2);
            let l2_f1 = PrecisionRecall::compute(&l2, &relevant).f1();
            let pnn = projected_knn(
                &data.points,
                &data.points[q],
                relevant.len(),
                &ProjectedNnConfig {
                    support: support.max(40),
                    proj_dim: 6,
                    refine_iters: 3,
                },
            );
            let pnn_f1 = PrecisionRecall::compute(&pnn.neighbors, &relevant).f1();
            (
                PrecisionRecall::compute(&set, &relevant),
                k,
                relevant.len(),
                l2_f1,
                pnn_f1,
            )
        });
        let prs: Vec<PrecisionRecall> = per_query.iter().map(|(pr, ..)| *pr).collect();
        let natural_ks: Vec<usize> = per_query.iter().filter_map(|(_, k, ..)| *k).collect();
        let cluster_sizes: Vec<usize> = per_query.iter().map(|&(_, _, c, _, _)| c).collect();
        let l2_f1 = per_query.iter().map(|&(.., f, _)| f).sum::<f64>() / per_query.len() as f64;
        let pnn_f1 = per_query.iter().map(|&(.., f)| f).sum::<f64>() / per_query.len() as f64;
        let mean = PrecisionRecall::mean(&prs);
        let mean_k = if natural_ks.is_empty() {
            0
        } else {
            natural_ks.iter().sum::<usize>() / natural_ks.len()
        };
        let mean_cluster = cluster_sizes.iter().sum::<usize>() / cluster_sizes.len();
        println!(
            "{:<14} {:>10} {:>10} {:>12} {:>14} {:>10} {:>10}",
            label,
            pct(mean.precision),
            pct(mean.recall),
            format!("{mean_k} ({}/{} found)", natural_ks.len(), N_QUERIES),
            mean_cluster,
            pct(l2_f1),
            pct(pnn_f1),
        );
    }

    println!(
        "\npaper reference:  Synthetic 1 → 87% / 98%;  Synthetic 2 → 91% / 96%\n\
         shape to check:   both metrics high; natural k within ~15% of cluster\n\
         size; the interactive F1 beats full-dim L2 and the automated\n\
         projected-NN of [15] (the paper's single-projection predecessor)."
    );
}
